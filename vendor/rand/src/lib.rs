//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand 0.8` API surface the workspace
//! uses: [`RngCore`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `fill`), and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the property the workspace relies on — every generator is
//! seeded explicitly and the same seed always yields the same stream. The
//! concrete values differ from upstream `rand` (range sampling here uses a
//! simple reduction rather than rejection sampling), which is fine: nothing
//! in the workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]

use core::ops::Range;

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a value in `low..high` (callers guarantee `low < high`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u64) - (low as u64);
                low + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Types that can be drawn from the "standard" distribution via `Rng::gen`.
pub trait StandardValue {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardValue for u16 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardValue for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardValue for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardValue for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl StandardValue for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draw a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Draw a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StepRng(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StepRng(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StepRng(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }
}
