//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the workspace's [`rand`] trait subset.
//!
//! The cipher core follows RFC 7539 (with 8 instead of 20 rounds, like
//! upstream `ChaCha8Rng`). Seeding expands the `u64` seed into a 256-bit key
//! with SplitMix64, so different seeds give unrelated keystreams and the
//! same seed always reproduces the same stream — the property every
//! experiment in this workspace depends on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha-based deterministic random number generator (8 rounds).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread 32-bit word of `buffer` (16 = exhausted).
    cursor: usize,
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut z);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12, 13) starts at 0; nonce (14, 15) derived from the seed
        // so streams with related keys still decorrelate.
        let nonce = splitmix64(&mut z);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity check: bit balance over a few thousand words.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        const WORDS: u64 = 4096;
        for _ in 0..WORDS {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let expected = WORDS * 16;
        let deviation = ones.abs_diff(expected);
        assert!(
            deviation < expected / 20,
            "bit balance off: {ones} vs {expected}"
        );
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        for chunk in buf.chunks(4) {
            assert_eq!(chunk, b.next_u32().to_le_bytes());
        }
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.next_u32();
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
