//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored harness
//! implements the small slice of criterion's API the workspace benches use:
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly, then
//! runs batches until a time budget is exhausted, and the mean, minimum, and
//! throughput are printed in a criterion-like one-line format. Results are
//! indicative rather than statistically rigorous — good enough to compare
//! orders of magnitude and track large regressions offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Configure the target number of samples (upper bound on iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, None, |b| f(b));
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` performs the measurement.
pub struct Bencher {
    sample_size: usize,
    /// Mean time per iteration of the routine under test.
    mean: Duration,
    /// Fastest observed iteration.
    min: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly within the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= WARMUP_BUDGET || warmup_iters >= 10 {
                break;
            }
        }
        let per_iter_estimate = warmup_start.elapsed() / warmup_iters as u32;

        // Measurement: cap iterations at sample_size, but stop early once the
        // budget is exhausted so slow benches stay bounded.
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iterations = 0u64;
        while iterations < self.sample_size as u64 && (iterations == 0 || total < MEASURE_BUDGET) {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            iterations += 1;
            // For sub-microsecond routines the per-call timing overhead
            // dominates; batch them instead.
            if per_iter_estimate < Duration::from_micros(5) && iterations == 1 {
                let batch = 10_000u64;
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                let elapsed = start.elapsed();
                total = elapsed;
                min = elapsed / batch as u32;
                iterations = batch;
                break;
            }
        }
        self.mean = total / iterations as u32;
        self.min = min;
        self.iterations = iterations;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        mean: Duration::ZERO,
        min: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if bencher.mean > Duration::ZERO => {
            let per_sec = n as f64 / bencher.mean.as_secs_f64();
            format!("  thrpt: {}/s", human_bytes(per_sec))
        }
        Some(Throughput::Elements(n)) if bencher.mean > Duration::ZERO => {
            let per_sec = n as f64 / bencher.mean.as_secs_f64();
            format!("  thrpt: {per_sec:.1} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "bench: {label:<55} mean {:>12}  min {:>12}  ({} iters){rate}",
        human_duration(bencher.mean),
        human_duration(bencher.min),
        bencher.iterations,
    );
}

fn human_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn human_bytes(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} GiB", per_sec / (1u64 << 30) as f64)
    } else if per_sec >= 1e6 {
        format!("{:.2} MiB", per_sec / (1u64 << 20) as f64)
    } else if per_sec >= 1e3 {
        format!("{:.2} KiB", per_sec / 1024.0)
    } else {
        format!("{per_sec:.0} B")
    }
}

/// Define a group of benchmark functions (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("parse", "4k").to_string(), "parse/4k");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_duration(Duration::from_nanos(500)), "500 ns");
        assert!(human_duration(Duration::from_micros(12)).contains("µs"));
        assert!(human_duration(Duration::from_millis(12)).contains("ms"));
        assert!(human_duration(Duration::from_secs(2)).contains('s'));
    }
}
