//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored harness
//! implements the small slice of criterion's API the workspace benches use:
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly, then
//! collects timing samples until a time budget is exhausted, and the median,
//! mean, minimum, and throughput are printed in a criterion-like one-line
//! format. Results are indicative rather than statistically rigorous — good
//! enough to compare orders of magnitude and track large regressions offline.
//!
//! # Machine-readable reports
//!
//! Two environment variables extend the harness for trajectory tracking:
//!
//! * `FHC_BENCH_JSON=path` — after all groups run, write every benchmark's
//!   `{label, median_ns, mean_ns, min_ns, iters}` to `path` as JSON (see
//!   [`write_json_report`]). The `fhc-bench-report` tool merges these raw
//!   runs into the committed `BENCH_serving.json` trajectory file.
//! * `FHC_BENCH_QUICK=1` — shrink the warm-up/measure budgets to roughly a
//!   tenth so CI can exercise every bench on every push without burning
//!   minutes. Quick numbers are noisier; the JSON report records the mode.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (full mode).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up budget per benchmark (full mode).
const WARMUP_BUDGET: Duration = Duration::from_millis(100);
/// Target measurement time per benchmark in `FHC_BENCH_QUICK` mode.
const MEASURE_BUDGET_QUICK: Duration = Duration::from_millis(40);
/// Warm-up budget per benchmark in `FHC_BENCH_QUICK` mode.
const WARMUP_BUDGET_QUICK: Duration = Duration::from_millis(10);

/// Whether the `FHC_BENCH_QUICK` quick mode is active.
pub fn quick_mode() -> bool {
    std::env::var("FHC_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn measure_budget() -> Duration {
    if quick_mode() {
        MEASURE_BUDGET_QUICK
    } else {
        MEASURE_BUDGET
    }
}

fn warmup_budget() -> Duration {
    if quick_mode() {
        WARMUP_BUDGET_QUICK
    } else {
        WARMUP_BUDGET
    }
}

/// One finished benchmark, as recorded for the JSON report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full `group/function` label.
    pub label: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration, in nanoseconds.
    pub min_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(rec: BenchRecord) {
    RECORDS.lock().expect("bench record lock").push(rec);
}

/// All benchmarks recorded so far in this process, in execution order.
pub fn records() -> Vec<BenchRecord> {
    RECORDS.lock().expect("bench record lock").clone()
}

/// Minimal JSON string escaping (labels are ASCII identifiers, but be safe).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize every recorded benchmark as a raw-run JSON document.
pub fn json_report() -> String {
    let records = records();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"fhc-bench-run/v1\",\n  \"quick\": {},\n  \"results\": [\n",
        quick_mode()
    ));
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"iters\": {}}}{}\n",
            escape_json(&r.label),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the raw-run JSON report to `path`.
pub fn write_json_report(path: &str) -> std::io::Result<()> {
    std::fs::write(path, json_report())
}

/// Called by `criterion_main!` after every group has run: honor
/// `FHC_BENCH_JSON` if set.
pub fn finalize() {
    if let Ok(path) = std::env::var("FHC_BENCH_JSON") {
        if !path.is_empty() {
            match write_json_report(&path) {
                Ok(()) => eprintln!("bench: wrote JSON report to {path}"),
                Err(e) => eprintln!("bench: FAILED to write JSON report to {path}: {e}"),
            }
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Configure the target number of samples (upper bound on iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, None, |b| f(b));
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` performs the measurement.
pub struct Bencher {
    sample_size: usize,
    /// Per-sample durations (one routine call each, or a batch average for
    /// sub-microsecond routines).
    samples: Vec<Duration>,
    /// Total measured iterations of the routine under test.
    iterations: u64,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly within the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget() || warmup_iters >= 10 {
                break;
            }
        }
        let per_iter_estimate = warmup_start.elapsed() / warmup_iters as u32;

        if per_iter_estimate < Duration::from_micros(5) {
            // For sub-microsecond routines the per-call timing overhead
            // dominates; measure batches and record batch averages as
            // samples (enough batches for a meaningful median).
            let batch = 2_000u64;
            let n_batches = if quick_mode() { 5 } else { 11 };
            let mut iterations = 0u64;
            for _ in 0..n_batches {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                let elapsed = start.elapsed();
                self.samples.push(elapsed / batch as u32);
                iterations += batch;
            }
            self.iterations = iterations;
            return;
        }

        // Measurement: cap samples at sample_size, but stop early once the
        // budget is exhausted so slow benches stay bounded.
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while iterations < self.sample_size as u64 && (iterations == 0 || total < measure_budget())
        {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            self.samples.push(elapsed);
            iterations += 1;
        }
        self.iterations = iterations;
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        iterations: 0,
    };
    f(&mut bencher);
    let median = bencher.median();
    let mean = bencher.mean();
    let min = bencher.min();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {}/s", human_bytes(per_sec))
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {per_sec:.1} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "bench: {label:<55} median {:>12}  mean {:>12}  min {:>12}  ({} iters){rate}",
        human_duration(median),
        human_duration(mean),
        human_duration(min),
        bencher.iterations,
    );
    record(BenchRecord {
        label: label.to_string(),
        median_ns: median.as_nanos() as f64,
        mean_ns: mean.as_nanos() as f64,
        min_ns: min.as_nanos() as f64,
        iters: bencher.iterations,
    });
}

fn human_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn human_bytes(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} GiB", per_sec / (1u64 << 30) as f64)
    } else if per_sec >= 1e6 {
        format!("{:.2} MiB", per_sec / (1u64 << 20) as f64)
    } else if per_sec >= 1e3 {
        format!("{:.2} KiB", per_sec / 1024.0)
    } else {
        format!("{per_sec:.0} B")
    }
}

/// Define a group of benchmark functions (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
        });
        group.finish();
        let recs = records();
        let spin = recs
            .iter()
            .find(|r| r.label == "shim/spin")
            .expect("spin recorded");
        assert!(spin.iters > 0);
        assert!(spin.median_ns >= spin.min_ns);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("parse", "4k").to_string(), "parse/4k");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_duration(Duration::from_nanos(500)), "500 ns");
        assert!(human_duration(Duration::from_micros(12)).contains("µs"));
        assert!(human_duration(Duration::from_millis(12)).contains("ms"));
        assert!(human_duration(Duration::from_secs(2)).contains('s'));
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("json_probe", |b| b.iter(|| std::hint::black_box(42)));
        let json = json_report();
        assert!(json.contains("\"schema\": \"fhc-bench-run/v1\""));
        assert!(json.contains("\"label\": \"json_probe\""));
        assert!(json.contains("median_ns"));
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}
