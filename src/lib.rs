//! Workspace facade for the Fuzzy Hash Classifier reproduction.
//!
//! This crate exists so the repository root is itself a Cargo package: the
//! `examples/` directory and the cross-crate integration tests under
//! `tests/` build against it. It re-exports every workspace crate under one
//! roof; downstream code can either depend on the individual crates or pull
//! in `fhc_repro` and use the re-exports.
//!
//! See the [`fhc`] crate for the classifier itself and the repository
//! `README.md` for the workspace layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use binary;
pub use corpus;
pub use fhc;
pub use hpcutil;
pub use mlcore;
pub use ssdeep;
