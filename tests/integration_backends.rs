//! Integration equivalence suite for the pluggable similarity backends.
//!
//! The contract of [`fhc::backend::SimilarityBackend`] is that backend
//! choice is a pure scheduling decision: `ScanBackend`, `IndexedBackend`,
//! and `ShardedBackend` (at any shard count) must produce **byte-identical**
//! feature rows — and therefore byte-identical predictions — over the same
//! reference set. These tests enforce that end to end on seeded corpora:
//! through training, through serving, and through artifacts reopened under
//! every backend.

mod common;

use corpus::{Catalog, CorpusBuilder};
use fhc::backend::{BackendConfig, ShardedBackend, SimilarityBackend};
use fhc::config::FhcConfig;
use fhc::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::TrainedClassifier;
use fhc::similarity::ReferenceSet;
use std::sync::Arc;

fn config(seed: u64) -> FhcConfig {
    FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 25,
            ..Default::default()
        },
        ..Default::default()
    })
}

fn trained(seed: u64) -> (corpus::Corpus, TrainedClassifier) {
    let corpus = CorpusBuilder::new(seed).build(&Catalog::paper().scaled(0.02));
    let classifier = FuzzyHashClassifier::with_config(config(seed))
        .fit(&corpus)
        .expect("fit succeeds");
    (corpus, classifier)
}

/// Probe features spanning known classes, unknown classes, and a non-ELF
/// stranger (exercising the missing-symbols path).
fn probe_features(corpus: &corpus::Corpus) -> Vec<SampleFeatures> {
    let mut probes: Vec<SampleFeatures> = corpus
        .samples()
        .iter()
        .step_by(9)
        .map(|s| SampleFeatures::extract(&corpus.generate_bytes(s)))
        .collect();
    probes.push(SampleFeatures::extract(
        b"#!/bin/sh\necho not an elf, stresses the no-symbols path\n",
    ));
    probes
}

/// The shard counts the ISSUE calls out: degenerate (1), small (2, 3), and
/// one shard per class.
fn shard_counts(n_classes: usize) -> Vec<usize> {
    vec![1, 2, 3, n_classes]
}

#[test]
fn sharded_rows_are_byte_identical_to_scan_and_indexed() {
    let (corpus, trained) = trained(13);
    let reference: Arc<ReferenceSet> = Arc::new(trained.reference().clone());
    let scan = BackendConfig::Scan.build(reference.clone());
    let indexed = BackendConfig::Indexed.build(reference.clone());

    let probes: Vec<PreparedSampleFeatures> = probe_features(&corpus)
        .iter()
        .map(PreparedSampleFeatures::prepare)
        .collect();

    for shards in shard_counts(reference.n_classes()) {
        let sharded = ShardedBackend::new(reference.clone(), shards);
        for probe in &probes {
            let scan_row = scan.feature_vector_prepared(probe);
            let indexed_row = indexed.feature_vector_prepared(probe);
            let sharded_row = sharded.feature_vector_prepared(probe);
            // Byte-identical, not approximately equal: compare the raw f64
            // bit patterns.
            let bits = |row: &[f64]| row.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&scan_row), bits(&indexed_row), "scan vs indexed");
            assert_eq!(
                bits(&indexed_row),
                bits(&sharded_row),
                "indexed vs sharded({shards})"
            );
        }
    }
}

#[test]
fn predictions_are_identical_under_every_backend_and_shard_count() {
    let (corpus, trained) = trained(17);
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(13)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let expected = trained.classify_batch(&batch);

    let mut backends = vec![BackendConfig::Scan, BackendConfig::Indexed];
    backends.extend(
        shard_counts(trained.n_known_classes())
            .into_iter()
            .map(|shards| BackendConfig::Sharded { shards }),
    );
    for backend in backends {
        let swapped = trained.clone().with_backend(backend.clone());
        assert_eq!(
            swapped.classify_batch(&batch),
            expected,
            "backend {backend} changed predictions"
        );
    }
}

#[test]
fn artifacts_reopen_identically_under_every_backend() {
    let (corpus, original) = trained(19);
    let bytes = original.to_bytes();
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(23)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let expected = original.classify_batch(&batch);

    for backend in [
        BackendConfig::Scan,
        BackendConfig::Indexed,
        BackendConfig::Sharded { shards: 2 },
        BackendConfig::Sharded { shards: 0 },
    ] {
        let reopened =
            TrainedClassifier::from_bytes_with(&bytes, &config(19).backend(backend.clone()))
                .expect("artifact reopens");
        assert_eq!(reopened.backend_config(), backend);
        assert_eq!(reopened.classify_batch(&batch), expected);
        // Runtime-only: the artifact bytes never encode the backend.
        assert_eq!(reopened.to_bytes(), bytes);
    }
}

#[test]
fn training_under_any_backend_yields_identical_artifacts() {
    // The fit path routes every feature matrix (training, threshold tuning)
    // through the configured backend — so fitting under different backends
    // must produce byte-identical models.
    let corpus = CorpusBuilder::new(29).build(&Catalog::paper().scaled(0.02));
    let fit = |backend: BackendConfig| {
        FuzzyHashClassifier::with_config(config(29).backend(backend))
            .fit(&corpus)
            .expect("fit succeeds")
            .to_bytes()
    };
    let indexed = fit(BackendConfig::Indexed);
    assert_eq!(fit(BackendConfig::Sharded { shards: 3 }), indexed);
    assert_eq!(fit(BackendConfig::Scan), indexed);
}

#[test]
fn empty_class_is_equivalent_across_backends() {
    // A reference class with no samples (legal in-memory, e.g. a class
    // registered before its training data arrives) must produce all-zero
    // columns under every backend.
    let velvet = SampleFeatures::extract(b"velvet velvet velvet executable image bytes");
    let reference = Arc::new(ReferenceSet::new(
        vec!["Velvet".into(), "Empty".into()],
        std::slice::from_ref(&velvet),
        &[0],
        &FeatureKind::ALL,
    ));
    let probe = PreparedSampleFeatures::prepare(&velvet);
    let scan_row = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(&probe);
    for shards in [1, 2, 5] {
        let row = ShardedBackend::new(reference.clone(), shards).feature_vector_prepared(&probe);
        assert_eq!(row, scan_row, "sharded({shards})");
    }
    assert_eq!(
        BackendConfig::Indexed
            .build(reference.clone())
            .feature_vector_prepared(&probe),
        scan_row
    );
    // The empty class's columns are zero; the populated class's file column
    // is a perfect match.
    assert_eq!(scan_row[0], 100.0);
    for kind_idx in 0..reference.kinds().len() {
        assert_eq!(scan_row[kind_idx * 2 + 1], 0.0);
    }
}

#[test]
fn single_class_reference_is_equivalent_across_backends() {
    let sample = SampleFeatures::extract(b"a single lonely reference class executable");
    let reference = Arc::new(ReferenceSet::new(
        vec!["Only".into()],
        std::slice::from_ref(&sample),
        &[0],
        &FeatureKind::ALL,
    ));
    let probe = PreparedSampleFeatures::prepare(&sample);
    let expected = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(&probe);
    for shards in shard_counts(1) {
        assert_eq!(
            ShardedBackend::new(reference.clone(), shards).feature_vector_prepared(&probe),
            expected
        );
    }
    assert_eq!(
        BackendConfig::Indexed
            .build(reference)
            .feature_vector_prepared(&probe),
        expected
    );
}

/// Adversarial hand-built hashes through every backend (the shared
/// `common` fixture: run-heavy signatures scoreable only via the
/// identical-hash fast path, factor-of-two block sizes in both directions,
/// near-`u64::MAX` block sizes, tiny-block score caps). With score-budget
/// pruning always on, every backend must still reproduce the scan oracle
/// bit for bit.
#[test]
fn degenerate_hashes_are_equivalent_across_backends_with_pruning() {
    let references = common::degenerate_references();
    let labels: Vec<usize> = (0..references.len()).map(|i| i % 3).collect();
    let reference = Arc::new(ReferenceSet::new(
        vec!["a".into(), "b".into(), "c".into()],
        &references,
        &labels,
        &FeatureKind::ALL,
    ));
    let scan = BackendConfig::Scan.build(reference.clone());
    let indexed = BackendConfig::Indexed.build(reference.clone());
    for (i, probe) in common::degenerate_probes().iter().enumerate() {
        let probe = PreparedSampleFeatures::prepare(probe);
        let expected = scan.feature_vector_prepared(&probe);
        let bits = |row: &[f64]| row.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&indexed.feature_vector_prepared(&probe)),
            bits(&expected),
            "probe {i}: indexed vs scan"
        );
        for shards in shard_counts(reference.n_classes()) {
            let sharded = ShardedBackend::new(reference.clone(), shards);
            assert_eq!(
                bits(&sharded.feature_vector_prepared(&probe)),
                bits(&expected),
                "probe {i}: sharded({shards}) vs scan"
            );
        }
    }
}
