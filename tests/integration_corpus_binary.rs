//! Integration tests across the corpus, binary, and ssdeep crates: every
//! generated executable is a valid ELF whose three fuzzy-hash views behave
//! the way the classifier assumes.

use binary::elf::{strip_symbols, ElfFile};
use binary::strings::extract_strings;
use binary::symbols::global_defined_symbols;
use corpus::{Catalog, CorpusBuilder};
use fhc::features::{FeatureKind, SampleFeatures};

#[test]
fn every_sample_of_a_small_corpus_is_a_valid_elf_with_features() {
    let corpus = CorpusBuilder::new(9).build(&Catalog::paper().scaled(0.02));
    assert_eq!(corpus.n_classes(), 92);
    for spec in corpus.samples().iter().step_by(7) {
        let bytes = corpus.generate_bytes(spec);
        let elf = ElfFile::parse(&bytes)
            .unwrap_or_else(|e| panic!("sample {} failed to parse: {e}", spec.install_path()));
        assert!(
            elf.has_symbol_table(),
            "{} lost its symbol table",
            spec.install_path()
        );
        assert!(
            !global_defined_symbols(&elf).is_empty(),
            "{} has no global symbols",
            spec.install_path()
        );
        assert!(
            !extract_strings(&bytes, 4).is_empty(),
            "{} has no printable strings",
            spec.install_path()
        );
        let features = SampleFeatures::extract(&bytes);
        assert!(features.has_symbols());
    }
}

#[test]
fn within_class_similarity_exceeds_cross_class_similarity() {
    let corpus = CorpusBuilder::new(4).build(&Catalog::paper().scaled(0.02));
    // For a handful of classes, the symbols-view similarity between two
    // versions of the same executable must exceed the similarity between
    // executables of unrelated classes.
    let mut checked = 0;
    for class_index in [0usize, 10, 30, 50, 70] {
        // Two versions of the *same executable* of this class.
        let Some(first) = corpus
            .samples()
            .iter()
            .find(|s| s.class_index == class_index && s.version_index == 0)
        else {
            continue;
        };
        let Some(second) = corpus.samples().iter().find(|s| {
            s.class_index == class_index
                && s.executable_name == first.executable_name
                && s.version_index != 0
        }) else {
            continue;
        };
        let other = corpus
            .samples()
            .iter()
            .find(|s| s.class_index == (class_index + 40) % 92)
            .unwrap();
        let fa = SampleFeatures::extract(&corpus.generate_bytes(first));
        let fb = SampleFeatures::extract(&corpus.generate_bytes(second));
        let fo = SampleFeatures::extract(&corpus.generate_bytes(other));
        let within = fa.similarity(&fb, FeatureKind::Symbols);
        let across = fa.similarity(&fo, FeatureKind::Symbols);
        assert!(
            within > across,
            "class {class_index}: within {within} should exceed across {across}"
        );
        checked += 1;
    }
    assert!(checked >= 3);
}

#[test]
fn stripped_corpus_sample_loses_only_the_symbols_view() {
    let corpus = CorpusBuilder::new(2).build(&Catalog::paper().scaled(0.02));
    let spec = &corpus.samples()[0];
    let original = corpus.generate_bytes(spec);
    let stripped = strip_symbols(&original).expect("stripping succeeds");

    let f_orig = SampleFeatures::extract(&original);
    let f_stripped = SampleFeatures::extract(&stripped);
    assert!(f_orig.has_symbols());
    assert!(!f_stripped.has_symbols());
    // The strings view survives stripping nearly unchanged.
    let strings_sim = f_orig.similarity(&f_stripped, FeatureKind::Strings);
    assert!(
        strings_sim > 60,
        "strings similarity after stripping: {strings_sim}"
    );
    // The symbols view is gone, so its similarity collapses to zero.
    assert_eq!(f_orig.similarity(&f_stripped, FeatureKind::Symbols), 0);
}

#[test]
fn duplicate_install_classes_share_symbols() {
    // CellRanger vs Cell-Ranger are the same application installed twice
    // (paper Section 5): their executables should share a substantial part
    // of their global symbol names, unlike unrelated classes.
    let corpus = CorpusBuilder::new(6).build(&Catalog::paper().scaled(0.02));
    let find = |class: &str| {
        corpus
            .samples()
            .iter()
            .find(|s| s.class_name == class)
            .expect("class exists")
    };
    let symbol_set = |spec: &corpus::SampleSpec| -> std::collections::HashSet<String> {
        let elf = ElfFile::parse(&corpus.generate_bytes(spec)).unwrap();
        global_defined_symbols(&elf)
            .into_iter()
            .map(|s| s.name)
            .collect()
    };
    let cr = symbol_set(find("CellRanger"));
    let cr_dash = symbol_set(find("Cell-Ranger"));
    let unrelated = symbol_set(find("OpenMalaria"));

    let alias_overlap = cr.intersection(&cr_dash).count();
    let unrelated_overlap = cr.intersection(&unrelated).count();
    assert!(
        alias_overlap > unrelated_overlap + 10,
        "alias overlap {alias_overlap} should clearly exceed unrelated overlap {unrelated_overlap}"
    );
}
