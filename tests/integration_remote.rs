//! Integration equivalence suite for the distributed shard-serving path.
//!
//! `RemoteBackend` must be just another [`fhc::SimilarityBackend`]: over
//! loopback workers (in-process `ShardWorker` accept loops on
//! `127.0.0.1`) its feature rows and predictions are **byte-identical** to
//! `ScanBackend`/`IndexedBackend` for worker counts 1/2/3/`n_classes`,
//! including empty-class and single-class references and empty worker
//! partitions. Failure is typed: a worker that dies mid-batch produces
//! [`fhc::FhcError::Net`] — never a wrong or partial row.

mod common;

use fhc::backend::{BackendConfig, SimilarityBackend};
use fhc::config::FhcConfig;
use fhc::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::TrainedClassifier;
use fhc::shardnet::wire::{self, Frame};
use fhc::shardnet::worker::serve_tcp;
use fhc::shardnet::{Endpoint, NetError, RemoteBackend, ShardWorker};
use fhc::similarity::ReferenceSet;
use fhc::FhcError;
use std::net::TcpListener;
use std::sync::Arc;

/// Spawn `n` loopback shard workers over `reference`, each serving every
/// class (the client auto-assigns a round-robin partition at connect).
/// Returns their endpoints; the accept threads live until the test process
/// exits.
fn spawn_loopback_workers(reference: &Arc<ReferenceSet>, n: usize) -> Vec<Endpoint> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let worker = Arc::new(ShardWorker::all_classes(Arc::clone(reference)));
            std::thread::spawn(move || serve_tcp(worker, listener));
            endpoint
        })
        .collect()
}

/// Spawn workers with explicit (worker-side) partitions, one per class
/// list. With `Some(limit)` the worker accepts exactly one connection,
/// answers `limit` requests on it, and then drops its listener — it is
/// truly dead afterwards, so the client's re-dial on the next query is
/// refused rather than healed.
fn spawn_partitioned_workers(
    reference: &Arc<ReferenceSet>,
    partitions: &[Vec<usize>],
    limit: Option<u64>,
) -> Vec<Endpoint> {
    partitions
        .iter()
        .map(|classes| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let worker = Arc::new(
                ShardWorker::new(Arc::clone(reference), classes.clone()).expect("valid classes"),
            );
            std::thread::spawn(move || match limit {
                None => {
                    for stream in listener.incoming() {
                        match stream {
                            Ok(stream) => {
                                let worker = Arc::clone(&worker);
                                std::thread::spawn(move || {
                                    let _ = worker.serve_requests(stream, "loopback", None);
                                });
                            }
                            Err(_) => return,
                        }
                    }
                }
                Some(limit) => {
                    if let Ok((stream, _)) = listener.accept() {
                        drop(listener);
                        let _ = worker.serve_requests(stream, "loopback", Some(limit));
                    }
                }
            });
            endpoint
        })
        .collect()
}

/// A hand-rolled protocol-v2 worker that did **not** advertise
/// `FEATURE_SCORE_BATCH`: it serves single-query frames through the real
/// indexed backend and answers any batch frame with an `Error` frame — so
/// a client that wrongly sends one fails loudly instead of silently.
fn spawn_batchless_worker(reference: &Arc<ReferenceSet>) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
    let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
    let reference = Arc::clone(reference);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let backend = BackendConfig::Indexed.build(Arc::clone(&reference));
                let peer = "batchless";
                let hello = wire::Hello {
                    protocol: wire::PROTOCOL_VERSION,
                    features: 0, // a v2 worker that opted out of batching
                    fingerprint: reference.fingerprint(),
                    n_classes: reference.n_classes(),
                    n_columns: reference.n_columns(),
                    classes: (0..reference.n_classes()).collect(),
                    tenant: wire::DEFAULT_TENANT.to_string(),
                };
                if Frame::Hello(hello).write_to(&mut stream, peer).is_err() {
                    return;
                }
                loop {
                    match Frame::read_from(&mut stream, peer) {
                        Ok(Frame::ScoreRequest(request)) => {
                            let row = backend.feature_vector_prepared(&request.query);
                            let cells = row
                                .iter()
                                .enumerate()
                                .map(|(column, &score)| (column as u32, score))
                                .collect();
                            let response = wire::ScoreResponse {
                                id: request.id,
                                cells,
                            };
                            if Frame::ScoreResponse(response)
                                .write_to(&mut stream, peer)
                                .is_err()
                            {
                                return;
                            }
                        }
                        Ok(other) => {
                            let _ =
                                Frame::Error(format!("batchless worker cannot serve {other:?}"))
                                    .write_to(&mut stream, peer);
                            return;
                        }
                        Err(_) => return,
                    }
                }
            });
        }
    });
    endpoint
}

fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
    use binary::elf::ElfBuilder;
    let mut b = ElfBuilder::new();
    let mut code: Vec<u8> = class_tag
        .bytes()
        .cycle()
        .take(24_000)
        .enumerate()
        .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
        .collect();
    for (i, byte) in code
        .iter_mut()
        .skip((variant as usize * 512) % 20_000)
        .take(256)
        .enumerate()
    {
        *byte ^= (variant as u8).wrapping_add(i as u8);
    }
    b.add_text_section(code);
    b.add_rodata_section(format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes());
    for i in 0..30 {
        b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
    }
    SampleFeatures::extract(&b.build())
}

fn hand_built_reference(n_classes: usize) -> Arc<ReferenceSet> {
    let tags = ["velvet", "openmalaria", "gromacs", "lammps", "quantum"];
    let mut train = Vec::new();
    let mut labels = Vec::new();
    for class in 0..n_classes {
        for variant in 0..2 {
            train.push(make_sample(tags[class % tags.len()], variant));
            labels.push(class);
        }
    }
    Arc::new(ReferenceSet::new(
        (0..n_classes).map(|c| format!("class-{c}")).collect(),
        &train,
        &labels,
        &FeatureKind::ALL,
    ))
}

fn probes() -> Vec<PreparedSampleFeatures> {
    [
        make_sample("velvet", 0),
        make_sample("velvet", 9),
        make_sample("gromacs", 4),
        SampleFeatures::extract(b"#!/bin/sh\necho not an elf, no symbols view\n"),
    ]
    .iter()
    .map(PreparedSampleFeatures::prepare)
    .collect()
}

fn bits(row: &[f64]) -> Vec<u64> {
    row.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn remote_rows_are_byte_identical_for_worker_counts_1_2_3_n() {
    let n_classes = 5;
    let reference = hand_built_reference(n_classes);
    let scan = BackendConfig::Scan.build(reference.clone());
    let indexed = BackendConfig::Indexed.build(reference.clone());
    let probes = probes();

    for n_workers in [1, 2, 3, n_classes] {
        let endpoints = spawn_loopback_workers(&reference, n_workers);
        let remote =
            RemoteBackend::connect(reference.clone(), &endpoints).expect("loopback connect");
        assert_eq!(remote.n_workers(), n_workers);
        // The auto-assigned partition is the ShardedBackend round-robin.
        let mut covered: Vec<usize> = (0..n_workers)
            .flat_map(|w| remote.worker_classes(w).to_vec())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..n_classes).collect::<Vec<_>>());

        for (i, probe) in probes.iter().enumerate() {
            let expected = scan.feature_vector_prepared(probe);
            assert_eq!(
                bits(&indexed.feature_vector_prepared(probe)),
                bits(&expected)
            );
            let remote_row = remote
                .try_feature_vector_prepared(probe)
                .expect("loopback workers are alive");
            assert_eq!(
                bits(&remote_row),
                bits(&expected),
                "remote({n_workers}) diverged on probe {i}"
            );
            // The infallible trait path agrees too.
            assert_eq!(
                bits(&remote.feature_vector_prepared(probe)),
                bits(&expected)
            );
        }
    }
}

/// The batched row path (`try_feature_rows_prepared`: one
/// `ScoreBatchRequest` frame per worker per chunk of 64) is byte-identical
/// to the per-query fan-out and to the scan oracle — including across the
/// 64-query chunk boundary, and including through a worker that never
/// advertised `FEATURE_SCORE_BATCH`, which must transparently be fed
/// pipelined single-query frames instead.
#[test]
fn batched_rows_are_byte_identical_including_the_batchless_fallback() {
    let reference = hand_built_reference(4);
    let probes = probes();
    let scan = BackendConfig::Scan.build(reference.clone());
    let expected: Vec<Vec<u64>> = probes
        .iter()
        .map(|probe| bits(&scan.feature_vector_prepared(probe)))
        .collect();

    let backend = RemoteBackend::connect(reference.clone(), &spawn_loopback_workers(&reference, 2))
        .expect("workers connect");
    let rows = backend
        .try_feature_rows_prepared(&probes)
        .expect("batched rows");
    assert_eq!(rows.len(), probes.len());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(bits(row), expected[i], "batched row {i} diverged");
        let single = backend
            .try_feature_vector_prepared(&probes[i])
            .expect("single row");
        assert_eq!(bits(&single), expected[i], "single row {i} diverged");
    }
    // Empty input is a no-op, not a wire exchange.
    assert!(backend
        .try_feature_rows_prepared(&[])
        .expect("empty")
        .is_empty());

    // 70 queries cross the 64-per-frame chunk boundary.
    let many: Vec<PreparedSampleFeatures> = probes.iter().cycle().take(70).cloned().collect();
    let rows = backend
        .try_feature_rows_prepared(&many)
        .expect("chunked rows");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            bits(row),
            expected[i % probes.len()],
            "chunked row {i} diverged"
        );
    }

    // The batch-less worker would answer an Error frame to any batch
    // request, so identical rows prove the client degraded to single
    // frames.
    let batchless =
        RemoteBackend::connect(reference.clone(), &[spawn_batchless_worker(&reference)])
            .expect("batchless worker connects");
    let rows = batchless
        .try_feature_rows_prepared(&probes)
        .expect("fallback rows");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(bits(row), expected[i], "fallback row {i} diverged");
    }
}

#[test]
fn worker_side_partitions_are_honored_and_equivalent() {
    let reference = hand_built_reference(4);
    // An uneven, worker-chosen partition — including one empty partition.
    let partitions = vec![vec![2usize, 0], vec![], vec![1, 3]];
    let endpoints = spawn_partitioned_workers(&reference, &partitions, None);
    let remote = RemoteBackend::connect(reference.clone(), &endpoints).expect("connect");
    assert_eq!(remote.worker_classes(0), &[0, 2]); // sorted by the worker
    assert_eq!(remote.worker_classes(1), &[] as &[usize]);
    let indexed = BackendConfig::Indexed.build(reference);
    for probe in &probes() {
        assert_eq!(
            bits(&remote.try_feature_vector_prepared(probe).unwrap()),
            bits(&indexed.feature_vector_prepared(probe))
        );
    }
}

#[test]
fn empty_class_and_single_class_references_are_equivalent() {
    // A class with no reference samples must produce all-zero columns
    // through the wire exactly as it does in process.
    let velvet = make_sample("velvet", 0);
    let reference = Arc::new(ReferenceSet::new(
        vec!["Velvet".into(), "Empty".into()],
        std::slice::from_ref(&velvet),
        &[0],
        &FeatureKind::ALL,
    ));
    let probe = PreparedSampleFeatures::prepare(&velvet);
    let expected = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(&probe);
    for n_workers in [1, 2] {
        let endpoints = spawn_loopback_workers(&reference, n_workers);
        let remote = RemoteBackend::connect(reference.clone(), &endpoints).expect("connect");
        assert_eq!(
            bits(&remote.try_feature_vector_prepared(&probe).unwrap()),
            bits(&expected),
            "empty-class reference with {n_workers} workers"
        );
    }

    // A single-class reference (n_classes = 1) with more workers than
    // classes: the surplus worker gets an empty partition.
    let reference = Arc::new(ReferenceSet::new(
        vec!["Only".into()],
        std::slice::from_ref(&velvet),
        &[0],
        &FeatureKind::ALL,
    ));
    let probe = PreparedSampleFeatures::prepare(&velvet);
    let expected = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(&probe);
    assert_eq!(expected[0], 100.0);
    let endpoints = spawn_loopback_workers(&reference, 2);
    let remote = RemoteBackend::connect(reference.clone(), &endpoints).expect("connect");
    assert_eq!(
        bits(&remote.try_feature_vector_prepared(&probe).unwrap()),
        bits(&expected)
    );
}

fn trained(seed: u64) -> (corpus::Corpus, TrainedClassifier) {
    let corpus = corpus::CorpusBuilder::new(seed).build(&corpus::Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 25,
            ..Default::default()
        },
        ..Default::default()
    });
    let classifier = FuzzyHashClassifier::with_config(config)
        .fit(&corpus)
        .expect("fit succeeds");
    (corpus, classifier)
}

#[test]
fn stored_artifact_opens_unchanged_under_a_remote_topology() {
    let (corpus, original) = trained(31);
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(23)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let expected = original.classify_batch(&batch);

    // Persist, serve the same artifact from loopback workers, and reopen
    // the stored artifact under the remote topology.
    let path = std::env::temp_dir().join(format!("fhc-remote-it-{}.fhc", std::process::id()));
    original.save(&path).expect("save artifact");
    let endpoints = spawn_loopback_workers(&original.reference_shared(), 3);
    let config = FhcConfig::new().backend(BackendConfig::remote(endpoints));
    let reopened = TrainedClassifier::load_with(&path, &config).expect("load under remote");
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        reopened.backend_config(),
        BackendConfig::Remote { .. }
    ));

    // Identical artifact bytes (the backend is runtime-only) and identical
    // predictions through the wire — fallible and infallible paths alike.
    assert_eq!(reopened.to_bytes(), original.to_bytes());
    assert_eq!(
        reopened.try_classify_batch(&batch).expect("workers alive"),
        expected
    );
    assert_eq!(reopened.classify_batch(&batch), expected);
}

#[test]
fn a_killed_worker_yields_a_typed_error_not_a_wrong_row() {
    let reference = hand_built_reference(3);
    // Worker 1 dies after answering one request on its only connection and
    // drops its listener, so the re-dial on the next query is refused too;
    // worker 0 stays healthy.
    let partitions = vec![vec![0usize, 2], vec![1usize]];
    let endpoints = spawn_partitioned_workers(&reference, &partitions, None);
    let dying = spawn_partitioned_workers(&reference, &[vec![1usize]], Some(1));
    let endpoints = vec![endpoints[0].clone(), dying[0].clone()];

    let remote = RemoteBackend::connect(reference.clone(), &endpoints).expect("connect");
    let probe = &probes()[0];
    // First query: everything healthy, row matches the oracle.
    let expected = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(probe);
    assert_eq!(
        bits(&remote.try_feature_vector_prepared(probe).unwrap()),
        bits(&expected)
    );
    // Second query: worker 1's connection is gone mid-conversation. The
    // row must not come back wrong or partial — it must not come back at
    // all, as a typed WorkerLost error.
    match remote.try_feature_vector_prepared(probe) {
        Err(FhcError::Net(e)) => assert!(e.is_worker_lost(), "expected WorkerLost, got {e}"),
        other => panic!("expected a typed network error, got {other:?}"),
    }
    // And it stays down: later queries keep failing cleanly.
    assert!(remote.try_feature_vector_prepared(probe).is_err());
}

#[test]
fn handshake_rejects_a_mismatched_reference_set() {
    let serving_side = hand_built_reference(3);
    let worker_side = hand_built_reference(4); // different artifact
    let endpoints = spawn_loopback_workers(&worker_side, 1);
    match RemoteBackend::connect(serving_side, &endpoints) {
        Err(NetError::Handshake { detail, .. }) => {
            assert!(detail.contains("fingerprint"), "got: {detail}");
        }
        other => panic!("expected a fingerprint handshake failure, got {other:?}"),
    }
}

#[test]
fn mixed_partitions_that_do_not_cover_are_rejected() {
    let reference = hand_built_reference(4);
    // Two workers both claiming class 0 (and nobody serving 2, 3).
    let endpoints = spawn_partitioned_workers(&reference, &[vec![0, 1], vec![0]], None);
    match RemoteBackend::connect(reference, &endpoints) {
        Err(NetError::Partition(detail)) => {
            assert!(detail.contains("exactly once"), "got: {detail}");
        }
        other => panic!("expected a partition error, got {other:?}"),
    }
}

#[test]
fn opening_an_artifact_against_dead_workers_is_an_error_not_a_panic() {
    let (_, original) = trained(37);
    let bytes = original.to_bytes();
    // A port nothing listens on: grab one, then drop the listener.
    let port = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().unwrap().port()
    };
    let dead = Endpoint::Tcp(format!("127.0.0.1:{port}"));
    let config = FhcConfig::new().backend(BackendConfig::remote([dead]));
    match TrainedClassifier::from_bytes_with(&bytes, &config) {
        Err(FhcError::Net(NetError::Io { peer, .. })) => {
            assert!(peer.contains(&port.to_string()), "peer was {peer}");
        }
        other => panic!("expected a typed connect error, got {other:?}"),
    }
    // try_set_backend on a live classifier behaves the same and leaves the
    // classifier serving on its previous backend.
    let mut classifier = TrainedClassifier::from_bytes(&bytes).expect("decode");
    let before = classifier.backend_config();
    let port2 = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().unwrap().port()
    };
    assert!(classifier
        .try_set_backend(BackendConfig::remote([Endpoint::Tcp(format!(
            "127.0.0.1:{port2}"
        ))]))
        .is_err());
    assert_eq!(classifier.backend_config(), before);
}

/// Adversarial hand-built hashes over the wire (the shared `common`
/// fixture): the degenerate shapes the inverted gram index special-cases
/// must survive the prepared-query wire encoding and come back
/// byte-identical to the in-process indexed rows, with score-budget
/// pruning on in the workers.
#[test]
fn degenerate_hashes_are_equivalent_over_the_wire() {
    let references = common::degenerate_references();
    let labels: Vec<usize> = (0..references.len()).map(|i| i % 2).collect();
    let reference = Arc::new(ReferenceSet::new(
        vec!["a".into(), "b".into()],
        &references,
        &labels,
        &FeatureKind::ALL,
    ));
    let endpoints = spawn_loopback_workers(&reference, 2);
    let remote = RemoteBackend::connect(reference.clone(), &endpoints).expect("connect");
    let indexed = BackendConfig::Indexed.build(reference.clone());
    for (i, probe) in common::degenerate_probes().iter().enumerate() {
        let probe = PreparedSampleFeatures::prepare(probe);
        assert_eq!(
            bits(&remote.feature_vector_prepared(&probe)),
            bits(&indexed.feature_vector_prepared(&probe)),
            "probe {i}: remote vs indexed"
        );
    }
}
