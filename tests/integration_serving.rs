//! Integration tests of the fit/predict serving API: determinism across
//! independent fits, agreement between the evaluation pipeline and the
//! serving path, artifact save/load round trips, and equivalence of the
//! precomputed similarity index with the unindexed scan.

use corpus::{Catalog, CorpusBuilder};
use fhc::config::FhcConfig;
use fhc::features::SampleFeatures;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::{ServingConfig, TrainedClassifier};

fn small_corpus(seed: u64) -> corpus::Corpus {
    CorpusBuilder::new(seed).build(&Catalog::paper().scaled(0.02))
}

fn config(seed: u64) -> FhcConfig {
    FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 25,
            ..Default::default()
        },
        ..Default::default()
    })
}

/// A batch of probe executables drawn from across the corpus.
fn probe_batch(corpus: &corpus::Corpus) -> Vec<(String, Vec<u8>)> {
    corpus
        .samples()
        .iter()
        .step_by(11)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect()
}

#[test]
fn independent_fits_with_same_seed_predict_identically() {
    let corpus = small_corpus(5);
    let batch = probe_batch(&corpus);

    let a = FuzzyHashClassifier::with_config(config(9))
        .fit(&corpus)
        .expect("first fit");
    let b = FuzzyHashClassifier::with_config(config(9))
        .fit(&corpus)
        .expect("second fit");

    assert_eq!(a.known_class_names(), b.known_class_names());
    assert_eq!(a.confidence_threshold(), b.confidence_threshold());
    assert_eq!(a.forest_params(), b.forest_params());

    let pred_a = a.classify_batch(&batch);
    let pred_b = b.classify_batch(&batch);
    assert_eq!(
        pred_a, pred_b,
        "same seed + corpus must give identical predictions"
    );

    // And the artifact bytes themselves are identical.
    assert_eq!(a.to_bytes(), b.to_bytes());
}

#[test]
fn different_seeds_change_the_split() {
    let corpus = small_corpus(5);
    let a = FuzzyHashClassifier::with_config(config(1))
        .fit(&corpus)
        .expect("fit seed 1");
    let b = FuzzyHashClassifier::with_config(config(2))
        .fit(&corpus)
        .expect("fit seed 2");
    // The class-level known/unknown split is seed-dependent, so the label
    // spaces diverge.
    assert_ne!(a.known_class_names(), b.known_class_names());
}

#[test]
fn saved_then_loaded_classifier_predicts_identically() {
    let corpus = small_corpus(3);
    let batch = probe_batch(&corpus);
    let trained = FuzzyHashClassifier::with_config(config(3))
        .fit(&corpus)
        .expect("fit");

    let path = std::env::temp_dir().join(format!("fhc-serving-test-{}.fhc", std::process::id()));
    trained.save(&path).expect("save");
    let restored = TrainedClassifier::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.seed(), trained.seed());
    assert_eq!(restored.known_class_names(), trained.known_class_names());
    assert_eq!(
        restored.confidence_threshold(),
        trained.confidence_threshold()
    );
    assert_eq!(restored.threshold_curve(), trained.threshold_curve());
    assert_eq!(
        restored.classify_batch(&batch),
        trained.classify_batch(&batch)
    );
    // Round-tripping the restored classifier is byte-stable.
    assert_eq!(restored.to_bytes(), trained.to_bytes());
}

#[test]
fn prepared_index_agrees_with_unindexed_scan_end_to_end() {
    // The serving hot path now runs through the precomputed block-size
    // bucketed similarity index; the unindexed scan is kept as the oracle.
    // Across a corpus-wide probe batch (known classes, unknown classes, and
    // a non-ELF stranger) the two must produce identical feature rows.
    let corpus = small_corpus(11);
    let trained = FuzzyHashClassifier::with_config(config(11))
        .fit(&corpus)
        .expect("fit");
    let reference = trained.reference();

    let mut probes: Vec<SampleFeatures> = corpus
        .samples()
        .iter()
        .step_by(7)
        .map(|s| SampleFeatures::extract(&corpus.generate_bytes(s)))
        .collect();
    probes.push(SampleFeatures::extract(
        b"#!/bin/sh\necho not an elf, stresses the no-symbols path\n",
    ));

    for probe in &probes {
        assert_eq!(
            reference.feature_vector(probe),
            reference.feature_vector_scan(probe),
            "prepared index and scan oracle disagree"
        );
    }
    assert_eq!(
        reference.feature_matrix(&probes),
        reference.feature_matrix_scan(&probes)
    );
}

#[test]
fn serving_config_is_runtime_only_and_prediction_invariant() {
    let corpus = small_corpus(3);
    let batch = probe_batch(&corpus);
    let trained = FuzzyHashClassifier::with_config(config(3))
        .fit(&corpus)
        .expect("fit");
    let expected = trained.classify_batch(&batch);

    // Any parallelism produces the same predictions.
    let tuned = trained.clone().with_serving_config(ServingConfig {
        threads: 1,
        chunk: 16,
    });
    assert_eq!(tuned.classify_batch(&batch), expected);

    // The serving config is not baked into artifacts: bytes are identical
    // regardless of tuning, and a loaded classifier starts from the default.
    assert_eq!(tuned.to_bytes(), trained.to_bytes());
    let restored = TrainedClassifier::from_bytes(&tuned.to_bytes()).expect("decode");
    assert_eq!(restored.serving_config(), ServingConfig::default());
    assert_eq!(restored.classify_batch(&batch), expected);
}

#[test]
fn serving_path_agrees_with_evaluation_pipeline() {
    // The predictions PipelineOutcome reports for the test split must match
    // what the TrainedClassifier produces for the same samples: one model,
    // two code paths.
    let corpus = small_corpus(6);
    let classifier = FuzzyHashClassifier::with_config(config(6));
    let features = classifier.extract_features(&corpus);
    let fit = classifier
        .fit_with_features(&corpus, &features)
        .expect("fit");
    let outcome = classifier
        .evaluate_with_features(&corpus, &features, &fit)
        .expect("evaluate");

    let predictions = fit.classifier.classify_features_batch(
        &outcome
            .split
            .test
            .iter()
            .map(|&i| features[i].clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(predictions.len(), outcome.y_pred.len());
    for (prediction, &expected) in predictions.iter().zip(&outcome.y_pred) {
        assert_eq!(prediction.eval_label, expected);
    }
}

#[test]
fn fit_then_run_with_features_is_consistent_with_run() {
    // run() is documented as a thin fit + evaluate wrapper; both entry
    // points must agree for the same configuration.
    let corpus = small_corpus(4);
    let classifier = FuzzyHashClassifier::with_config(config(7));
    let features = classifier.extract_features(&corpus);
    let via_run = classifier
        .run_with_features(&corpus, &features)
        .expect("run");
    let fit = classifier
        .fit_with_features(&corpus, &features)
        .expect("fit");
    let via_evaluate = classifier
        .evaluate_with_features(&corpus, &features, &fit)
        .expect("evaluate");
    assert_eq!(via_run.y_pred, via_evaluate.y_pred);
    assert_eq!(via_run.y_true, via_evaluate.y_true);
    assert_eq!(
        via_run.confidence_threshold,
        via_evaluate.confidence_threshold
    );
    assert_eq!(via_run.known_class_names, via_evaluate.known_class_names);
}
