//! Integration tests of the experiment drivers (tables / figures), the
//! ablation study, and the baselines on a small corpus.

use corpus::{Catalog, CorpusBuilder};
use fhc::ablation::{ablation_configurations, run_ablation};
use fhc::baselines::run_baselines;
use fhc::config::FhcConfig;
use fhc::experiments as exp;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};

fn setup() -> (
    corpus::Corpus,
    Vec<fhc::features::SampleFeatures>,
    FhcConfig,
) {
    let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 42,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 30,
            ..Default::default()
        },
        ..Default::default()
    });
    let features = FuzzyHashClassifier::with_config(config.clone()).extract_features(&corpus);
    (corpus, features, config)
}

#[test]
fn all_table_and_figure_drivers_produce_output() {
    let (corpus, features, config) = setup();
    let outcome = FuzzyHashClassifier::with_config(config)
        .run_with_features(&corpus, &features)
        .expect("pipeline runs");

    let t1 = exp::table1_velvet_versions(&corpus);
    assert!(t1.contains("Velvet") && t1.contains("velvetg"));

    let f2 = exp::figure2_sample_distribution(&corpus);
    assert_eq!(f2.lines().count(), 94, "header + separator + 92 classes");

    let t2 = exp::table2_hash_similarity_example(&corpus, &features, "OpenMalaria");
    assert!(t2.contains("OpenMalaria"));
    assert!(t2.contains("Similarity"));

    let t3 = exp::table3_unknown_classes(&corpus, &outcome);
    assert!(t3.contains("TOTAL"));
    assert_eq!(
        t3.lines().count(),
        2 + outcome.unknown_class_names.len() + 1
    );

    let t4 = exp::table4_classification_report(&outcome);
    assert!(t4.contains("macro avg") && t4.contains("-1"));

    let t5 = exp::table5_feature_importance(&outcome);
    assert!(t5.contains("ssdeep-file"));
    assert!(t5.contains("ssdeep-strings"));
    assert!(t5.contains("ssdeep-symbols"));

    let f3 = exp::figure3_threshold_curve(&outcome);
    assert!(f3.contains("<== chosen"));
    assert_eq!(f3.lines().count(), 2 + outcome.threshold_curve.len());

    let summary = exp::headline_summary(&outcome);
    assert!(summary.contains("macro f1"));
}

#[test]
fn baselines_show_the_papers_crypto_hash_limitation() {
    let (corpus, features, config) = setup();
    let outcome = FuzzyHashClassifier::with_config(config.clone())
        .run_with_features(&corpus, &features)
        .unwrap();
    let baselines =
        run_baselines(&corpus, &features, &config, outcome.confidence_threshold).unwrap();
    assert_eq!(baselines.len(), 3);

    let exact = baselines.iter().find(|b| b.name == "exact-sha256").unwrap();
    // The exact-hash baseline cannot recognize new versions, so its macro F1
    // collapses far below the fuzzy-hash forest — the paper's core argument.
    assert!(
        exact.macro_f1 < outcome.report.macro_avg().f1 * 0.5,
        "exact hash macro {} vs forest {}",
        exact.macro_f1,
        outcome.report.macro_avg().f1
    );

    // The rendered comparison table includes every model.
    let table = exp::baseline_table(&baselines, &outcome);
    assert!(table.contains("fuzzy-hash random forest"));
    assert!(table.contains("exact-sha256"));
    assert!(table.contains("knn-5"));
    assert!(table.contains("gaussian-nb"));
}

#[test]
fn ablation_runs_every_configuration() {
    let (corpus, features, mut config) = setup();
    // Keep the ablation fast: fewer trees.
    config.pipeline.forest.n_estimators = 15;
    let results = run_ablation(&corpus, &features, &config).unwrap();
    assert_eq!(results.len(), ablation_configurations().len());
    for r in &results {
        assert!(r.macro_f1 >= 0.0 && r.macro_f1 <= 1.0);
        assert!(!r.kinds.is_empty());
    }
    // Using all three features should not be dramatically worse than the best
    // single view.
    let all = results.iter().find(|r| r.name == "all-features").unwrap();
    let best_single = results
        .iter()
        .filter(|r| r.kinds.len() == 1)
        .map(|r| r.macro_f1)
        .fold(0.0f64, f64::max);
    assert!(all.macro_f1 > best_single - 0.25);
    let table = exp::ablation_table(&results);
    assert!(table.contains("symbols-only"));
}
