//! End-to-end integration tests of the Fuzzy Hash Classifier pipeline on a
//! small synthetic corpus (spanning the corpus, binary, ssdeep, mlcore, and
//! fhc crates).

use corpus::{Catalog, CorpusBuilder};
use fhc::config::FhcConfig;
use fhc::features::FeatureKind;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::threshold::UNKNOWN_LABEL;
use mlcore::metrics::per_class_metrics;

fn small_corpus(seed: u64) -> corpus::Corpus {
    CorpusBuilder::new(seed).build(&Catalog::paper().scaled(0.03))
}

#[test]
fn pipeline_reaches_paper_like_f1_on_small_corpus() {
    let corpus = small_corpus(42);
    let config = FhcConfig::new().seed(42);
    let outcome = FuzzyHashClassifier::with_config(config)
        .run(&corpus)
        .expect("pipeline runs");

    // The paper reports ~0.90 macro / 0.89 micro / 0.90 weighted F1. On the
    // scaled synthetic corpus we only require the same ballpark: well above
    // chance (1/75) and clearly useful.
    assert!(
        outcome.report.macro_avg().f1 > 0.7,
        "macro f1 {}",
        outcome.report.macro_avg().f1
    );
    assert!(
        outcome.report.micro().f1 > 0.7,
        "micro f1 {}",
        outcome.report.micro().f1
    );
    assert!(outcome.report.weighted_avg().f1 > 0.7);

    // The evaluation label space starts with the "-1" unknown class.
    assert_eq!(outcome.eval_class_names[0], "-1");
    assert_eq!(
        outcome.eval_class_names.len(),
        1 + outcome.known_class_names.len()
    );
    assert_eq!(outcome.y_true.len(), outcome.n_test);
    assert_eq!(outcome.y_pred.len(), outcome.n_test);

    // The two-phase split: ~20% of the 92 classes are unknown, and every
    // unknown-class sample is in the test set.
    assert_eq!(
        outcome.known_class_names.len() + outcome.unknown_class_names.len(),
        92
    );
    assert!(outcome.unknown_class_names.len() >= 14);
    assert!(outcome.n_unknown_test > 0);
    assert!(outcome.n_unknown_test <= outcome.n_test);

    // The unknown class must actually be predicted for a meaningful share of
    // the unknown test samples (the whole point of the threshold).
    let unknown_predicted = outcome
        .y_pred
        .iter()
        .filter(|&&p| p == UNKNOWN_LABEL)
        .count();
    assert!(
        unknown_predicted > 0,
        "classifier never predicted the unknown class"
    );

    // Feature importances cover the three views and sum to ~1.
    assert_eq!(outcome.feature_importance.len(), 3);
    let total: f64 = outcome
        .feature_importance
        .iter()
        .map(|f| f.importance)
        .sum();
    assert!((total - 1.0).abs() < 1e-9);

    // The threshold sweep covers the configured grid and the chosen value is
    // one of its points.
    assert_eq!(outcome.threshold_curve.len(), 10);
    assert!(outcome
        .threshold_curve
        .iter()
        .any(|p| (p.threshold - outcome.confidence_threshold).abs() < 1e-9));
}

#[test]
fn pipeline_is_deterministic_for_a_seed() {
    let corpus = small_corpus(3);
    let classifier = FuzzyHashClassifier::with_config(FhcConfig::new().seed(9));
    let features = classifier.extract_features(&corpus);
    let a = classifier.run_with_features(&corpus, &features).unwrap();
    let b = classifier.run_with_features(&corpus, &features).unwrap();
    assert_eq!(a.y_pred, b.y_pred);
    assert_eq!(a.confidence_threshold, b.confidence_threshold);
    assert_eq!(a.unknown_class_names, b.unknown_class_names);
}

#[test]
fn retune_threshold_reproduces_the_fit_on_an_unchanged_corpus() {
    let corpus = small_corpus(7);
    let classifier = FuzzyHashClassifier::with_config(FhcConfig::new().seed(11));
    let features = classifier.extract_features(&corpus);
    let mut fit = classifier
        .fit_with_features(&corpus, &features)
        .expect("fit succeeds");
    let fitted_threshold = fit.classifier.confidence_threshold();
    let fitted_curve = fit.classifier.threshold_curve().to_vec();

    // Nothing changed, so the cheap re-tune must land exactly where the
    // fit's own tuning did — same threshold, same measured curve.
    let retuned = classifier
        .retune_threshold(&corpus, &features, &mut fit)
        .expect("retune succeeds");
    assert_eq!(retuned, fitted_threshold);
    assert_eq!(fit.classifier.confidence_threshold(), fitted_threshold);
    assert_eq!(fit.classifier.threshold_curve(), fitted_curve.as_slice());
}

#[test]
fn unknown_class_precision_recall_are_reasonable() {
    let corpus = small_corpus(42);
    let outcome = FuzzyHashClassifier::with_config(FhcConfig::new().seed(42))
        .run(&corpus)
        .unwrap();
    let per_class = per_class_metrics(
        &outcome.y_true,
        &outcome.y_pred,
        outcome.eval_class_names.len(),
    );
    let unknown = per_class[UNKNOWN_LABEL];
    assert_eq!(unknown.support, outcome.n_unknown_test);
    // The unknown class must be detected far better than chance; the paper
    // reports precision 0.92 / recall 0.75.
    assert!(
        unknown.precision > 0.5,
        "unknown precision {}",
        unknown.precision
    );
    assert!(unknown.recall > 0.5, "unknown recall {}", unknown.recall);
}

#[test]
fn symbols_only_ablation_still_classifies() {
    let corpus = small_corpus(5);
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 5,
        feature_kinds: vec![FeatureKind::Symbols],
        ..Default::default()
    });
    let outcome = FuzzyHashClassifier::with_config(config)
        .run(&corpus)
        .unwrap();
    // The paper finds the symbols feature to be the strongest on its own.
    assert!(
        outcome.report.macro_avg().f1 > 0.6,
        "macro {}",
        outcome.report.macro_avg().f1
    );
    assert_eq!(outcome.feature_importance.len(), 1);
    assert_eq!(outcome.feature_importance[0].kind, FeatureKind::Symbols);
}

#[test]
fn invalid_configurations_are_rejected() {
    let corpus = small_corpus(1);
    let classifier = FuzzyHashClassifier::with_config(FhcConfig::new().pipeline(PipelineConfig {
        feature_kinds: vec![],
        ..Default::default()
    }));
    let features = FuzzyHashClassifier::with_config(FhcConfig::new()).extract_features(&corpus);
    assert!(classifier.run_with_features(&corpus, &features).is_err());

    let classifier = FuzzyHashClassifier::with_config(FhcConfig::new().pipeline(PipelineConfig {
        thresholds: vec![],
        ..Default::default()
    }));
    assert!(classifier.run_with_features(&corpus, &features).is_err());

    // Features that do not cover the corpus are rejected.
    let classifier = FuzzyHashClassifier::with_config(FhcConfig::new());
    assert!(classifier
        .run_with_features(&corpus, &features[..3])
        .is_err());
}

#[test]
#[allow(deprecated)]
fn deprecated_pipeline_config_constructor_still_works() {
    // `FuzzyHashClassifier::new(PipelineConfig)` is kept as a thin shim for
    // one release: it must behave exactly like the unified-config path with
    // default runtime layers.
    let corpus = small_corpus(3);
    let via_shim = FuzzyHashClassifier::new(PipelineConfig {
        seed: 9,
        ..Default::default()
    });
    let via_config = FuzzyHashClassifier::with_config(FhcConfig::new().seed(9));
    let features = via_config.extract_features(&corpus);
    let a = via_shim.run_with_features(&corpus, &features).unwrap();
    let b = via_config.run_with_features(&corpus, &features).unwrap();
    assert_eq!(a.y_pred, b.y_pred);
    assert_eq!(a.confidence_threshold, b.confidence_threshold);
}
