//! Integration equivalence suite for the `fhc-gateway` front door.
//!
//! The gateway must be invisible in the numbers: rows and predictions
//! scored through `client → gateway → shard fleet` are **byte-identical**
//! to `IndexedBackend` (and the `ScanBackend` oracle) — for one client and
//! for several clients scoring concurrently, which is when the gateway's
//! batch coalescing actually kicks in. Failure stays typed end to end: a
//! shard worker killed behind the gateway surfaces to every client as
//! [`fhc::FhcError::Net`], never as a wrong or partial row.

use fhc::backend::{BackendConfig, SimilarityBackend};
use fhc::config::FhcConfig;
use fhc::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::TrainedClassifier;
use fhc::shardnet::{gateway, worker, Endpoint, Gateway, GatewayBackend, GatewayOptions};
use fhc::shardnet::{NetError, ShardWorker};
use fhc::similarity::ReferenceSet;
use fhc::FhcError;
use std::net::TcpListener;
use std::sync::Arc;

/// Spawn `n` loopback shard workers, each serving every class (the gateway
/// assigns the round-robin partition at connect). With `Some(limit)` the
/// worker accepts exactly one connection, answers `limit` requests on it,
/// and then drops its listener entirely — it is truly dead afterwards, so
/// the gateway's re-dial on the next query is refused rather than healed.
fn spawn_workers(reference: &Arc<ReferenceSet>, n: usize, limit: Option<u64>) -> Vec<Endpoint> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let shard = Arc::new(ShardWorker::all_classes(Arc::clone(reference)));
            std::thread::spawn(move || match limit {
                None => worker::serve_tcp(shard, listener),
                Some(limit) => {
                    if let Ok((stream, _)) = listener.accept() {
                        drop(listener);
                        let _ = shard.serve_requests(stream, "loopback", Some(limit));
                    }
                }
            });
            endpoint
        })
        .collect()
}

/// Stand a gateway up in front of `worker_endpoints` and return its client
/// endpoint. The accept thread lives until the test process exits.
fn spawn_gateway(reference: &Arc<ReferenceSet>, worker_endpoints: &[Endpoint]) -> Endpoint {
    let gw = Gateway::connect(
        Arc::clone(reference),
        worker_endpoints,
        GatewayOptions::default(),
    )
    .expect("gateway connects its fleet");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback gateway");
    let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
    let gw = Arc::new(gw);
    std::thread::spawn(move || gateway::serve_tcp(gw, listener));
    endpoint
}

fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
    use binary::elf::ElfBuilder;
    let mut b = ElfBuilder::new();
    let mut code: Vec<u8> = class_tag
        .bytes()
        .cycle()
        .take(24_000)
        .enumerate()
        .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
        .collect();
    for (i, byte) in code
        .iter_mut()
        .skip((variant as usize * 512) % 20_000)
        .take(256)
        .enumerate()
    {
        *byte ^= (variant as u8).wrapping_add(i as u8);
    }
    b.add_text_section(code);
    b.add_rodata_section(format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes());
    for i in 0..30 {
        b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
    }
    SampleFeatures::extract(&b.build())
}

fn hand_built_reference(n_classes: usize) -> Arc<ReferenceSet> {
    let tags = ["velvet", "openmalaria", "gromacs", "lammps", "quantum"];
    let mut train = Vec::new();
    let mut labels = Vec::new();
    for class in 0..n_classes {
        for variant in 0..2 {
            train.push(make_sample(tags[class % tags.len()], variant));
            labels.push(class);
        }
    }
    Arc::new(ReferenceSet::new(
        (0..n_classes).map(|c| format!("class-{c}")).collect(),
        &train,
        &labels,
        &FeatureKind::ALL,
    ))
}

fn probes() -> Vec<PreparedSampleFeatures> {
    [
        make_sample("velvet", 0),
        make_sample("velvet", 9),
        make_sample("gromacs", 4),
        make_sample("lammps", 2),
        SampleFeatures::extract(b"#!/bin/sh\necho not an elf, no symbols view\n"),
    ]
    .iter()
    .map(PreparedSampleFeatures::prepare)
    .collect()
}

fn bits(row: &[f64]) -> Vec<u64> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// Rows through the gateway are byte-identical to the in-process backends
/// for 1, 2, and 4 clients scoring **concurrently** over their own
/// connections — the concurrent cases drive the coalescing path (several
/// queries packed into one shard batch frame), which must not perturb a
/// single bit.
#[test]
fn gateway_rows_are_byte_identical_for_1_2_4_concurrent_clients() {
    let n_classes = 4;
    let reference = hand_built_reference(n_classes);
    let workers = spawn_workers(&reference, 2, None);
    let front = spawn_gateway(&reference, &workers);

    let indexed = BackendConfig::Indexed.build(reference.clone());
    let scan = BackendConfig::Scan.build(reference.clone());
    let probes = Arc::new(probes());
    let expected: Vec<Vec<u64>> = probes
        .iter()
        .map(|probe| {
            let row = scan.feature_vector_prepared(probe);
            assert_eq!(bits(&indexed.feature_vector_prepared(probe)), bits(&row));
            bits(&row)
        })
        .collect();
    let expected = Arc::new(expected);

    for n_clients in [1usize, 2, 4] {
        let handles: Vec<_> = (0..n_clients)
            .map(|client| {
                let reference = Arc::clone(&reference);
                let probes = Arc::clone(&probes);
                let expected = Arc::clone(&expected);
                let front = front.clone();
                std::thread::spawn(move || {
                    let backend = GatewayBackend::connect(reference, &front).expect("dial gateway");
                    // Several passes so the clients genuinely overlap.
                    for pass in 0..3 {
                        for (i, probe) in probes.iter().enumerate() {
                            let row = backend
                                .try_feature_vector_prepared(probe)
                                .expect("gateway scoring");
                            assert_eq!(
                                bits(&row),
                                expected[i],
                                "client {client} pass {pass} probe {i} diverged"
                            );
                        }
                    }
                    // The batched client path rides one ScoreBatchRequest
                    // to the gateway — same rows, bit for bit.
                    let rows = backend
                        .try_feature_rows_prepared(&probes)
                        .expect("batched gateway scoring");
                    for (i, row) in rows.iter().enumerate() {
                        assert_eq!(
                            bits(row),
                            expected[i],
                            "client {client} batched probe {i} diverged"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    }
}

fn trained(seed: u64) -> (corpus::Corpus, TrainedClassifier) {
    let corpus = corpus::CorpusBuilder::new(seed).build(&corpus::Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 25,
            ..Default::default()
        },
        ..Default::default()
    });
    let classifier = FuzzyHashClassifier::with_config(config)
        .fit(&corpus)
        .expect("fit succeeds");
    (corpus, classifier)
}

/// A stored artifact opened under `gateway:EP` predicts identically to the
/// in-process original, and the backend config round-trips through the
/// classifier.
#[test]
fn stored_artifact_opens_unchanged_behind_a_gateway() {
    let (corpus, original) = trained(41);
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(23)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let expected = original.classify_batch(&batch);

    let path = std::env::temp_dir().join(format!("fhc-gateway-it-{}.fhc", std::process::id()));
    original.save(&path).expect("save artifact");
    let reference = original.reference_shared();
    let workers = spawn_workers(&reference, 3, None);
    let front = spawn_gateway(&reference, &workers);
    let config = FhcConfig::new().backend(BackendConfig::Gateway {
        endpoint: front.clone(),
        tenant: None,
    });
    let reopened = TrainedClassifier::load_with(&path, &config).expect("load behind gateway");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        reopened.backend_config(),
        BackendConfig::Gateway {
            endpoint: front,
            tenant: None,
        }
    );

    // Identical artifact bytes (the backend is runtime-only) and identical
    // predictions through two network hops.
    assert_eq!(reopened.to_bytes(), original.to_bytes());
    assert_eq!(
        reopened.try_classify_batch(&batch).expect("fleet alive"),
        expected
    );
}

/// A shard worker killed behind the gateway surfaces to the client as a
/// typed network error — the gateway must relay the loss, not invent a
/// row. The dead worker's listener is gone too, so the gateway's
/// re-dial-on-poison cannot heal it (contrast with
/// `a_lost_shard_connection_heals_behind_the_gateway`).
#[test]
fn a_killed_worker_behind_the_gateway_is_a_typed_error() {
    let reference = hand_built_reference(3);
    // The dying worker answers exactly 2 requests on its only connection,
    // then drops both the socket and the listener: the handshake survives
    // and the first probes score; the next batch hits a dead socket and
    // the re-dial is refused.
    let mut workers = spawn_workers(&reference, 1, None);
    workers.extend(spawn_workers(&reference, 1, Some(2)));
    let front = spawn_gateway(&reference, &workers);

    let backend = GatewayBackend::connect(reference.clone(), &front).expect("dial gateway");
    let probe = &probes()[0];
    let expected = BackendConfig::Scan
        .build(reference.clone())
        .feature_vector_prepared(probe);
    assert_eq!(
        bits(&backend.try_feature_vector_prepared(probe).expect("healthy")),
        bits(&expected)
    );
    assert_eq!(
        bits(
            &backend
                .try_feature_vector_prepared(probe)
                .expect("last answered request")
        ),
        bits(&expected)
    );
    // The dying worker's connection is now gone mid-conversation.
    match backend.try_feature_vector_prepared(probe) {
        Err(FhcError::Net(e)) => {
            // The gateway relays the shard loss either as the remote error
            // frame's message or by dropping the client connection; both
            // are typed, neither is a row.
            assert!(
                matches!(
                    e,
                    NetError::Remote { .. } | NetError::WorkerLost { .. } | NetError::Io { .. }
                ),
                "expected a relayed shard loss, got {e}"
            );
        }
        other => panic!("expected a typed network error, got {other:?}"),
    }
}

/// `gateway:EP` parses, displays, and round-trips as a backend config.
#[test]
fn gateway_backend_config_parses_and_displays() {
    let config: BackendConfig = "gateway:127.0.0.1:7000".parse().expect("parses");
    assert_eq!(
        config,
        BackendConfig::Gateway {
            endpoint: Endpoint::Tcp("127.0.0.1:7000".into()),
            tenant: None,
        }
    );
    assert_eq!(config.to_string(), "gateway(tcp:127.0.0.1:7000)");
    let uds: BackendConfig = "gateway:unix:/run/fhc/gw.sock".parse().expect("parses");
    assert_eq!(
        uds,
        BackendConfig::Gateway {
            endpoint: Endpoint::Unix("/run/fhc/gw.sock".into()),
            tenant: None,
        }
    );
    assert!("gateway:".parse::<BackendConfig>().is_err());
}
