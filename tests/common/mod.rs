//! Shared fixtures for the workspace-level integration suites.
//!
//! Each integration test file is its own crate, so shared helpers live
//! here and are pulled in with `mod common;`. Not every suite uses every
//! helper, hence the `dead_code` allowance.

#![allow(dead_code)]

use fhc::features::SampleFeatures;

/// A sample whose three views are the same hand-built hash — the shapes
/// generated hashes rarely produce but the comparison rules must handle.
pub fn parts_sample(block_size: u64, sig: &str, sig_double: &str) -> SampleFeatures {
    let h = ssdeep::FuzzyHash::from_parts(block_size, sig.into(), sig_double.into()).unwrap();
    SampleFeatures {
        file: h.clone(),
        strings: h.clone(),
        symbols: Some(h),
    }
}

/// Adversarial hand-built reference hashes: run-heavy signatures whose
/// eliminated form is below the 7-byte common-substring window (scoreable
/// only via the identical-hash fast path), factor-of-two block-size
/// pairings, near-`u64::MAX` block sizes (doubling overflows), and a
/// signature below the window length.
pub fn degenerate_references() -> Vec<SampleFeatures> {
    vec![
        parts_sample(3, "AAAAAAAAAA", "AAAAA"),
        parts_sample(3, "AAAAAAAAAB", "AAAAA"),
        parts_sample(6, "ABCDEFGHIJKLMNOP", "ABCDEFGH"),
        parts_sample(12, "ABCDEFGHIJKLMNOP", "QRSTUVWX"),
        parts_sample(24, "QRSTUVWXABCDEFGH", "MNBVCXZL"),
        parts_sample(u64::MAX, "ABCDEFGHIJKL", "ABCDEF"),
        parts_sample(u64::MAX / 2 + 1, "ABCDEFGHIJKL", "ABCDEF"),
        parts_sample(3, "ABCDE", "AB"),
    ]
}

/// Probes for [`degenerate_references`]: every reference itself (the
/// identical-hash paths) plus queries that pair with references only
/// through the half/double block-size channels and a no-match stranger.
pub fn degenerate_probes() -> Vec<SampleFeatures> {
    let mut probes = degenerate_references();
    probes.push(parts_sample(6, "QRSTUVWXABCDEFGH", "ABCDEFGHIJKLMNOP"));
    probes.push(parts_sample(48, "MNBVCXZLKJHGFDSA", "POIUYTRE"));
    probes.push(parts_sample(3, "AAAAAAAAAA", "AAAAA"));
    probes.push(parts_sample(192, "zzzzyyyyxxxxwwww", "vvvvuuuu"));
    probes
}
