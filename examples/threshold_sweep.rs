//! Reproduce the shape of the paper's Figure 3: micro / macro / weighted F1
//! as a function of the confidence threshold, and the trade-off between
//! catching unknown applications and keeping known classes accurate.
//!
//! ```text
//! cargo run --release --example threshold_sweep
//! ```

use corpus::{Catalog, CorpusBuilder};
use fhc::config::FhcConfig;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::threshold::UNKNOWN_LABEL;
use mlcore::metrics::per_class_metrics;

fn main() {
    let corpus = CorpusBuilder::new(11).build(&Catalog::paper().scaled(0.05));
    // A finer threshold grid than the default, to draw a smoother curve.
    let thresholds: Vec<f64> = (0..19).map(|i| i as f64 * 0.05).collect();
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 11,
        thresholds,
        ..Default::default()
    });
    let outcome = FuzzyHashClassifier::with_config(config)
        .run(&corpus)
        .expect("pipeline should run");

    println!("Figure 3: f1-score over confidence threshold (internal validation sweep)");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "threshold", "micro", "macro", "weighted"
    );
    for point in &outcome.threshold_curve {
        let marker = if (point.threshold - outcome.confidence_threshold).abs() < 1e-9 {
            "  <== chosen"
        } else {
            ""
        };
        println!(
            "{:>10.2} {:>10.3} {:>10.3} {:>10.3}{marker}",
            point.threshold, point.micro_f1, point.macro_f1, point.weighted_f1
        );
    }

    // The paper's discussion: the unknown class usually shows precision above
    // recall — the model is confident when it says "unknown" but misses some.
    let per_class = per_class_metrics(
        &outcome.y_true,
        &outcome.y_pred,
        outcome.eval_class_names.len(),
    );
    let unknown = per_class[UNKNOWN_LABEL];
    println!(
        "\nunknown (-1) class on the test set: precision {:.2}, recall {:.2}, f1 {:.2}, support {}",
        unknown.precision, unknown.recall, unknown.f1, unknown.support
    );
    println!(
        "test-set averages: macro f1 {:.2}, micro f1 {:.2}, weighted f1 {:.2}",
        outcome.report.macro_avg().f1,
        outcome.report.micro().f1,
        outcome.report.weighted_avg().f1
    );
}
