//! Quickstart: hash two executables, compare them, then train the classifier
//! once and serve predictions from the trained artifact.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use binary::elf::ElfBuilder;
use corpus::{Catalog, CorpusBuilder};
use fhc::config::FhcConfig;
use fhc::features::{FeatureKind, SampleFeatures};
use fhc::pipeline::FuzzyHashClassifier;
use ssdeep::{compare, fuzzy_hash_bytes};

fn main() {
    // --- 1. Fuzzy-hash two related binaries -------------------------------
    // Build two "versions" of the same tool: identical code except for a
    // localized edit, the situation cryptographic hashes cannot handle.
    let mut v1 = ElfBuilder::new();
    let code: Vec<u8> = (0..40_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    v1.add_text_section(code.clone());
    v1.add_rodata_section(b"solver version 1.0\0reading configuration\0".to_vec());
    for i in 0..50 {
        v1.add_global_function(&format!("solver_step_{i}"), (i * 700) as u64, 700);
    }
    let mut v2 = ElfBuilder::new();
    let mut patched = code;
    for byte in patched.iter_mut().skip(20_000).take(1_500) {
        *byte ^= 0x3C;
    }
    v2.add_text_section(patched);
    v2.add_rodata_section(b"solver version 1.1\0reading configuration\0".to_vec());
    for i in 0..50 {
        v2.add_global_function(&format!("solver_step_{i}"), (i * 700) as u64, 700);
    }
    let bytes_v1 = v1.build();
    let bytes_v2 = v2.build();

    let h1 = fuzzy_hash_bytes(&bytes_v1);
    let h2 = fuzzy_hash_bytes(&bytes_v2);
    println!("fuzzy hash v1.0: {h1}");
    println!("fuzzy hash v1.1: {h2}");
    println!("raw-content similarity (0-100): {}", compare(&h1, &h2));

    let f1 = SampleFeatures::extract(&bytes_v1);
    let f2 = SampleFeatures::extract(&bytes_v2);
    for kind in FeatureKind::ALL {
        println!(
            "{:>16} similarity: {}",
            kind.paper_name(),
            f1.similarity(&f2, kind)
        );
    }

    // --- 2. Train once, evaluate, then serve ------------------------------
    println!("\ntraining the Fuzzy Hash Classifier on a small synthetic corpus...");
    let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.04));
    // One layered configuration covers training behavior and every runtime
    // knob (batch parallelism, serving parallelism, similarity backend).
    let config = FhcConfig::new().seed(42);
    let classifier = FuzzyHashClassifier::with_config(config);

    // Extract features once; fit and the test-split evaluation both reuse
    // them, so the expensive hashing happens a single time.
    let features = classifier.extract_features(&corpus);
    let fit = classifier
        .fit_with_features(&corpus, &features)
        .expect("training should succeed");
    let outcome = classifier
        .evaluate_with_features(&corpus, &features, &fit)
        .expect("evaluation should succeed");

    println!(
        "known classes: {}, unknown classes: {}, train: {}, test: {}",
        outcome.known_class_names.len(),
        outcome.unknown_class_names.len(),
        outcome.n_train,
        outcome.n_test
    );
    println!(
        "macro f1 = {:.2}, micro f1 = {:.2}, weighted f1 = {:.2} (confidence threshold {:.2})",
        outcome.report.macro_avg().f1,
        outcome.report.micro().f1,
        outcome.report.weighted_avg().f1,
        outcome.confidence_threshold
    );
    println!("\nfeature importance:");
    for fi in &outcome.feature_importance {
        println!("  {:>16}: {:.3}", fi.kind.paper_name(), fi.importance);
    }

    // --- 3. The trained artifact classifies new binaries directly ---------
    let trained = fit.classifier;
    let prediction = trained.classify(&bytes_v1);
    println!(
        "\nserving: out-of-corpus solver binary -> {} (confidence {:.2})",
        prediction.label, prediction.confidence
    );
    let prediction = trained.classify(&corpus.generate_bytes(&corpus.samples()[0]));
    println!(
        "serving: corpus sample {:<14} -> {} (confidence {:.2})",
        corpus.samples()[0].class_name,
        prediction.label,
        prediction.confidence
    );
}
