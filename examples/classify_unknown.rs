//! Detecting software that deviates from allocation purpose.
//!
//! The paper's motivating scenario: a user's project allocation normally runs
//! a known set of scientific applications; one day executables appear that do
//! not belong to any known class (e.g. a cryptocurrency miner). This example
//! trains the classifier on a corpus of known applications and then shows how
//! previously unseen binaries are flagged as `"-1"` (unknown), while new
//! *versions* of known applications are still recognized.
//!
//! ```text
//! cargo run --release --example classify_unknown
//! ```

use binary::elf::ElfBuilder;
use corpus::{Catalog, CorpusBuilder};
use fhc::features::SampleFeatures;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::similarity::ReferenceSet;
use fhc::threshold::{apply_threshold, UNKNOWN_LABEL};
use mlcore::dataset::Dataset;
use mlcore::forest::RandomForest;

/// Build an executable that imitates an unauthorized workload: none of its
/// symbols, strings, or code come from the known application corpus.
fn rogue_miner() -> Vec<u8> {
    let mut b = ElfBuilder::new();
    let code: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(0x9E3779B9) >> 21) as u8).collect();
    b.add_text_section(code);
    b.add_rodata_section(
        b"stratum+tcp://pool.example.org:3333\0submitting share\0hashrate %f MH/s\0".to_vec(),
    );
    for name in ["scanhash_loop", "stratum_connect", "submit_share", "difficulty_adjust"] {
        b.add_global_function(name, 0x100, 0x400);
    }
    b.build()
}

fn main() {
    // Train on a small synthetic corpus of known HPC applications.
    let corpus = CorpusBuilder::new(7).build(&Catalog::paper().scaled(0.04));
    let config = PipelineConfig { seed: 7, ..Default::default() };
    let classifier = FuzzyHashClassifier::new(config.clone());
    let features = classifier.extract_features(&corpus);
    let outcome = classifier
        .run_with_features(&corpus, &features)
        .expect("pipeline should run");
    println!(
        "trained on {} samples of {} known classes (threshold {:.2})",
        outcome.n_train,
        outcome.known_class_names.len(),
        outcome.confidence_threshold
    );

    // Rebuild the reference set and forest exactly as the pipeline did, so we
    // can score new, out-of-corpus binaries.
    let mut known_id = vec![usize::MAX; corpus.n_classes()];
    for (id, &class) in outcome.split.known_classes.iter().enumerate() {
        known_id[class] = id;
    }
    let train_features: Vec<SampleFeatures> =
        outcome.split.train.iter().map(|&i| features[i].clone()).collect();
    let train_labels: Vec<usize> = outcome
        .split
        .train
        .iter()
        .map(|&i| known_id[corpus.samples()[i].class_index])
        .collect();
    let reference = ReferenceSet::new(
        outcome.known_class_names.clone(),
        &train_features,
        &train_labels,
        &config.feature_kinds,
    );
    let train_ds = Dataset::from_rows(
        reference.feature_matrix(&train_features),
        train_labels,
        reference.column_names(),
        outcome.known_class_names.clone(),
    )
    .unwrap();
    let forest = RandomForest::fit(&train_ds, &outcome.forest_params, 7).unwrap();

    let classify = |bytes: &[u8]| -> String {
        let sample = SampleFeatures::extract(bytes);
        let row = reference.feature_vector(&sample);
        let proba = forest.predict_proba(&row);
        let label = apply_threshold(&proba, outcome.confidence_threshold);
        if label == UNKNOWN_LABEL {
            "-1 (unknown)".to_string()
        } else {
            outcome.known_class_names[label - 1].clone()
        }
    };

    // 1. A brand-new version of a known application is still recognized.
    let known_class = outcome.split.known_classes[0];
    let known_sample = corpus
        .samples()
        .iter()
        .find(|s| s.class_index == known_class)
        .unwrap();
    println!(
        "\nnew execution of {:<20} -> classified as {}",
        known_sample.class_name,
        classify(&corpus.generate_bytes(known_sample))
    );

    // 2. A rogue workload that matches no known application is flagged.
    println!("rogue mining executable       -> classified as {}", classify(&rogue_miner()));

    // 3. A plain script (not even an ELF) is also flagged as unknown.
    println!(
        "shell wrapper script          -> classified as {}",
        classify(b"#!/bin/bash\nexec ./payload --pool pool.example.org\n")
    );
}
