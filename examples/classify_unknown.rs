//! Detecting software that deviates from allocation purpose.
//!
//! The paper's motivating scenario: a user's project allocation normally runs
//! a known set of scientific applications; one day executables appear that do
//! not belong to any known class (e.g. a cryptocurrency miner). This example
//! trains the classifier once with `fit`, then uses the resulting
//! `TrainedClassifier` to show how previously unseen binaries are flagged as
//! `"-1"` (unknown), while new *versions* of known applications are still
//! recognized — no retraining per query, which is the point of the
//! fit/predict serving API.
//!
//! ```text
//! cargo run --release --example classify_unknown
//! ```

use binary::elf::ElfBuilder;
use corpus::{Catalog, CorpusBuilder};
use fhc::backend::BackendConfig;
use fhc::config::FhcConfig;
use fhc::pipeline::FuzzyHashClassifier;

/// Build an executable that imitates an unauthorized workload: none of its
/// symbols, strings, or code come from the known application corpus.
fn rogue_miner() -> Vec<u8> {
    let mut b = ElfBuilder::new();
    let code: Vec<u8> = (0..60_000u32)
        .map(|i| (i.wrapping_mul(0x9E3779B9) >> 21) as u8)
        .collect();
    b.add_text_section(code);
    b.add_rodata_section(
        b"stratum+tcp://pool.example.org:3333\0submitting share\0hashrate %f MH/s\0".to_vec(),
    );
    for name in [
        "scanhash_loop",
        "stratum_connect",
        "submit_share",
        "difficulty_adjust",
    ] {
        b.add_global_function(name, 0x100, 0x400);
    }
    b.build()
}

fn main() {
    // Train once on a small synthetic corpus of known HPC applications.
    let corpus = CorpusBuilder::new(7).build(&Catalog::paper().scaled(0.04));
    // Serve through the class-sharded backend: each query fans out across
    // shard threads (score-identical to the default indexed backend).
    let config = FhcConfig::new()
        .seed(7)
        .backend(BackendConfig::Sharded { shards: 0 });
    let trained = FuzzyHashClassifier::with_config(config)
        .fit(&corpus)
        .expect("training should succeed");
    println!(
        "trained on {} known classes (threshold {:.2}, backend {})",
        trained.n_known_classes(),
        trained.confidence_threshold(),
        trained.backend_config()
    );

    // A brand-new execution of a known application, a rogue workload, and a
    // plain script — classified in one parallel batch, without retraining.
    // The two-phase split holds ~20% of classes out as unknown, so pick a
    // sample whose class actually survived into the known set (and skip the
    // duplicate-install alias classes the paper discusses, whose siblings
    // legitimately win the similarity vote).
    let normalize = |name: &str| -> String {
        name.chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_ascii_lowercase()
    };
    let known_sample = corpus
        .samples()
        .iter()
        .find(|s| {
            trained.known_class_names().contains(&s.class_name)
                && !trained.known_class_names().iter().any(|other| {
                    *other != s.class_name && normalize(other) == normalize(&s.class_name)
                })
        })
        .expect("some known-class sample exists");
    let batch: Vec<(String, Vec<u8>)> = vec![
        (
            format!("new execution of {}", known_sample.class_name),
            corpus.generate_bytes(known_sample),
        ),
        ("rogue mining executable".to_string(), rogue_miner()),
        (
            "shell wrapper script".to_string(),
            b"#!/bin/bash\nexec ./payload --pool pool.example.org\n".to_vec(),
        ),
    ];
    println!();
    for (name, prediction) in trained.classify_batch(&batch) {
        let verdict = if prediction.is_unknown() {
            "-1 (unknown)".to_string()
        } else {
            prediction.label.clone()
        };
        println!(
            "{name:<42} -> classified as {verdict} (confidence {:.2})",
            prediction.confidence
        );
    }
}
