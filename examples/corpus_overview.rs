//! Inspect the synthetic application corpus: class catalog, per-class sample
//! counts (the paper's Figure 2), the Velvet version table (the paper's
//! Table 1), and a manifest excerpt.
//!
//! ```text
//! cargo run --release --example corpus_overview
//! ```

use corpus::manifest::Manifest;
use corpus::stats::{class_stats, sample_distribution_table, summarize, version_table};
use corpus::{Catalog, CorpusBuilder};

fn main() {
    let catalog = Catalog::paper();
    println!(
        "paper catalog: {} classes, {} samples at full scale",
        catalog.classes().len(),
        catalog.total_samples()
    );

    // Work with a scaled-down corpus so the example runs in seconds.
    let corpus = CorpusBuilder::new(42).build(&catalog.scaled(0.05));
    let summary = summarize(&corpus);
    println!(
        "scaled corpus: {} classes, {} samples, class sizes {}..{} (imbalance ratio {:.1})",
        summary.n_classes,
        summary.n_samples,
        summary.min_class_size,
        summary.max_class_size,
        summary.imbalance_ratio
    );

    println!("\n--- Table 1: Versions and executables of the Velvet class ---");
    println!("{}", version_table(&corpus, "Velvet").unwrap());

    println!("--- Figure 2: top 15 classes by sample count ---");
    let table = sample_distribution_table(&corpus);
    for line in table.lines().take(17) {
        println!("{line}");
    }

    println!("\n--- the 5 smallest classes ---");
    let stats = class_stats(&corpus);
    for s in stats.iter().rev().take(5) {
        println!(
            "{:<20} {} samples ({} versions x {} executables)",
            s.name, s.n_samples, s.n_versions, s.n_executables
        );
    }

    println!(
        "\n--- manifest excerpt (first 5 of {} entries) ---",
        corpus.n_samples()
    );
    let manifest = Manifest::from_corpus(&corpus);
    for entry in manifest.entries.iter().take(5) {
        println!("{:<55} {:>8} bytes", entry.install_path, entry.file_size);
    }
}
