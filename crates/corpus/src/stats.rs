//! Corpus summary statistics behind the paper's Table 1 and Figure 2.

use crate::builder::Corpus;
use hpcutil::table::{Align, TextTable};
use std::collections::BTreeMap;

/// Per-class statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStat {
    /// Class name.
    pub name: String,
    /// Number of samples.
    pub n_samples: usize,
    /// Number of versions.
    pub n_versions: usize,
    /// Number of executables per version.
    pub n_executables: usize,
}

/// Compute per-class statistics, sorted by descending sample count (the
/// order Figure 2 of the paper plots them in).
pub fn class_stats(corpus: &Corpus) -> Vec<ClassStat> {
    let mut versions: BTreeMap<usize, std::collections::BTreeSet<usize>> = BTreeMap::new();
    let mut executables: BTreeMap<usize, std::collections::BTreeSet<String>> = BTreeMap::new();
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for s in corpus.samples() {
        *counts.entry(s.class_index).or_default() += 1;
        versions
            .entry(s.class_index)
            .or_default()
            .insert(s.version_index);
        executables
            .entry(s.class_index)
            .or_default()
            .insert(s.executable_name.clone());
    }
    let mut stats: Vec<ClassStat> = counts
        .iter()
        .map(|(&class_index, &n_samples)| ClassStat {
            name: corpus.class_names()[class_index].clone(),
            n_samples,
            n_versions: versions[&class_index].len(),
            n_executables: executables[&class_index].len(),
        })
        .collect();
    stats.sort_by(|a, b| b.n_samples.cmp(&a.n_samples).then(a.name.cmp(&b.name)));
    stats
}

/// Render the Table-1-style "versions and executables" breakdown for one
/// class: one row per version listing the executables it ships.
pub fn version_table(corpus: &Corpus, class_name: &str) -> Option<String> {
    let class_index = corpus.class_names().iter().position(|n| n == class_name)?;
    let mut by_version: BTreeMap<usize, (String, Vec<String>)> = BTreeMap::new();
    for s in corpus
        .samples()
        .iter()
        .filter(|s| s.class_index == class_index)
    {
        by_version
            .entry(s.version_index)
            .or_insert_with(|| (s.version_name.clone(), Vec::new()))
            .1
            .push(s.executable_name.clone());
    }
    let mut table = TextTable::new(vec!["Class", "Application Version", "Samples"]);
    for (_, (version_name, mut exes)) in by_version {
        exes.sort();
        table.add_row(vec![class_name.to_string(), version_name, exes.join(", ")]);
    }
    Some(table.render())
}

/// Render the Figure-2 data series: classes ordered by descending sample
/// count with their counts (the paper plots this on a log scale).
pub fn sample_distribution_table(corpus: &Corpus) -> String {
    let stats = class_stats(corpus);
    let mut table = TextTable::new(vec![
        "Rank",
        "Application Class",
        "Samples",
        "Versions",
        "Executables",
    ])
    .with_alignment(vec![
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (rank, s) in stats.iter().enumerate() {
        table.add_row(vec![
            (rank + 1).to_string(),
            s.name.clone(),
            s.n_samples.to_string(),
            s.n_versions.to_string(),
            s.n_executables.to_string(),
        ]);
    }
    table.render()
}

/// Summary numbers for the corpus (classes, samples, largest/smallest class,
/// imbalance ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSummary {
    /// Number of classes.
    pub n_classes: usize,
    /// Number of samples.
    pub n_samples: usize,
    /// Largest class size.
    pub max_class_size: usize,
    /// Smallest class size.
    pub min_class_size: usize,
    /// Ratio of largest to smallest class size.
    pub imbalance_ratio: f64,
}

/// Compute the [`CorpusSummary`].
pub fn summarize(corpus: &Corpus) -> CorpusSummary {
    let counts = corpus.class_counts();
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    CorpusSummary {
        n_classes: corpus.n_classes(),
        n_samples: corpus.n_samples(),
        max_class_size: max,
        min_class_size: min,
        imbalance_ratio: if min == 0 {
            0.0
        } else {
            max as f64 / min as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CorpusBuilder;
    use crate::catalog::Catalog;

    fn corpus() -> Corpus {
        CorpusBuilder::new(3).build(&Catalog::paper().scaled(0.02))
    }

    #[test]
    fn stats_cover_all_classes_sorted_descending() {
        let c = corpus();
        let stats = class_stats(&c);
        assert_eq!(stats.len(), 92);
        for w in stats.windows(2) {
            assert!(w[0].n_samples >= w[1].n_samples);
        }
        let total: usize = stats.iter().map(|s| s.n_samples).sum();
        assert_eq!(total, c.n_samples());
    }

    #[test]
    fn velvet_version_table_matches_structure() {
        let c = corpus();
        let table = version_table(&c, "Velvet").unwrap();
        assert!(table.contains("Velvet"));
        assert!(table.contains("velveth"));
        assert!(table.contains("velvetg"));
        // 3 versions -> header + separator + 3 rows
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn unknown_class_version_table_is_none() {
        assert!(version_table(&corpus(), "DoesNotExist").is_none());
    }

    #[test]
    fn distribution_table_renders_all_rows() {
        let c = corpus();
        let table = sample_distribution_table(&c);
        assert_eq!(table.lines().count(), 92 + 2);
        assert!(table.contains("Application Class"));
    }

    #[test]
    fn summary_is_consistent() {
        let c = corpus();
        let s = summarize(&c);
        assert_eq!(s.n_classes, 92);
        assert_eq!(s.n_samples, c.n_samples());
        assert!(s.max_class_size >= s.min_class_size);
        assert!(s.min_class_size >= 3);
        assert!(s.imbalance_ratio >= 1.0);
    }
}
