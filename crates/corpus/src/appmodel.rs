//! Synthetic application code-base model and version-drift mutation.
//!
//! Every application class gets a deterministic "code base": a pool of
//! function names, a pool of embedded strings, and a set of per-function
//! machine-code blocks. A *version* of the class is a mutation of that base:
//! a small, localized fraction of functions change their code, a few symbols
//! are renamed or added, a few strings change (version banners always do),
//! and the "compiler" tag differs. An *executable* (sample) within a version
//! combines the class's shared core with a small executable-specific part —
//! the way `velveth` and `velvetg` share most of Velvet's object code.
//!
//! The shape of this drift is what makes the dataset behave like the paper's
//! real one: samples of the same class remain highly similar under CTPH
//! (changes are localized), samples of different classes share essentially
//! nothing, and the *symbols* view is the most stable across versions
//! (function names rarely change), which is exactly the feature-importance
//! ordering the paper reports.

use hpcutil::SeedSequence;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fraction of shared-core functions whose code changes between versions.
const CODE_CHANGE_FRACTION: f64 = 0.06;
/// Fraction of function symbols renamed between versions.
const SYMBOL_RENAME_FRACTION: f64 = 0.03;
/// Fraction of new function symbols added per version.
const SYMBOL_ADD_FRACTION: f64 = 0.02;
/// Fraction of strings replaced between versions (on top of banner changes).
const STRING_CHANGE_FRACTION: f64 = 0.25;

/// Word pools used to compose plausible identifiers and message strings.
const VERBS: &[&str] = &[
    "compute",
    "solve",
    "init",
    "update",
    "assemble",
    "reduce",
    "exchange",
    "partition",
    "integrate",
    "parse",
    "write",
    "read",
    "validate",
    "balance",
    "scatter",
    "gather",
    "transform",
    "project",
    "filter",
    "normalize",
    "decompose",
    "refine",
    "sample",
    "estimate",
];
const NOUNS: &[&str] = &[
    "matrix",
    "mesh",
    "particle",
    "sequence",
    "kmer",
    "graph",
    "field",
    "domain",
    "boundary",
    "tensor",
    "buffer",
    "index",
    "alignment",
    "contig",
    "genome",
    "residue",
    "cluster",
    "grid",
    "solver",
    "state",
    "config",
    "potential",
    "trajectory",
    "histogram",
    "kernel",
    "queue",
];
const QUALIFIERS: &[&str] = &[
    "local",
    "global",
    "sparse",
    "dense",
    "parallel",
    "fast",
    "adaptive",
    "hybrid",
    "implicit",
    "explicit",
    "blocked",
    "packed",
    "cached",
    "distributed",
];
const MESSAGE_TEMPLATES: &[&str] = &[
    "Usage: %s [options] <input>",
    "error: failed to open file %s",
    "warning: %s exceeded tolerance %g",
    "reading configuration from %s",
    "writing checkpoint to %s",
    "iteration %d: residual %e",
    "allocated %zu bytes for %s",
    "MPI rank %d of %d starting",
    "OpenMP threads: %d",
    "loaded module %s version %s",
    "elapsed time: %.3f seconds",
    "convergence reached after %d iterations",
];

/// The immutable per-class code base.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Class name this model belongs to.
    pub class_name: String,
    /// Shared-core function names (present in every executable of the class).
    pub core_functions: Vec<String>,
    /// Shared-core strings.
    pub core_strings: Vec<String>,
    /// Seed namespace for deterministic code-block generation.
    seeds: SeedSequence,
    /// Bytes of machine code per core function.
    pub code_block_len: usize,
}

/// One concrete version of a class: the mutated view of the code base.
#[derive(Debug, Clone)]
pub struct VersionModel {
    /// Version folder name (e.g. `2.3-GCC-10.3.0`).
    pub version_name: String,
    /// Function names after version mutation (shared core).
    pub functions: Vec<String>,
    /// Indices of functions whose code changed in this version.
    pub changed_code: Vec<usize>,
    /// Strings after version mutation (shared core).
    pub strings: Vec<String>,
    /// Toolchain / compiler tag recorded in `.comment`.
    pub compiler_tag: String,
}

impl AppModel {
    /// Build the code base for a class.
    ///
    /// `size_hint` controls how large the shared core is (number of core
    /// functions); larger classes get more functions and therefore larger
    /// executables.
    pub fn new(class_name: &str, root_seed: u64, size_hint: usize) -> Self {
        let seeds = SeedSequence::new(root_seed ^ fxhash(class_name.as_bytes()));
        let mut rng = ChaCha8Rng::seed_from_u64(seeds.derive("appmodel"));
        let n_functions = size_hint.clamp(40, 400);
        let n_strings = (n_functions / 2).clamp(20, 150);

        let mut core_functions = Vec::with_capacity(n_functions);
        let prefix = identifier_prefix(class_name);
        let mut used = std::collections::HashSet::new();
        while core_functions.len() < n_functions {
            let name = format!(
                "{}_{}_{}_{}",
                prefix,
                QUALIFIERS[rng.gen_range(0..QUALIFIERS.len())],
                VERBS[rng.gen_range(0..VERBS.len())],
                NOUNS[rng.gen_range(0..NOUNS.len())],
            );
            let name = if used.contains(&name) {
                format!("{name}{}", rng.gen_range(2..99))
            } else {
                name
            };
            if used.insert(name.clone()) {
                core_functions.push(name);
            }
        }

        let mut core_strings = Vec::with_capacity(n_strings);
        for i in 0..n_strings {
            let template = MESSAGE_TEMPLATES[rng.gen_range(0..MESSAGE_TEMPLATES.len())];
            let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
            // Roughly 60% of embedded strings are generic diagnostics that
            // recur verbatim across unrelated applications ("error: failed to
            // open file %s"), which is what keeps the strings feature noisier
            // than the symbols feature on real executables.
            if i % 5 < 3 {
                core_strings.push(format!("{template} {noun}"));
            } else {
                core_strings.push(format!("{class_name}: {template} {noun} {i}"));
            }
        }

        Self {
            class_name: class_name.to_string(),
            core_functions,
            core_strings,
            seeds,
            code_block_len: 384,
        }
    }

    /// Deterministic machine-code block for a function.
    ///
    /// `revision` selects among alternative implementations of the same
    /// function (bumped when a version changes that function's code).
    /// `toolchain` identifies the compiler that "produced" the block: a
    /// different compiler or compiler version re-generates essentially every
    /// byte of machine code even when the source is unchanged, which is why
    /// the paper finds the raw-content hash to be the least stable feature
    /// across versions.
    pub fn code_block_for(&self, function_name: &str, revision: u64, toolchain: &str) -> Vec<u8> {
        let seed = self.seeds.derive_indexed(
            "code",
            fxhash(function_name.as_bytes())
                ^ revision.wrapping_mul(0x9E37)
                ^ fxhash(toolchain.as_bytes()).rotate_left(17),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut block = Vec::with_capacity(self.code_block_len);
        // Function prologue (realistic x86-64 bytes), body, epilogue.
        block.extend_from_slice(&[0x55, 0x48, 0x89, 0xE5]);
        while block.len() < self.code_block_len - 2 {
            // Emit short "instruction-like" byte groups rather than raw noise
            // so the content has local structure like real code.
            let op: u8 = rng.gen();
            match op % 5 {
                0 => block.extend_from_slice(&[0x48, 0x8B, rng.gen::<u8>() & 0x3F]),
                1 => block.extend_from_slice(&[0x89, rng.gen::<u8>()]),
                2 => block.extend_from_slice(&[0xE8, rng.gen(), rng.gen(), 0x00, 0x00]),
                3 => block.extend_from_slice(&[0x0F, 0x1F, 0x40, 0x00]),
                _ => block.push(0x90),
            }
        }
        block.truncate(self.code_block_len - 2);
        block.extend_from_slice(&[0x5D, 0xC3]);
        block
    }

    /// [`Self::code_block_for`] with a fixed neutral toolchain — used for
    /// prebuilt content (static library archives) whose bytes do not change
    /// when the application is rebuilt.
    pub fn code_block(&self, function_name: &str, revision: u64) -> Vec<u8> {
        self.code_block_for(function_name, revision, "prebuilt")
    }

    /// Derive the mutated view of this code base for version `version_index`
    /// named `version_name`.
    ///
    /// `drift` scales how aggressively this class changes between versions
    /// (1.0 = the base fractions). The paper observes that "certain
    /// applications change more drastically across versions than others"
    /// (e.g. BigDFT, MUMmer show precision/recall gaps); per-class drift is
    /// how the synthetic corpus reproduces that heterogeneity.
    pub fn version(
        &self,
        version_index: usize,
        version_name: &str,
        compiler_tag: &str,
        drift: f64,
    ) -> VersionModel {
        let drift = drift.clamp(0.1, 8.0);
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seeds.derive_indexed("version", version_index as u64));
        let n = self.core_functions.len();

        // Which functions change code in this version (cumulative revisions
        // are modelled by treating the version index as part of the seed).
        let n_changed = (((n as f64) * CODE_CHANGE_FRACTION * drift).ceil() as usize).min(n);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let mut changed_code: Vec<usize> = indices.iter().copied().take(n_changed).collect();
        changed_code.sort_unstable();

        // Symbol renames and additions.
        let mut functions = self.core_functions.clone();
        let n_renamed = (((n as f64) * SYMBOL_RENAME_FRACTION * drift).ceil() as usize)
            .min(n.saturating_sub(n_changed));
        for &idx in indices.iter().skip(n_changed).take(n_renamed) {
            functions[idx] = format!("{}_v{}", self.core_functions[idx], version_index + 2);
        }
        let n_added = (((n as f64) * SYMBOL_ADD_FRACTION * drift).ceil() as usize).min(n);
        for i in 0..n_added {
            functions.push(format!(
                "{}_{}_{}_new{}",
                identifier_prefix(&self.class_name),
                VERBS[rng.gen_range(0..VERBS.len())],
                NOUNS[rng.gen_range(0..NOUNS.len())],
                version_index * 10 + i
            ));
        }

        // String drift: the version banner always changes; a fraction of the
        // other strings are rewritten.
        let mut strings = self.core_strings.clone();
        let n_str_changed = (((strings.len() as f64) * STRING_CHANGE_FRACTION * drift).ceil()
            as usize)
            .min(strings.len());
        for _ in 0..n_str_changed {
            let idx = rng.gen_range(0..strings.len());
            strings[idx] = format!(
                "{}: {} {}",
                self.class_name,
                MESSAGE_TEMPLATES[rng.gen_range(0..MESSAGE_TEMPLATES.len())],
                version_index
            );
        }
        strings.push(format!("{} version {}", self.class_name, version_name));
        strings.push(format!("built with {compiler_tag}"));

        VersionModel {
            version_name: version_name.to_string(),
            functions,
            changed_code,
            strings,
            compiler_tag: compiler_tag.to_string(),
        }
    }
}

/// Short identifier prefix derived from a class name (`OpenMalaria` → `om`,
/// `CD-HIT` → `cdhit`...).
pub fn identifier_prefix(class_name: &str) -> String {
    let alnum: String = class_name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let upper: String = class_name
        .chars()
        .filter(|c| c.is_ascii_uppercase())
        .collect();
    let base = if upper.len() >= 2 { upper } else { alnum };
    base.to_ascii_lowercase().chars().take(6).collect()
}

/// Tiny FNV-style hash used to derive per-name seeds.
fn fxhash(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic() {
        let a = AppModel::new("OpenMalaria", 42, 80);
        let b = AppModel::new("OpenMalaria", 42, 80);
        assert_eq!(a.core_functions, b.core_functions);
        assert_eq!(a.core_strings, b.core_strings);
        assert_eq!(a.code_block("x", 0), b.code_block("x", 0));
    }

    #[test]
    fn different_classes_have_disjoint_pools() {
        let a = AppModel::new("OpenMalaria", 42, 80);
        let b = AppModel::new("GROMACS", 42, 80);
        let shared = a
            .core_functions
            .iter()
            .filter(|f| b.core_functions.contains(f))
            .count();
        assert_eq!(shared, 0, "function pools should not overlap");
    }

    #[test]
    fn size_hint_is_clamped() {
        assert_eq!(AppModel::new("Tiny", 1, 1).core_functions.len(), 40);
        assert_eq!(AppModel::new("Huge", 1, 100_000).core_functions.len(), 400);
    }

    #[test]
    fn function_names_unique() {
        let m = AppModel::new("Velvet", 7, 200);
        let mut names = m.core_functions.clone();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), m.core_functions.len());
    }

    #[test]
    fn code_blocks_differ_between_functions_and_revisions() {
        let m = AppModel::new("Velvet", 7, 80);
        let a = m.code_block("velvet_hash_kmer", 0);
        let b = m.code_block("velvet_assemble_graph", 0);
        let a2 = m.code_block("velvet_hash_kmer", 1);
        assert_ne!(a, b);
        assert_ne!(a, a2);
        assert_eq!(a.len(), m.code_block_len);
        // Prologue and epilogue are stable.
        assert_eq!(&a[..4], &[0x55, 0x48, 0x89, 0xE5]);
        assert_eq!(&a[a.len() - 2..], &[0x5D, 0xC3]);
    }

    #[test]
    fn versions_mutate_a_small_fraction() {
        let m = AppModel::new("Rosetta", 3, 200);
        let v0 = m.version(0, "1.0-GCC-10.3.0", "GCC: (GNU) 10.3.0", 1.0);
        let v1 = m.version(1, "2.0-foss-2021a", "GCC: (GNU) 11.2.0", 1.0);

        // Most function names are shared between consecutive versions.
        let shared = v0
            .functions
            .iter()
            .filter(|f| v1.functions.contains(f))
            .count();
        let ratio = shared as f64 / v0.functions.len() as f64;
        assert!(
            ratio > 0.85,
            "versions should share most symbols, got {ratio}"
        );

        // Some code changed, but only a small fraction.
        assert!(!v1.changed_code.is_empty());
        assert!(v1.changed_code.len() < m.core_functions.len() / 5);

        // Version banner differs.
        assert!(v0.strings.iter().any(|s| s.contains("1.0-GCC-10.3.0")));
        assert!(v1.strings.iter().any(|s| s.contains("2.0-foss-2021a")));
        assert_eq!(v1.compiler_tag, "GCC: (GNU) 11.2.0");
    }

    #[test]
    fn version_is_deterministic() {
        let m = AppModel::new("Rosetta", 3, 100);
        let a = m.version(2, "3.1-intel-2020a", "ICC 2020", 1.0);
        let b = m.version(2, "3.1-intel-2020a", "ICC 2020", 1.0);
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.changed_code, b.changed_code);
        assert_eq!(a.strings, b.strings);
    }

    #[test]
    fn identifier_prefix_examples() {
        assert_eq!(identifier_prefix("OpenMalaria"), "om");
        assert_eq!(identifier_prefix("FSL"), "fsl");
        assert_eq!(identifier_prefix("Velvet"), "velvet");
        assert_eq!(identifier_prefix("kentUtils"), "kentut");
    }
}
