//! The application-class catalog: 92 classes with per-class sample counts
//! derived from the paper.
//!
//! Table 4 of the paper reports per-class *test* support after a stratified
//! 60/40 sample split of the known classes, and Table 3 reports the full
//! sample count of the classes that landed in the unknown split. Scaling the
//! Table 4 supports by 1/0.4 and taking the Table 3 counts directly recovers
//! per-class totals that sum to ≈5333, the paper's corpus size. The catalog
//! stores those totals and decomposes each into a realistic
//! `versions x executables` grid (at least 3 versions per class, as required
//! by the paper's collection rule).

/// Specification of one application class before any binaries are built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// Class name (the root folder name in the paper's directory layout).
    pub name: String,
    /// Number of versions (sub-folders).
    pub n_versions: usize,
    /// Executable names present in every version.
    pub executables: Vec<String>,
}

impl ClassSpec {
    /// Total number of samples this class contributes
    /// (`n_versions * executables.len()`).
    pub fn sample_count(&self) -> usize {
        self.n_versions * self.executables.len()
    }
}

/// The full catalog of application classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    classes: Vec<ClassSpec>,
}

/// Per-class totals derived from the paper (name, approximate total sample
/// count). Known classes use `round(2.5 * Table-4 support)`; unknown classes
/// use the Table 3 counts verbatim.
const PAPER_CLASS_TOTALS: &[(&str, usize)] = &[
    // --- classes that appear in Table 4 (known split) -----------------
    ("Augustus", 25),
    ("BCFtools", 10),
    ("BEDTools", 8),
    ("BLAT", 13),
    ("BWA", 13),
    ("BamTools", 5),
    ("BigDFT", 70),
    ("CAD-score", 8),
    ("CD-HIT", 30),
    ("CapnProto", 3),
    ("Cas-OFFinder", 3),
    ("Celera Assembler", 253),
    ("Cell-Ranger", 70),
    ("CellRanger", 50),
    ("Cufflinks", 15),
    ("DIAMOND", 5),
    ("Exonerate", 108),
    ("FSL", 878),
    ("FastTree", 5),
    ("GMAP-GSNAP", 95),
    ("HH-suite", 65),
    ("HMMER", 85),
    ("HTSlib", 15),
    ("Infernal", 18),
    ("InterProScan", 255),
    ("JAGS", 3),
    ("Jellyfish", 5),
    ("Kraken2", 15),
    ("MAGMA", 3),
    ("MATLAB", 35),
    ("MMseqs2", 3),
    ("MUMmer", 65),
    ("Mash", 3),
    ("MolScript", 8),
    ("MrBayes", 3),
    ("OpenBabel", 20),
    ("OpenMM", 5),
    ("OpenStructure", 140),
    ("PLUMED", 8),
    ("PRANK", 5),
    ("PSIPRED", 18),
    ("PhyML", 5),
    ("RECON", 15),
    ("RSEM", 53),
    ("Racon", 5),
    ("Raster3D", 33),
    ("RepeatScout", 5),
    ("Rosetta", 285),
    ("SMRT-Link", 8),
    ("SOAPdenovo2", 5),
    ("STAR", 25),
    ("Salmon", 8),
    ("SeqPrep", 8),
    ("Stacks", 173),
    ("StringTie", 5),
    ("Subread", 53),
    ("TopHat", 48),
    ("Trinity", 103),
    ("VCFtools", 5),
    ("VSEARCH", 3),
    ("Velvet", 6),
    ("ViennaRNA", 73),
    ("XDS", 85),
    ("breseq", 10),
    ("canu", 128),
    ("cdbfasta", 5),
    ("fastQValidator", 5),
    ("fastp", 3),
    ("fineRADstructure", 5),
    ("kallisto", 5),
    ("kentUtils", 880),
    ("prodigal", 3),
    ("segemehl", 3),
    // --- classes that appear in Table 3 (unknown split) ---------------
    ("Schrodinger", 195),
    ("QuantumESPRESSO", 178),
    ("SAMtools", 108),
    ("MCL", 52),
    ("BLAST", 52),
    ("FASTA", 48),
    ("MolProbity", 39),
    ("AUGUSTUS", 36),
    ("HISAT2", 30),
    ("OpenMalaria", 25),
    ("Gurobi", 20),
    ("Kraken", 18),
    ("METIS", 18),
    ("CCP4", 9),
    ("TM-align", 9),
    ("ClustalW2", 4),
    ("dssp", 4),
    ("libxc", 4),
    ("CHARMM", 3),
];

/// Toolchain suffixes used for synthetic version folder names, mirroring the
/// EasyBuild-style names in the paper (e.g. `46.0-iomkl-2019.01`,
/// `1.2.10-GCC-10.3.0`).
pub const TOOLCHAINS: &[&str] = &[
    "GCC-10.3.0",
    "GCC-12.2.0",
    "foss-2021a",
    "foss-2022b",
    "iomkl-2019.01",
    "intel-2020a",
    "goolf-1.7.20",
    "gompi-2021b",
];

/// Generic per-executable tool suffixes used when a class has multiple
/// executables per version (e.g. an assembler's `index` / `align` / `stats`
/// steps).
const TOOL_SUFFIXES: &[&str] = &[
    "index", "align", "assemble", "stats", "merge", "sort", "view", "call", "filter", "convert",
    "plot", "sim", "train", "eval", "pack", "split", "scan", "map", "count", "report",
];

/// Decompose a total sample count into (n_versions, executables) with at
/// least 3 versions per class.
fn decompose(name: &str, total: usize) -> (usize, Vec<String>) {
    let base = executable_base_name(name);
    // Special case from Table 1 of the paper: Velvet ships velveth+velvetg.
    if name == "Velvet" {
        return (3, vec!["velveth".to_string(), "velvetg".to_string()]);
    }
    let total = total.max(3);
    // Cap at 8 versions; grow the per-version executable count instead.
    let n_exes = total.div_ceil(8).max(1);
    let n_versions = total.div_ceil(n_exes).max(3);
    let executables = if n_exes == 1 {
        vec![base]
    } else {
        (0..n_exes)
            .map(|i| {
                let suffix = TOOL_SUFFIXES[i % TOOL_SUFFIXES.len()];
                if i < TOOL_SUFFIXES.len() {
                    format!("{base}_{suffix}")
                } else {
                    format!("{base}_{suffix}{}", i / TOOL_SUFFIXES.len())
                }
            })
            .collect()
    };
    (n_versions, executables)
}

/// Lowercase, filesystem-friendly executable base name for a class.
pub fn executable_base_name(class_name: &str) -> String {
    class_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

impl Catalog {
    /// The paper's 92-class catalog at full scale (≈5333 samples).
    pub fn paper() -> Self {
        let classes = PAPER_CLASS_TOTALS
            .iter()
            .map(|&(name, total)| {
                let (n_versions, executables) = decompose(name, total);
                ClassSpec {
                    name: name.to_string(),
                    n_versions,
                    executables,
                }
            })
            .collect();
        Self { classes }
    }

    /// A catalog built from explicit class specifications (used in tests and
    /// custom experiments).
    pub fn from_classes(classes: Vec<ClassSpec>) -> Self {
        Self { classes }
    }

    /// Scale every class's sample count by `factor` (keeping all 92 classes
    /// and at least 3 versions × 1 executable each). Useful on small
    /// machines: the similarity feature matrix is quadratic in corpus size.
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.clamp(0.0, 1.0);
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let target = ((c.sample_count() as f64) * factor).round().max(3.0) as usize;
                let (n_versions, executables) = decompose(&c.name, target);
                ClassSpec {
                    name: c.name.clone(),
                    n_versions,
                    executables,
                }
            })
            .collect();
        Self { classes }
    }

    /// The class specifications.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Total number of samples across all classes.
    pub fn total_samples(&self) -> usize {
        self.classes.iter().map(|c| c.sample_count()).sum()
    }

    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Synthetic version-folder name for version `index` of a class
    /// (e.g. `2.3-GCC-10.3.0`).
    pub fn version_name(class_index: usize, version_index: usize) -> String {
        let major = 1 + (class_index * 7 + version_index) % 46;
        let minor = (class_index + version_index * 3) % 12;
        let toolchain = TOOLCHAINS[(class_index + version_index) % TOOLCHAINS.len()];
        format!("{major}.{minor}-{toolchain}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_has_92_classes() {
        let cat = Catalog::paper();
        assert_eq!(cat.classes().len(), 92);
    }

    #[test]
    fn paper_catalog_total_close_to_5333() {
        let total = Catalog::paper().total_samples();
        assert!(
            (5000..=5700).contains(&total),
            "total {total} should be close to the paper's 5333"
        );
    }

    #[test]
    fn every_class_has_at_least_3_samples_and_versions() {
        for class in Catalog::paper().classes() {
            assert!(
                class.n_versions >= 3,
                "{} has {} versions",
                class.name,
                class.n_versions
            );
            assert!(class.sample_count() >= 3);
            assert!(!class.executables.is_empty());
        }
    }

    #[test]
    fn velvet_matches_table_1() {
        let cat = Catalog::paper();
        let velvet = cat.class_by_name("Velvet").unwrap();
        assert_eq!(velvet.n_versions, 3);
        assert_eq!(velvet.executables, vec!["velveth", "velvetg"]);
        assert_eq!(velvet.sample_count(), 6);
    }

    #[test]
    fn both_augustus_spellings_present() {
        // The paper discusses Augustus vs AUGUSTUS as distinct labels caused
        // by duplicate installs; the catalog keeps both.
        let cat = Catalog::paper();
        assert!(cat.class_by_name("Augustus").is_some());
        assert!(cat.class_by_name("AUGUSTUS").is_some());
        assert!(cat.class_by_name("CellRanger").is_some());
        assert!(cat.class_by_name("Cell-Ranger").is_some());
    }

    #[test]
    fn large_classes_expand_executables_not_versions() {
        let cat = Catalog::paper();
        let fsl = cat.class_by_name("FSL").unwrap();
        assert!(fsl.n_versions <= 8);
        assert!(fsl.executables.len() > 50);
        assert!(fsl.sample_count() >= 870);
    }

    #[test]
    fn executable_names_are_unique_within_class() {
        for class in Catalog::paper().classes() {
            let mut names = class.executables.clone();
            names.sort();
            names.dedup();
            assert_eq!(
                names.len(),
                class.executables.len(),
                "dup exes in {}",
                class.name
            );
        }
    }

    #[test]
    fn class_names_are_unique() {
        let cat = Catalog::paper();
        let mut names: Vec<&str> = cat.classes().iter().map(|c| c.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 92);
    }

    #[test]
    fn scaling_shrinks_but_keeps_minimums() {
        let cat = Catalog::paper();
        let small = cat.scaled(0.1);
        assert_eq!(small.classes().len(), 92);
        assert!(small.total_samples() < cat.total_samples());
        for class in small.classes() {
            assert!(class.sample_count() >= 3);
        }
        // Scaling by 1.0 is identity.
        assert_eq!(cat.scaled(1.0).total_samples(), cat.total_samples());
    }

    #[test]
    fn version_names_look_like_easybuild() {
        let v = Catalog::version_name(3, 1);
        assert!(v.contains('-'));
        assert!(v.contains('.'));
        // Different versions of the same class get different names.
        assert_ne!(Catalog::version_name(3, 0), Catalog::version_name(3, 1));
    }

    #[test]
    fn executable_base_name_sanitizes() {
        assert_eq!(executable_base_name("Celera Assembler"), "celera_assembler");
        assert_eq!(executable_base_name("CAD-score"), "cad_score");
        assert_eq!(executable_base_name("FSL"), "fsl");
    }

    #[test]
    fn unknown_split_classes_present_with_table3_sizes() {
        let cat = Catalog::paper();
        assert_eq!(
            cat.class_by_name("Schrodinger").unwrap().sample_count(),
            195 + 5
        ); // rounded up by decompose grid
        assert!(cat.class_by_name("CHARMM").unwrap().sample_count() >= 3);
        assert!(cat.class_by_name("OpenMalaria").unwrap().sample_count() >= 25);
    }
}
