//! Serializable corpus manifests.
//!
//! The manifest records, for every sample, its class, version, executable
//! name, install path, and generated file size — everything the evaluation
//! needs except the bytes themselves. It can be written as JSON (for tools)
//! or TSV (for quick inspection / spreadsheets). The JSON codec is
//! hand-rolled because the build environment has no crates.io access; it
//! emits standard JSON and parses back exactly the shape it writes.

use crate::builder::Corpus;
use std::fmt;

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Sample index within the corpus.
    pub sample_index: usize,
    /// Application class name.
    pub class_name: String,
    /// Version folder name.
    pub version_name: String,
    /// Executable file name.
    pub executable_name: String,
    /// Install path (`Class/version/executable`).
    pub install_path: String,
    /// Size of the generated executable in bytes.
    pub file_size: usize,
}

/// A corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Root seed the corpus was generated from.
    pub seed_note: String,
    /// Total number of classes.
    pub n_classes: usize,
    /// All entries, in sample order.
    pub entries: Vec<ManifestEntry>,
}

/// Error produced when parsing a manifest from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestParseError {
    /// What went wrong, with an offset where applicable.
    pub message: String,
}

impl fmt::Display for ManifestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid manifest JSON: {}", self.message)
    }
}

impl std::error::Error for ManifestParseError {}

impl Manifest {
    /// Build the manifest for `corpus`, generating each sample once to
    /// record its file size.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let entries = corpus
            .samples()
            .iter()
            .map(|spec| {
                let bytes = corpus.generate_bytes(spec);
                ManifestEntry {
                    sample_index: spec.sample_index,
                    class_name: spec.class_name.clone(),
                    version_name: spec.version_name.clone(),
                    executable_name: spec.executable_name.clone(),
                    install_path: spec.install_path(),
                    file_size: bytes.len(),
                }
            })
            .collect();
        Self {
            seed_note: "deterministic synthetic corpus".to_string(),
            n_classes: corpus.n_classes(),
            entries,
        }
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"seed_note\": {},\n",
            json_string(&self.seed_note)
        ));
        out.push_str(&format!("  \"n_classes\": {},\n", self.n_classes));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"sample_index\": {}, \"class_name\": {}, \"version_name\": {}, \
                 \"executable_name\": {}, \"install_path\": {}, \"file_size\": {}}}{sep}\n",
                e.sample_index,
                json_string(&e.class_name),
                json_string(&e.version_name),
                json_string(&e.executable_name),
                json_string(&e.install_path),
                e.file_size,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse back from JSON.
    pub fn from_json(json: &str) -> Result<Self, ManifestParseError> {
        let mut p = JsonParser::new(json);
        let value = p.parse_value()?;
        p.expect_end()?;
        let obj = value.as_object("manifest")?;
        let mut manifest = Manifest {
            seed_note: obj.get_string("seed_note")?,
            n_classes: obj.get_number("n_classes")?,
            entries: Vec::new(),
        };
        for (i, item) in obj.get_array("entries")?.iter().enumerate() {
            let e = item.as_object(&format!("entries[{i}]"))?;
            manifest.entries.push(ManifestEntry {
                sample_index: e.get_number("sample_index")?,
                class_name: e.get_string("class_name")?,
                version_name: e.get_string("version_name")?,
                executable_name: e.get_string("executable_name")?,
                install_path: e.get_string("install_path")?,
                file_size: e.get_number("file_size")?,
            });
        }
        Ok(manifest)
    }

    /// Serialize as a TSV table (header + one line per entry).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("sample_index\tclass\tversion\texecutable\tpath\tsize\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                e.sample_index,
                e.class_name,
                e.version_name,
                e.executable_name,
                e.install_path,
                e.file_size
            ));
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (only the shapes the manifest uses).
enum JsonValue {
    String(String),
    Number(u64),
    Array(Vec<JsonValue>),
    Object(JsonObject),
}

struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonValue {
    fn as_object(&self, what: &str) -> Result<&JsonObject, ManifestParseError> {
        match self {
            JsonValue::Object(o) => Ok(o),
            _ => Err(err(format!("{what} is not an object"))),
        }
    }
}

impl JsonObject {
    fn get(&self, key: &str) -> Result<&JsonValue, ManifestParseError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| err(format!("missing field {key:?}")))
    }

    fn get_string(&self, key: &str) -> Result<String, ManifestParseError> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(err(format!("field {key:?} is not a string"))),
        }
    }

    fn get_number(&self, key: &str) -> Result<usize, ManifestParseError> {
        match self.get(key)? {
            JsonValue::Number(n) => Ok(*n as usize),
            _ => Err(err(format!("field {key:?} is not a number"))),
        }
    }

    fn get_array(&self, key: &str) -> Result<&[JsonValue], ManifestParseError> {
        match self.get(key)? {
            JsonValue::Array(a) => Ok(a),
            _ => Err(err(format!("field {key:?} is not an array"))),
        }
    }
}

fn err(message: String) -> ManifestParseError {
    ManifestParseError { message }
}

/// Minimal recursive-descent JSON parser (strings, unsigned integers,
/// arrays, objects — the subset `to_json` emits).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, ManifestParseError> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| err(format!("unexpected end of input at offset {}", self.pos)))
    }

    fn expect(&mut self, byte: u8) -> Result<(), ManifestParseError> {
        let got = self.peek()?;
        if got != byte {
            return Err(err(format!(
                "expected {:?} at offset {}, found {:?}",
                byte as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn expect_end(&mut self) -> Result<(), ManifestParseError> {
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(err(format!("trailing data at offset {}", self.pos)));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<JsonValue, ManifestParseError> {
        match self.peek()? {
            b'"' => Ok(JsonValue::String(self.parse_string()?)),
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'0'..=b'9' => self.parse_number(),
            other => Err(err(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, ManifestParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(err("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(err("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| err("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(format!("invalid \\u escape {hex:?}")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(format!("invalid code point {code:#x}")))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(err(format!("unknown escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| err("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, ManifestParseError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        text.parse::<u64>()
            .map(JsonValue::Number)
            .map_err(|_| err(format!("invalid number {text:?} at offset {start}")))
    }

    fn parse_array(&mut self) -> Result<JsonValue, ManifestParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, ManifestParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(JsonObject { fields }));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(JsonObject { fields }));
                }
                other => {
                    return Err(err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }
}

/// Length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CorpusBuilder;
    use crate::catalog::{Catalog, ClassSpec};

    fn tiny_corpus() -> Corpus {
        let catalog = Catalog::from_classes(vec![
            ClassSpec {
                name: "Velvet".into(),
                n_versions: 3,
                executables: vec!["velveth".into(), "velvetg".into()],
            },
            ClassSpec {
                name: "OpenMalaria".into(),
                n_versions: 3,
                executables: vec!["openmalaria".into()],
            },
        ]);
        CorpusBuilder::new(1).build(&catalog)
    }

    #[test]
    fn manifest_covers_every_sample() {
        let corpus = tiny_corpus();
        let manifest = Manifest::from_corpus(&corpus);
        assert_eq!(manifest.len(), corpus.n_samples());
        assert!(!manifest.is_empty());
        assert_eq!(manifest.n_classes, 2);
        assert!(manifest.entries.iter().all(|e| e.file_size > 1000));
    }

    #[test]
    fn json_roundtrip() {
        let manifest = Manifest::from_corpus(&tiny_corpus());
        let json = manifest.to_json();
        let parsed = Manifest::from_json(&json).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let manifest = Manifest::from_corpus(&tiny_corpus());
        let tsv = manifest.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), manifest.len() + 1);
        assert!(lines[0].starts_with("sample_index\tclass"));
        assert!(lines[1].contains("Velvet"));
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(Manifest::from_json("{not json").is_err());
        assert!(Manifest::from_json("").is_err());
        assert!(Manifest::from_json("{\"seed_note\": \"x\"}").is_err());
        assert!(Manifest::from_json(
            "{\"seed_note\": \"x\", \"n_classes\": 0, \"entries\": []} trailing"
        )
        .is_err());
    }

    #[test]
    fn string_escaping_roundtrips() {
        let mut manifest = Manifest {
            seed_note: "quote \" backslash \\ newline \n tab \t unicode µ".to_string(),
            n_classes: 1,
            entries: vec![],
        };
        manifest.entries.push(ManifestEntry {
            sample_index: 0,
            class_name: "Weird\"Class\\Name".to_string(),
            version_name: "1.0".to_string(),
            executable_name: "x".to_string(),
            install_path: "Weird\"Class\\Name/1.0/x".to_string(),
            file_size: 10,
        });
        let parsed = Manifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
    }
}
