//! Serializable corpus manifests.
//!
//! The manifest records, for every sample, its class, version, executable
//! name, install path, and generated file size — everything the evaluation
//! needs except the bytes themselves. It can be written as JSON (for tools)
//! or TSV (for quick inspection / spreadsheets).

use crate::builder::Corpus;
use serde::{Deserialize, Serialize};

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Sample index within the corpus.
    pub sample_index: usize,
    /// Application class name.
    pub class_name: String,
    /// Version folder name.
    pub version_name: String,
    /// Executable file name.
    pub executable_name: String,
    /// Install path (`Class/version/executable`).
    pub install_path: String,
    /// Size of the generated executable in bytes.
    pub file_size: usize,
}

/// A corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Root seed the corpus was generated from.
    pub seed_note: String,
    /// Total number of classes.
    pub n_classes: usize,
    /// All entries, in sample order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Build the manifest for `corpus`, generating each sample once to
    /// record its file size.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let entries = corpus
            .samples()
            .iter()
            .map(|spec| {
                let bytes = corpus.generate_bytes(spec);
                ManifestEntry {
                    sample_index: spec.sample_index,
                    class_name: spec.class_name.clone(),
                    version_name: spec.version_name.clone(),
                    executable_name: spec.executable_name.clone(),
                    install_path: spec.install_path(),
                    file_size: bytes.len(),
                }
            })
            .collect();
        Self {
            seed_note: "deterministic synthetic corpus".to_string(),
            n_classes: corpus.n_classes(),
            entries,
        }
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization cannot fail")
    }

    /// Parse back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialize as a TSV table (header + one line per entry).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("sample_index\tclass\tversion\texecutable\tpath\tsize\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                e.sample_index, e.class_name, e.version_name, e.executable_name, e.install_path, e.file_size
            ));
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CorpusBuilder;
    use crate::catalog::{Catalog, ClassSpec};

    fn tiny_corpus() -> Corpus {
        let catalog = Catalog::from_classes(vec![
            ClassSpec {
                name: "Velvet".into(),
                n_versions: 3,
                executables: vec!["velveth".into(), "velvetg".into()],
            },
            ClassSpec { name: "OpenMalaria".into(), n_versions: 3, executables: vec!["openmalaria".into()] },
        ]);
        CorpusBuilder::new(1).build(&catalog)
    }

    #[test]
    fn manifest_covers_every_sample() {
        let corpus = tiny_corpus();
        let manifest = Manifest::from_corpus(&corpus);
        assert_eq!(manifest.len(), corpus.n_samples());
        assert!(!manifest.is_empty());
        assert_eq!(manifest.n_classes, 2);
        assert!(manifest.entries.iter().all(|e| e.file_size > 1000));
    }

    #[test]
    fn json_roundtrip() {
        let manifest = Manifest::from_corpus(&tiny_corpus());
        let json = manifest.to_json();
        let parsed = Manifest::from_json(&json).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let manifest = Manifest::from_corpus(&tiny_corpus());
        let tsv = manifest.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), manifest.len() + 1);
        assert!(lines[0].starts_with("sample_index\tclass"));
        assert!(lines[1].contains("Velvet"));
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(Manifest::from_json("{not json").is_err());
    }
}
