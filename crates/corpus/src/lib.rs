//! Synthetic HPC application corpus generator.
//!
//! The paper evaluates on 5333 application executables scraped from the
//! sciCORE production cluster's preinstalled-software tree, grouped into 92
//! application classes (root folder), versions (sub-folders such as
//! `46.0-iomkl-2019.01`), and samples (executables that exist in all
//! versions). That dataset is not publicly available, so this crate builds
//! the closest synthetic equivalent that exercises the same code paths:
//!
//! * [`catalog`] reproduces the 92 class names and per-class sample counts
//!   derived from the paper's Tables 3 and 4, including multi-executable
//!   classes (e.g. Velvet's `velveth`/`velvetg`, Table 1).
//! * [`appmodel`] gives every class a synthetic "code base" — pools of
//!   function names, embedded strings, and per-function machine-code blocks
//!   — and a version-drift model that mutates a small, localized fraction of
//!   it per version (code edits, added/removed symbols, changed version
//!   strings, different "compiler" tags), which is exactly the variation
//!   SSDeep-style fuzzy hashing is designed to absorb.
//! * [`builder`] turns specs into real ELF64 executables via
//!   [`binary::ElfBuilder`], so the downstream parsing / `strings` / `nm`
//!   pipeline runs unmodified.
//! * [`manifest`] and [`stats`] provide serializable metadata and the
//!   summary statistics behind the paper's Table 1 and Figure 2.
//!
//! # Quick start
//!
//! ```
//! use corpus::catalog::Catalog;
//! use corpus::builder::CorpusBuilder;
//!
//! // A scaled-down corpus for quick experiments (full scale = 1.0).
//! let catalog = Catalog::paper().scaled(0.05);
//! let corpus = CorpusBuilder::new(42).build(&catalog);
//! assert_eq!(corpus.class_names().len(), 92);
//! let sample = &corpus.samples()[0];
//! let bytes = corpus.generate_bytes(sample);
//! assert!(binary::ElfFile::parse(&bytes).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appmodel;
pub mod builder;
pub mod catalog;
pub mod manifest;
pub mod stats;

pub use builder::{Corpus, CorpusBuilder, SampleSpec};
pub use catalog::{Catalog, ClassSpec};
