//! Corpus assembly: from a [`Catalog`] to concrete ELF executables.
//!
//! [`CorpusBuilder::build`] precomputes one [`AppModel`] per class and one
//! [`VersionModel`] per (class, version). The resulting [`Corpus`] holds only
//! metadata — the actual executable bytes of a sample are produced on demand
//! by [`Corpus::generate_bytes`], so a full-scale corpus (5000+ samples, a
//! few tens of kilobytes each) never needs to be resident in memory at once.

use crate::appmodel::{AppModel, VersionModel};
use crate::catalog::{Catalog, TOOLCHAINS};
use binary::elf::ElfBuilder;
use hpcutil::SeedSequence;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Undefined (imported) symbols shared across the whole corpus — the libc /
/// MPI surface every real HPC executable links against.
const COMMON_IMPORTS: &[&str] = &[
    "malloc",
    "free",
    "memcpy",
    "memset",
    "printf",
    "fprintf",
    "fopen",
    "fclose",
    "exit",
    "pthread_create",
    "pthread_join",
    "MPI_Init",
    "MPI_Finalize",
    "MPI_Send",
    "MPI_Recv",
    "MPI_Allreduce",
    "omp_get_num_threads",
    "sqrt",
    "exp",
    "log",
];

/// Metadata identifying one sample (one executable file) of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSpec {
    /// Index of the sample within the corpus.
    pub sample_index: usize,
    /// Index of the application class.
    pub class_index: usize,
    /// Application class name (the label the classifier predicts).
    pub class_name: String,
    /// Index of the version within the class.
    pub version_index: usize,
    /// Version folder name (e.g. `1.2.10-GCC-10.3.0`).
    pub version_name: String,
    /// Executable file name (e.g. `velvetg`).
    pub executable_name: String,
}

impl SampleSpec {
    /// The install path this sample would have in the paper's directory
    /// layout: `<Class>/<version>/<executable>`.
    pub fn install_path(&self) -> String {
        format!(
            "{}/{}/{}",
            self.class_name, self.version_name, self.executable_name
        )
    }
}

/// Builder configuration for the corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusBuilder {
    root_seed: u64,
}

/// Simulated statically-linked libraries shared across application classes
/// (numerical kernels, I/O, communication). Their code, strings, and a
/// portion of their symbols appear in many executables of *different*
/// classes, which is what makes the raw-content and strings features noisier
/// than the symbols feature — the ordering the paper's Table 5 reports.
const SHARED_LIBRARIES: &[&str] = &[
    "simlib_blas",
    "simlib_mpi",
    "simlib_hdf5",
    "simlib_boost",
    "simlib_fftw",
    "simlib_json",
];

/// Classes that are the same application installed under two different
/// directory names, which the paper calls out explicitly (CellRanger vs
/// Cell-Ranger, Augustus vs AUGUSTUS). The alias shares the target's code
/// base but covers a disjoint, later range of versions.
const CLASS_ALIASES: &[(&str, &str, usize)] = &[
    ("Cell-Ranger", "CellRanger", 10),
    ("AUGUSTUS", "Augustus", 10),
];

/// Application *families*: groups of related tools that genuinely share a
/// large part of their code base (SAMtools/BCFtools/VCFtools are all built on
/// HTSlib, canu descends from the Celera Assembler, Kraken2 rewrites Kraken,
/// ...). Family members embed a common family core in addition to their own
/// code, so they resemble each other in all three hash views — the source of
/// the real dataset's hard cases (misclassified unknowns, precision/recall
/// gaps on related classes).
const FAMILY_GROUPS: &[&[&str]] = &[
    &["SAMtools", "BCFtools", "HTSlib", "VCFtools"],
    &["Kraken", "Kraken2"],
    &["BLAST", "FASTA", "BLAT"],
    &["Celera Assembler", "canu"],
    &["Cufflinks", "StringTie", "TopHat"],
    &["HISAT2", "Salmon", "kallisto"],
    &["CCP4", "MolProbity", "Raster3D"],
];

/// A fully specified corpus: class models plus per-sample metadata.
#[derive(Debug, Clone)]
pub struct Corpus {
    class_names: Vec<String>,
    samples: Vec<SampleSpec>,
    models: Vec<AppModel>,
    versions: Vec<Vec<VersionModel>>,
    /// `revisions[class][version][function]` — how many times that core
    /// function's code changed up to and including that version, so code
    /// drift accumulates with version distance.
    revisions: Vec<Vec<Vec<u64>>>,
    /// Shared-library code bases linked into executables across classes.
    libraries: Vec<AppModel>,
    /// Indices into `libraries` linked by each class.
    class_libraries: Vec<Vec<usize>>,
    /// Per-class version-drift multiplier.
    class_drift: Vec<f64>,
    /// Family code bases shared by groups of related classes.
    families: Vec<AppModel>,
    /// Index into `families` for classes that belong to one.
    class_family: Vec<Option<usize>>,
    seeds: SeedSequence,
}

impl CorpusBuilder {
    /// Create a builder with a root seed controlling every random choice.
    pub fn new(root_seed: u64) -> Self {
        Self { root_seed }
    }

    /// Materialize the corpus metadata for `catalog`.
    pub fn build(&self, catalog: &Catalog) -> Corpus {
        let seeds = SeedSequence::new(self.root_seed);
        let mut class_names = Vec::with_capacity(catalog.classes().len());
        let mut models = Vec::with_capacity(catalog.classes().len());
        let mut versions: Vec<Vec<VersionModel>> = Vec::with_capacity(catalog.classes().len());
        let mut revisions: Vec<Vec<Vec<u64>>> = Vec::with_capacity(catalog.classes().len());
        let mut class_libraries: Vec<Vec<usize>> = Vec::with_capacity(catalog.classes().len());
        let mut class_drift: Vec<f64> = Vec::with_capacity(catalog.classes().len());
        let mut samples = Vec::with_capacity(catalog.total_samples());

        let libraries: Vec<AppModel> = SHARED_LIBRARIES
            .iter()
            .map(|name| AppModel::new(name, self.root_seed, 90))
            .collect();
        let families: Vec<AppModel> = FAMILY_GROUPS
            .iter()
            .map(|members| AppModel::new(&format!("family/{}", members[0]), self.root_seed, 200))
            .collect();
        let mut class_family: Vec<Option<usize>> = Vec::with_capacity(catalog.classes().len());

        for (class_index, class) in catalog.classes().iter().enumerate() {
            class_family.push(
                FAMILY_GROUPS
                    .iter()
                    .position(|members| members.contains(&class.name.as_str())),
            );
            class_names.push(class.name.clone());
            // Duplicate installs (Cell-Ranger / AUGUSTUS) reuse the target
            // class's code base but cover a later, disjoint version range.
            let alias = CLASS_ALIASES
                .iter()
                .find(|(alias, _, _)| *alias == class.name);
            let (model_name, version_offset) = match alias {
                Some((_, target, offset)) => (target.to_string(), *offset),
                None => (class.name.clone(), 0),
            };
            // Class "complexity" (number of core functions) varies by class
            // but not by corpus scale, so scaled corpora keep realistic
            // binaries.
            let size_hint = 50 + (seeds.derive(&model_name) % 200) as usize;
            let model = AppModel::new(&model_name, self.root_seed, size_hint);

            // Per-class version-drift intensity in [0.5, 4.0]: some classes
            // change drastically between versions, most change little.
            let drift =
                0.5 + (seeds.derive(&format!("drift/{model_name}")) % 1000) as f64 / 1000.0 * 3.5;
            class_drift.push(drift);

            // 1-3 shared libraries linked by this class.
            let lib_seed = seeds.derive(&format!("libs/{model_name}"));
            let n_libs = 1 + (lib_seed % 3) as usize;
            let mut libs: Vec<usize> = (0..libraries.len()).collect();
            let mut lib_rng = ChaCha8Rng::seed_from_u64(lib_seed);
            use rand::seq::SliceRandom;
            libs.shuffle(&mut lib_rng);
            libs.truncate(n_libs);
            libs.sort_unstable();
            class_libraries.push(libs);

            let mut class_versions = Vec::with_capacity(class.n_versions);
            let mut class_revisions: Vec<Vec<u64>> = Vec::with_capacity(class.n_versions);
            let mut cumulative = vec![0u64; model.core_functions.len()];
            for v in 0..class.n_versions {
                let logical_version = v + version_offset;
                let version_name = Catalog::version_name(class_index, logical_version);
                let compiler = compiler_tag(&version_name);
                let vm = model.version(logical_version, &version_name, &compiler, drift);
                for &idx in &vm.changed_code {
                    if idx < cumulative.len() {
                        cumulative[idx] += 1;
                    }
                }
                class_revisions.push(cumulative.clone());
                class_versions.push(vm);
            }

            for (v, version) in class_versions.iter().enumerate() {
                for exe in &class.executables {
                    samples.push(SampleSpec {
                        sample_index: samples.len(),
                        class_index,
                        class_name: class.name.clone(),
                        version_index: v,
                        version_name: version.version_name.clone(),
                        executable_name: exe.clone(),
                    });
                }
            }

            models.push(model);
            versions.push(class_versions);
            revisions.push(class_revisions);
        }

        Corpus {
            class_names,
            samples,
            models,
            versions,
            revisions,
            libraries,
            class_libraries,
            class_drift,
            families,
            class_family,
            seeds,
        }
    }
}

/// Map a version folder name to a plausible `.comment` compiler tag.
pub fn compiler_tag(version_name: &str) -> String {
    for (needle, tag) in [
        ("GCC-10", "GCC: (GNU) 10.3.0"),
        ("GCC-12", "GCC: (GNU) 12.2.0"),
        ("foss-2021", "GCC: (GNU) 10.3.0"),
        ("foss-2022", "GCC: (GNU) 12.2.0"),
        ("iomkl", "Intel(R) C Compiler 19.0.1"),
        ("intel", "Intel(R) C Compiler 2020.0"),
        ("goolf", "GCC: (GNU) 4.9.2"),
        ("gompi", "GCC: (GNU) 11.2.0"),
    ] {
        if version_name.contains(needle) {
            return tag.to_string();
        }
    }
    format!("GCC: (GNU) unknown ({})", TOOLCHAINS[0])
}

impl Corpus {
    /// Class names indexed by class index.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// All sample specifications, in class/version/executable order.
    pub fn samples(&self) -> &[SampleSpec] {
        &self.samples
    }

    /// Number of samples in the corpus.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Number of application classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Per-class sample counts (indexed by class index).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for s in &self.samples {
            counts[s.class_index] += 1;
        }
        counts
    }

    /// The version model for (class, version).
    pub fn version_model(&self, class_index: usize, version_index: usize) -> &VersionModel {
        &self.versions[class_index][version_index]
    }

    /// The application model for a class.
    pub fn app_model(&self, class_index: usize) -> &AppModel {
        &self.models[class_index]
    }

    /// The drift multiplier assigned to a class.
    pub fn class_drift(&self, class_index: usize) -> f64 {
        self.class_drift[class_index]
    }

    /// The shared libraries linked by a class (names).
    pub fn class_library_names(&self, class_index: usize) -> Vec<String> {
        self.class_libraries[class_index]
            .iter()
            .map(|&l| self.libraries[l].class_name.clone())
            .collect()
    }

    /// Generate the ELF executable bytes for one sample.
    ///
    /// The output is deterministic: the same corpus seed and sample spec
    /// always produce the identical file.
    pub fn generate_bytes(&self, spec: &SampleSpec) -> Vec<u8> {
        let model = &self.models[spec.class_index];
        let version = &self.versions[spec.class_index][spec.version_index];
        let revisions = &self.revisions[spec.class_index][spec.version_index];

        let exe_seed = self.seeds.derive_indexed(
            &format!("exe/{}/{}", spec.class_name, spec.executable_name),
            0,
        );
        let mut exe_rng = ChaCha8Rng::seed_from_u64(exe_seed);

        // Each executable links a deterministic subset of the class's shared
        // core (large tools pull in most of it, small tools less), the way a
        // toolkit's individual binaries reuse different parts of its common
        // object code. The subset and its link order are stable across
        // versions of the same executable but differ between sibling
        // executables, so siblings share symbols and strings much more than
        // raw bytes.
        let core_fraction = 0.35 + (exe_seed % 40) as f64 / 100.0;
        let include_core = |function_index: usize| -> bool {
            let h = self.seeds.derive_indexed(
                &format!("subset/{}/{}", spec.class_name, spec.executable_name),
                function_index as u64,
            );
            (h % 1000) as f64 / 1000.0 < core_fraction
        };
        let mut core_indices: Vec<usize> = (0..version.functions.len())
            .filter(|&i| include_core(i))
            .collect();
        // Per-executable link order (deterministic, version-independent).
        let mut order_rng = ChaCha8Rng::seed_from_u64(exe_seed ^ 0x00DE_FACE);
        {
            use rand::seq::SliceRandom;
            core_indices.shuffle(&mut order_rng);
        }

        // Executable-specific functions: the private part on top of the
        // class's shared core (the way velveth/velvetg add their own drivers
        // over Velvet's common object code).
        let n_exe_funcs = 20 + (exe_seed % 60) as usize;
        let exe_functions: Vec<String> = (0..n_exe_funcs)
            .map(|i| format!("{}_{}", spec.executable_name.replace('-', "_"), i))
            .collect();

        let mut builder = ElfBuilder::new();

        // ---- .text: shared core blocks (version-revisioned) + exe blocks
        //      + statically "linked" shared-library blocks ------------------
        let mut text = Vec::new();
        let mut symbol_offsets: Vec<(String, u64, u64)> = Vec::new();
        for &i in &core_indices {
            let name = &version.functions[i];
            let revision = revisions
                .get(i)
                .copied()
                .unwrap_or(u64::from(spec.version_index as u32));
            let block = model.code_block_for(name, revision, &version.compiler_tag);
            symbol_offsets.push((name.clone(), text.len() as u64, block.len() as u64));
            text.extend_from_slice(&block);
        }
        for name in &exe_functions {
            let block = model.code_block_for(name, 0, &version.compiler_tag);
            symbol_offsets.push((name.clone(), text.len() as u64, block.len() as u64));
            text.extend_from_slice(&block);
        }
        // Family core: related applications (e.g. the HTSlib family) embed a
        // substantial shared component whose function names are visible in
        // the symbol table, so family members resemble each other in every
        // hash view.
        if let Some(family_index) = self.class_family[spec.class_index] {
            let family = &self.families[family_index];
            for (i, name) in family.core_functions.iter().enumerate() {
                if i % 2 != 0 {
                    continue;
                }
                let block = family.code_block_for(name, 0, &version.compiler_tag);
                symbol_offsets.push((name.clone(), text.len() as u64, block.len() as u64));
                text.extend_from_slice(&block);
            }
        }
        // Shared-library object code: identical across every class that links
        // the library, so it raises cross-class raw-content similarity. The
        // linker only pulls in the objects the executable actually uses, so
        // each binary carries a modest slice of each library, and only a few
        // of those symbols stay visible.
        for &lib_index in &self.class_libraries[spec.class_index] {
            let lib = &self.libraries[lib_index];
            for (i, name) in lib.core_functions.iter().enumerate() {
                if i % 8 != 0 {
                    continue;
                }
                let block = lib.code_block_for(name, 0, &version.compiler_tag);
                if i % 24 == 0 {
                    symbol_offsets.push((name.clone(), text.len() as u64, block.len() as u64));
                }
                text.extend_from_slice(&block);
            }
        }
        builder.add_text_section(text);

        // ---- .rodata: shared strings + library strings + exe strings ------
        // The *set* of strings is mostly stable across versions, but their
        // layout order is not: the compiler and linker rearrange read-only
        // data with every rebuild. CTPH is order-sensitive, so this is a
        // second reason (besides content drift) the strings view is less
        // reliable than the sorted symbols view — matching the paper's
        // feature-importance ordering.
        let mut rodata_strings: Vec<String> = version.strings.clone();
        if let Some(family_index) = self.class_family[spec.class_index] {
            let family = &self.families[family_index];
            rodata_strings.extend(
                family
                    .core_strings
                    .iter()
                    .take(family.core_strings.len() / 2)
                    .cloned(),
            );
        }
        for &lib_index in &self.class_libraries[spec.class_index] {
            let lib = &self.libraries[lib_index];
            rodata_strings.extend(
                lib.core_strings
                    .iter()
                    .take(lib.core_strings.len() / 2)
                    .cloned(),
            );
        }
        // Toolchain runtime strings: identical across every application built
        // with the same compiler, regardless of class.
        for i in 0..12 {
            rodata_strings.push(format!(
                "{} runtime component {} ({})",
                version.compiler_tag,
                i,
                spec.version_name.split('-').next().unwrap_or("0")
            ));
        }
        {
            use rand::seq::SliceRandom;
            let mut layout_rng = ChaCha8Rng::seed_from_u64(self.seeds.derive_indexed(
                &format!("rodata-layout/{}", spec.class_name),
                spec.version_index as u64,
            ));
            rodata_strings.shuffle(&mut layout_rng);
        }
        let mut rodata = Vec::new();
        for s in &rodata_strings {
            rodata.extend_from_slice(s.as_bytes());
            rodata.push(0);
        }
        rodata.extend_from_slice(
            format!("Usage: {} [options] <input> <output>", spec.executable_name).as_bytes(),
        );
        rodata.push(0);
        rodata.extend_from_slice(
            format!(
                "{} ({}) from {}",
                spec.executable_name, spec.version_name, spec.class_name
            )
            .as_bytes(),
        );
        rodata.push(0);
        builder.add_rodata_section(rodata);

        // ---- .data: a deterministic per-class table ------------------------
        let mut data = vec![0u8; 256];
        let mut data_rng =
            ChaCha8Rng::seed_from_u64(self.seeds.derive(&format!("data/{}", spec.class_name)));
        data_rng.fill(&mut data[..]);
        builder.add_data_section(data);

        // ---- .comment ------------------------------------------------------
        builder.add_comment_section(format!("{}\0", version.compiler_tag).into_bytes());

        // ---- symbols ---------------------------------------------------------
        for (name, offset, size) in &symbol_offsets {
            builder.add_global_function(name, *offset, *size);
        }
        builder.add_global_object(
            &format!("{}_config_table", spec.executable_name.replace('-', "_")),
            0,
            256,
        );
        // A couple of local helpers that nm -g will ignore.
        builder.add_local_function("static_init", 0, 16);
        builder.add_local_function("static_cleanup", 16, 16);
        // Shared libc/MPI imports plus a couple of random extras.
        for import in COMMON_IMPORTS {
            builder.add_undefined_symbol(import);
        }
        for _ in 0..2 {
            let extra = COMMON_IMPORTS[exe_rng.gen_range(0..COMMON_IMPORTS.len())];
            builder.add_undefined_symbol(&format!("{extra}_r"));
        }

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::ElfFile;
    use binary::symbols::global_defined_symbols;
    use ssdeep::{compare, fuzzy_hash_bytes};

    fn small_corpus() -> Corpus {
        CorpusBuilder::new(7).build(&Catalog::paper().scaled(0.02))
    }

    #[test]
    fn corpus_covers_all_classes() {
        let corpus = small_corpus();
        assert_eq!(corpus.n_classes(), 92);
        let counts = corpus.class_counts();
        assert!(counts.iter().all(|&c| c >= 3));
        assert_eq!(counts.iter().sum::<usize>(), corpus.n_samples());
    }

    #[test]
    fn sample_specs_are_consistent() {
        let corpus = small_corpus();
        for (i, s) in corpus.samples().iter().enumerate() {
            assert_eq!(s.sample_index, i);
            assert_eq!(corpus.class_names()[s.class_index], s.class_name);
            assert!(s.install_path().contains('/'));
        }
    }

    #[test]
    fn generated_bytes_are_valid_elf_with_symbols() {
        let corpus = small_corpus();
        let spec = &corpus.samples()[0];
        let bytes = corpus.generate_bytes(spec);
        let elf = ElfFile::parse(&bytes).unwrap();
        assert!(elf.has_symbol_table());
        let globals = global_defined_symbols(&elf);
        assert!(
            globals.len() > 40,
            "expected a rich symbol table, got {}",
            globals.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let corpus = small_corpus();
        let spec = &corpus.samples()[3];
        assert_eq!(corpus.generate_bytes(spec), corpus.generate_bytes(spec));
    }

    #[test]
    fn same_class_versions_share_symbols_even_when_recompiled() {
        let corpus = small_corpus();
        // Two versions of the same executable: the raw bytes may differ a lot
        // (different compiler), but the symbol-table view stays similar —
        // the property the classifier relies on.
        let samples = corpus.samples();
        let a = &samples[0];
        let b = samples
            .iter()
            .find(|s| {
                s.class_index == a.class_index
                    && s.executable_name == a.executable_name
                    && s.version_index != a.version_index
            })
            .expect("every class has >= 3 versions");
        let elf_a = ElfFile::parse(&corpus.generate_bytes(a)).unwrap();
        let elf_b = ElfFile::parse(&corpus.generate_bytes(b)).unwrap();
        let ha = fuzzy_hash_bytes(&binary::symbols::symbols_blob(&elf_a));
        let hb = fuzzy_hash_bytes(&binary::symbols::symbols_blob(&elf_b));
        let score = compare(&ha, &hb);
        assert!(
            score > 40,
            "same-executable versions should share symbols, got {score}"
        );
    }

    #[test]
    fn sibling_executables_share_raw_content_within_a_version() {
        // Raw-content overlap between siblings is a statistical property of
        // the generated corpus; seed 42 gives a comfortable margin (some
        // seeds land near zero for this one pair).
        let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.02));
        let velvet_h = corpus
            .samples()
            .iter()
            .find(|s| {
                s.class_name == "Velvet" && s.executable_name == "velveth" && s.version_index == 0
            })
            .unwrap();
        let velvet_g = corpus
            .samples()
            .iter()
            .find(|s| {
                s.class_name == "Velvet" && s.executable_name == "velvetg" && s.version_index == 0
            })
            .unwrap();
        let ha = fuzzy_hash_bytes(&corpus.generate_bytes(velvet_h));
        let hb = fuzzy_hash_bytes(&corpus.generate_bytes(velvet_g));
        // Same version, same toolchain, shared core and libraries: raw
        // content is related but not identical.
        let score = compare(&ha, &hb);
        assert!(
            score > 0,
            "sibling executables should share some raw content"
        );
        assert!(score < 100);
    }

    #[test]
    fn different_classes_are_fuzzy_dissimilar() {
        let corpus = small_corpus();
        let samples = corpus.samples();
        let a = &samples[0];
        let b = samples
            .iter()
            .find(|s| s.class_index == a.class_index + 5)
            .expect("later class exists");
        let ha = fuzzy_hash_bytes(&corpus.generate_bytes(a));
        let hb = fuzzy_hash_bytes(&corpus.generate_bytes(b));
        let score = compare(&ha, &hb);
        assert!(
            score < 40,
            "different classes should be dissimilar, got {score}"
        );
    }

    #[test]
    fn symbols_are_mostly_stable_across_versions() {
        let corpus = small_corpus();
        let class = 11; // arbitrary class with >= 3 versions
        let v0 = corpus.version_model(class, 0);
        let v1 = corpus.version_model(class, 1);
        let shared = v0
            .functions
            .iter()
            .filter(|f| v1.functions.contains(f))
            .count();
        // Drift varies per class (0.5x–4x); even a high-drift class keeps a
        // clear majority of its symbols between consecutive versions.
        assert!(shared as f64 / v0.functions.len() as f64 > 0.6);
    }

    #[test]
    fn compiler_tags_follow_toolchains() {
        assert!(compiler_tag("1.2.10-GCC-10.3.0").contains("10.3.0"));
        assert!(compiler_tag("46.0-iomkl-2019.01").contains("Intel"));
        assert!(compiler_tag("5.1-goolf-1.7.20").contains("4.9.2"));
        assert!(compiler_tag("something-else").contains("GCC"));
    }

    #[test]
    fn install_paths_mirror_paper_layout() {
        let corpus = small_corpus();
        let velvet = corpus
            .samples()
            .iter()
            .find(|s| s.class_name == "Velvet")
            .unwrap();
        let path = velvet.install_path();
        assert!(path.starts_with("Velvet/"));
        assert!(path.ends_with("velveth") || path.ends_with("velvetg"));
    }
}
