// Fixture: R5 codec_symmetry — deliberately violating. The decoder reads
// the checksum before the row count: classic wire-format drift that only a
// cross-version corpus test would otherwise catch.

fn encode_header(w: &mut ByteWriter, h: &Header) {
    w.put_u32(h.version);
    w.put_usize(h.rows);
    w.put_u64(h.checksum);
    w.put_str(&h.label);
}

fn decode_header(r: &mut ByteReader<'_>) -> Result<Header, CodecError> {
    let version = r.get_u32()?;
    let checksum = r.get_u64()?;
    let rows = r.get_usize()?;
    let label = r.get_str()?;
    Ok(Header {
        version,
        rows,
        checksum,
        label,
    })
}
