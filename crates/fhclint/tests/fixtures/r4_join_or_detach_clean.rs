// Fixture: R4 join_or_detach — clean. Handles are stored and joined,
// returned to the caller, or carry an explicit detach waiver with a reason.

struct Pipeline {
    workers: Vec<JoinHandle<()>>,
}

fn start_pipeline(n: usize, worker: Worker) -> Pipeline {
    let mut workers = Vec::with_capacity(n);
    for _ in 0..n {
        let w = worker.clone();
        workers.push(std::thread::spawn(move || w.run()));
    }
    Pipeline { workers }
}

fn run_and_wait(worker: Worker) {
    let handle = std::thread::spawn(move || worker.run());
    let _ = handle.join();
}

fn run_inline(worker: Worker) {
    let _ = std::thread::spawn(move || worker.run()).join();
}

fn hand_back(worker: Worker) -> JoinHandle<()> {
    std::thread::spawn(move || worker.run())
}

fn serve_forever(listener: Listener, worker: Worker) {
    for conn in listener.connections() {
        let w = worker.clone();
        // fhc-lint: allow(join_or_detach) -- per-connection serving thread; lifetime is bounded by the peer socket and the accept loop never returns
        std::thread::spawn(move || w.serve(conn));
    }
}
