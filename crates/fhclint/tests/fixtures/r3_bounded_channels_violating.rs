// Fixture: R3 bounded_channels — deliberately violating. Two unbounded
// queues in a daemon path: a slow consumer lets the producer grow the heap
// without ever exerting backpressure (the gateway bug class fixed in PR 6).

fn start_pipeline() -> Sender<Job> {
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = channel();
    run_consumer(job_rx, done_tx, done_rx);
    job_tx
}
