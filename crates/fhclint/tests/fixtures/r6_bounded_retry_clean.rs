// Fixture: R6 bounded_retry — clean. Every loop that dials is bounded:
// the first by an exponential backoff schedule, the second by a wall-clock
// deadline, and the `for` sweep dials each endpoint exactly once.

fn redial(endpoint: &Endpoint, backoff: &BackoffPolicy) -> Result<SplitConn, NetError> {
    let mut failures = 0u32;
    loop {
        match endpoint.connect_split() {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                failures += 1;
                if failures > MAX_REDIALS {
                    return Err(NetError::worker_lost(endpoint, e));
                }
                std::thread::sleep(backoff.delay_for(failures));
            }
        }
    }
}

fn wait_for(endpoint: &Endpoint, deadline: Instant) -> Result<SplitConn, NetError> {
    while Instant::now() < deadline {
        if let Ok(conn) = endpoint.connect_split() {
            return Ok(conn);
        }
        std::thread::sleep(PROBE_PAUSE);
    }
    Err(NetError::timed_out(endpoint))
}

fn sweep(endpoints: &[Endpoint]) -> Vec<Result<SplitConn, NetError>> {
    let mut out = Vec::with_capacity(endpoints.len());
    for endpoint in endpoints {
        out.push(endpoint.connect_split().map_err(NetError::dial));
    }
    out
}
