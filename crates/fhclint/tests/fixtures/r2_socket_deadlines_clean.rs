// Fixture: R2 socket_deadlines — clean. Both deadlines set on every
// accepted socket, in the same function that accepts it.

fn serve_tcp(worker: Worker, listener: TcpListener) -> Result<(), NetError> {
    for stream in listener.incoming() {
        let stream = stream.map_err(NetError::accept)?;
        stream.set_read_timeout(Some(IDLE_TIMEOUT)).map_err(NetError::socket)?;
        stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(NetError::socket)?;
        let shard = worker.clone();
        handle(shard, stream)?;
    }
    Ok(())
}

fn serve_unix(worker: Worker, listener: UnixListener) -> Result<(), NetError> {
    loop {
        let (stream, _addr) = listener.accept().map_err(NetError::accept)?;
        stream.set_read_timeout(Some(IDLE_TIMEOUT)).map_err(NetError::socket)?;
        stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(NetError::socket)?;
        handle(worker.clone(), stream)?;
    }
}
