// Fixture: R3 bounded_channels — clean. Bounded queues with explicit
// depths; the oneshot reply channel is sync_channel(1) so a single send
// can never block.

const QUEUE_DEPTH: usize = 1024;

fn start_pipeline() -> SyncSender<Job> {
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(QUEUE_DEPTH);
    let (done_tx, done_rx) = mpsc::sync_channel(1);
    run_consumer(job_rx, done_tx, done_rx);
    job_tx
}
