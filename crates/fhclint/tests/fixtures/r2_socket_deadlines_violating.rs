// Fixture: R2 socket_deadlines — deliberately violating. The accept loop
// sets a read deadline but forgets the write deadline, which is exactly the
// stalled-writer bug class: a peer that stops draining its socket pins the
// serving thread forever.

fn serve_tcp(worker: Worker, listener: TcpListener) -> Result<(), NetError> {
    for stream in listener.incoming() {
        let stream = stream.map_err(NetError::accept)?;
        stream.set_read_timeout(Some(IDLE_TIMEOUT)).map_err(NetError::socket)?;
        let shard = worker.clone();
        handle(shard, stream)?;
    }
    Ok(())
}
