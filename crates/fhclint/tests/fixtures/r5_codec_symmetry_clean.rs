// Fixture: R5 codec_symmetry — clean. put_* and get_* sequences mirror
// exactly, including inside the per-row loop.

fn encode_header(w: &mut ByteWriter, h: &Header) {
    w.put_u32(h.version);
    w.put_usize(h.rows);
    w.put_u64(h.checksum);
    w.put_str(&h.label);
}

fn decode_header(r: &mut ByteReader<'_>) -> Result<Header, CodecError> {
    let version = r.get_u32()?;
    let rows = r.get_usize()?;
    let checksum = r.get_u64()?;
    let label = r.get_str()?;
    Ok(Header {
        version,
        rows,
        checksum,
        label,
    })
}

fn encode_rows(w: &mut ByteWriter, rows: &[Row]) {
    w.put_usize(rows.len());
    for row in rows {
        w.put_u32(row.id);
        w.put_f64(row.score);
    }
}

fn decode_rows(r: &mut ByteReader<'_>) -> Result<Vec<Row>, CodecError> {
    let n = r.get_usize()?;
    let mut rows = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let id = r.get_u32()?;
        let score = r.get_f64()?;
        rows.push(Row { id, score });
    }
    Ok(rows)
}
