// Fixture: R1 no_panic — deliberately violating. Four panic paths in
// non-test daemon code, plus proof that test code stays exempt.

fn handle_frame(buf: &[u8]) -> u64 {
    let header: [u8; 8] = buf[..8].try_into().unwrap();
    u64::from_le_bytes(header)
}

fn route(tag: u8) -> &'static str {
    match tag {
        1 => "score",
        2 => "batch",
        0 => unreachable!("tag zero is reserved"),
        _ => panic!("unknown tag {tag}"),
    }
}

fn deadline(opts: &Options) -> Duration {
    opts.reply_deadline.expect("stall implies a deadline")
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_here() {
        let v: Vec<u8> = encode().unwrap();
        assert!(!v.is_empty());
    }
}
