// Fixture: R6 bounded_retry — deliberately violating. The redial loop
// retries a dead peer with a fixed pause and no backoff or deadline, so a
// worker that never comes back is hammered at a constant rate forever and
// the caller never learns the peer is gone.

fn redial(endpoint: &Endpoint) -> SplitConn {
    loop {
        match endpoint.connect_split() {
            Ok(conn) => return conn,
            Err(_) => std::thread::sleep(RETRY_PAUSE),
        }
    }
}
