// Fixture: R4 join_or_detach — deliberately violating. Handles dropped on
// the floor: nobody observes a worker panic, and shutdown can't wait for
// in-flight work.

fn start_background(worker: Worker) {
    std::thread::spawn(move || worker.run());
}

fn start_named(worker: Worker) {
    std::thread::Builder::new()
        .name("shard-worker".to_string())
        .spawn(move || worker.run())
        .expect("spawn worker thread");
}

fn start_discarded(worker: Worker) {
    let _ = std::thread::spawn(move || worker.run());
}
