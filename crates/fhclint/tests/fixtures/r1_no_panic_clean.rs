// Fixture: R1 no_panic — clean. Typed error returns, lock-poison recovery
// via unwrap_or_else (allowed: it does not panic), and one waived panic
// with a mandatory reason.

fn handle_frame(buf: &[u8]) -> Result<u64, FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::truncated(buf.len()));
    }
    let header = [
        buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
    ];
    Ok(u64::from_le_bytes(header))
}

fn lock_state(state: &Mutex<State>) -> MutexGuard<'_, State> {
    state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn route(tag: u8) -> Result<&'static str, FrameError> {
    match tag {
        1 => Ok("score"),
        2 => Ok("batch"),
        other => Err(FrameError::unknown_tag(other)),
    }
}

fn documented_infallible(scores: &Prepared) -> f64 {
    // fhc-lint: allow(no_panic) -- documented contract: the infallible API panics on transport failure; callers wanting errors use try_score
    scores.total.expect("transport verified by caller")
}
