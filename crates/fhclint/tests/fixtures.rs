//! Fixture gate: every rule must catch its deliberately-violating fixture
//! and accept its clean fixture. Fixtures are routed through a synthetic
//! daemon path so the full rule set applies regardless of where the fixture
//! files live on disk.

use fhclint::{lint_source_with, RuleSet, Violation};

fn lint_fixture(name: &str) -> Vec<Violation> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path} unreadable: {e}"));
    lint_source_with("crates/fhc/src/shardnet/fixture.rs", &src, RuleSet::all()).violations
}

fn unwaived_of(name: &str, rule: &str) -> usize {
    lint_fixture(name)
        .iter()
        .filter(|v| v.waived.is_none() && v.rule.name == rule)
        .count()
}

fn assert_clean(name: &str) {
    let open: Vec<_> = lint_fixture(name)
        .into_iter()
        .filter(|v| v.waived.is_none())
        .collect();
    assert!(open.is_empty(), "{name} should be clean, got: {open:#?}");
}

#[test]
fn r1_catches_violating_fixture() {
    // unwrap + unreachable! + panic! + expect, test module exempt.
    assert_eq!(unwaived_of("r1_no_panic_violating.rs", "no_panic"), 4);
}

#[test]
fn r1_accepts_clean_fixture() {
    assert_clean("r1_no_panic_clean.rs");
    // The clean fixture carries exactly one reasoned waiver.
    let waived: Vec<_> = lint_fixture("r1_no_panic_clean.rs")
        .into_iter()
        .filter(|v| v.waived.is_some())
        .collect();
    assert_eq!(waived.len(), 1);
}

#[test]
fn r2_catches_violating_fixture() {
    assert_eq!(
        unwaived_of("r2_socket_deadlines_violating.rs", "socket_deadlines"),
        1
    );
}

#[test]
fn r2_accepts_clean_fixture() {
    assert_clean("r2_socket_deadlines_clean.rs");
}

#[test]
fn r3_catches_violating_fixture() {
    // Both the turbofish and the bare channel() forms.
    assert_eq!(
        unwaived_of("r3_bounded_channels_violating.rs", "bounded_channels"),
        2
    );
}

#[test]
fn r3_accepts_clean_fixture() {
    assert_clean("r3_bounded_channels_clean.rs");
}

#[test]
fn r4_catches_violating_fixture() {
    // Plain discard, builder-chain discard, and `let _ =` discard.
    assert_eq!(
        unwaived_of("r4_join_or_detach_violating.rs", "join_or_detach"),
        3
    );
}

#[test]
fn r4_accepts_clean_fixture() {
    assert_clean("r4_join_or_detach_clean.rs");
}

#[test]
fn r5_catches_violating_fixture() {
    assert_eq!(
        unwaived_of("r5_codec_symmetry_violating.rs", "codec_symmetry"),
        1
    );
}

#[test]
fn r5_accepts_clean_fixture() {
    assert_clean("r5_codec_symmetry_clean.rs");
}

#[test]
fn r6_catches_violating_fixture() {
    assert_eq!(
        unwaived_of("r6_bounded_retry_violating.rs", "bounded_retry"),
        1
    );
}

#[test]
fn r6_accepts_clean_fixture() {
    assert_clean("r6_bounded_retry_clean.rs");
}

#[test]
fn violating_fixtures_flag_only_their_own_rule() {
    for (fixture, rule) in [
        ("r2_socket_deadlines_violating.rs", "socket_deadlines"),
        ("r3_bounded_channels_violating.rs", "bounded_channels"),
        ("r5_codec_symmetry_violating.rs", "codec_symmetry"),
        ("r6_bounded_retry_violating.rs", "bounded_retry"),
    ] {
        let stray: Vec<_> = lint_fixture(fixture)
            .into_iter()
            .filter(|v| v.waived.is_none() && v.rule.name != rule)
            .collect();
        assert!(stray.is_empty(), "{fixture} leaked other rules: {stray:#?}");
    }
}
