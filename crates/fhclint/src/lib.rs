//! fhc-lint: a repo-aware static analysis pass for the shardnet serving tier.
//!
//! The distributed serving code (hpcutil mux/pool/frame, fhc::shardnet, the
//! daemon binaries) keeps re-growing the same bug classes in review: panics
//! inside mux/pool worker threads, accepted sockets missing a read *or* write
//! deadline, unbounded `mpsc::channel()` queues in daemon paths, detached
//! threads nobody joins, and encode/decode drift in the hand-rolled wire
//! codecs. This crate mechanizes that checklist. The environment is offline
//! (no clippy plugins, no syn), so the analysis is a hand-rolled token-level
//! pass: a comment/string-aware lexer plus brace-tracked item scoping — no
//! full parse, which is enough for every rule below because each one keys off
//! call-site tokens and enclosing-function extents, not types.
//!
//! Rules:
//! - `no_panic` (R1): no `.unwrap()` / `.expect(..)` / `panic!` /
//!   `unreachable!` in non-test daemon code — convert to typed
//!   `MuxError`/`NetError` returns.
//! - `socket_deadlines` (R2): a function that accepts a `TcpStream` /
//!   `UnixStream` (calls `.accept()` or `.incoming()`) must call **both**
//!   `set_read_timeout` and `set_write_timeout`.
//! - `bounded_channels` (R3): no unbounded `mpsc::channel()` in daemon
//!   modules — use `sync_channel` with an explicit bound.
//! - `join_or_detach` (R4): a `spawn(..)` whose `JoinHandle` is discarded at
//!   statement level is a violation; keep the handle (bind, store, return,
//!   join inline) or carry an explicit detach waiver.
//! - `codec_symmetry` (R5): the `put_*` call sequence in each `encode_X` fn
//!   must mirror the `get_*` sequence in its paired `decode_X` fn.
//! - `bounded_retry` (R6): a `loop`/`while` body that dials connections
//!   (`connect*`/`*dial*` calls) must reference a backoff or deadline
//!   binding — an unbounded hot redial loop hammers a dead peer.
//! - `failpoint_named` (R7): every `failpoint::hit(..)` / shardnet
//!   `inject(..)` call must name its site as a bare string literal that is
//!   registered in `hpcutil::failpoint::SITES` — computed names defeat
//!   grep, and unregistered names make `--failpoints` specs silently inert.
//!
//! Waivers: `// fhc-lint: allow(rule_name) -- reason` on the flagged line or
//! on its own line directly above. The reason is mandatory; a malformed
//! waiver is itself a (non-waivable) violation, and waivers are counted in
//! the summary so creep stays visible in CI.

use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The rule catalog. Order here fixes report order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        id: "R1",
        name: "no_panic",
        summary: "no unwrap/expect/panic!/unreachable! in non-test daemon code",
    },
    RuleInfo {
        id: "R2",
        name: "socket_deadlines",
        summary: "accepting fns must set both set_read_timeout and set_write_timeout",
    },
    RuleInfo {
        id: "R3",
        name: "bounded_channels",
        summary: "no unbounded mpsc::channel() in daemon modules; use sync_channel",
    },
    RuleInfo {
        id: "R4",
        name: "join_or_detach",
        summary: "spawn handles must be kept/joined or carry a detach waiver",
    },
    RuleInfo {
        id: "R5",
        name: "codec_symmetry",
        summary: "encode_X put_* sequence must mirror decode_X get_* sequence",
    },
    RuleInfo {
        id: "R6",
        name: "bounded_retry",
        summary: "retry loops that dial connections must be bounded by a backoff/deadline",
    },
    RuleInfo {
        id: "R7",
        name: "failpoint_named",
        summary: "failpoint sites must be string literals registered in hpcutil::failpoint::SITES",
    },
    RuleInfo {
        id: "W0",
        name: "waiver_syntax",
        summary: "fhc-lint waivers must name a known rule and give a reason",
    },
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    pub id: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
}

pub fn rule_by_name(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub no_panic: bool,
    pub socket_deadlines: bool,
    pub bounded_channels: bool,
    pub join_or_detach: bool,
    pub codec_symmetry: bool,
    pub bounded_retry: bool,
    pub failpoint_named: bool,
}

impl RuleSet {
    pub fn all() -> Self {
        RuleSet {
            no_panic: true,
            socket_deadlines: true,
            bounded_channels: true,
            join_or_detach: true,
            codec_symmetry: true,
            bounded_retry: true,
            failpoint_named: true,
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// Path classification mirroring the review checklist's blast radius: the
/// connection mux, the worker pool, framing, everything under shardnet, and
/// the daemon binaries. Test trees, examples, benches, fixtures, and vendored
/// shims are exempt wholesale.
pub fn rules_for_path(path: &str) -> RuleSet {
    let p = path.replace('\\', "/");
    let exempt = ["/tests/", "/examples/", "/benches/", "/fixtures/"]
        .iter()
        .any(|frag| p.contains(frag))
        || p.contains("vendor/")
        || p.contains("/target/");
    if exempt {
        return RuleSet::default();
    }
    let daemon_core = p.contains("crates/fhc/src/shardnet/")
        || p.contains("crates/fhc/src/bin/")
        || p.ends_with("crates/hpcutil/src/mux.rs")
        || p.ends_with("crates/hpcutil/src/pool.rs")
        || p.ends_with("crates/hpcutil/src/frame.rs");
    // Codec symmetry additionally covers all of hpcutil (home of the
    // ByteWriter/ByteReader codec layer the wire formats are built on).
    let codec = daemon_core || p.contains("crates/hpcutil/src/");
    RuleSet {
        no_panic: daemon_core,
        socket_deadlines: daemon_core,
        bounded_channels: daemon_core,
        join_or_detach: daemon_core,
        codec_symmetry: codec,
        bounded_retry: daemon_core,
        failpoint_named: daemon_core,
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Str,
    Char,
    Num,
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A waiver comment, resolved to the source line it covers.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// True if nothing but whitespace preceded the comment on its line (the
    /// waiver then covers the next code line instead of its own).
    pub standalone: bool,
}

/// A `fhc-lint:` comment that failed to parse as a waiver.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    pub line: u32,
    pub detail: String,
}

pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub waivers: Vec<Waiver>,
    pub bad_waivers: Vec<BadWaiver>,
}

pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut waivers = Vec::new();
    let mut bad_waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_token = false;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            line_has_token = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (and waiver extraction).
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            parse_waiver_comment(&text, line, !line_has_token, &mut waivers, &mut bad_waivers);
            continue;
        }
        // Block comments, nested.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    line_has_token = false;
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 1;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // Raw strings / raw identifiers / byte strings share prefixes with
        // plain identifiers, so they are resolved before the identifier arm.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && bytes.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            let raw_prefix_ok = c == 'r' || (c == 'b' && bytes.get(i + 1) == Some(&'r'));
            if raw_prefix_ok && bytes.get(j) == Some(&'"') {
                // Raw (byte) string: scan for `"` followed by `hashes` #s.
                i = j + 1;
                loop {
                    match bytes.get(i) {
                        None => break,
                        Some('\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some('"') => {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while seen < hashes && bytes.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            i = k;
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(_) => i += 1,
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                line_has_token = true;
                continue;
            }
            if c == 'r' && hashes == 1 && bytes.get(j).is_some_and(|&ch| is_ident_start(ch)) {
                // Raw identifier r#name.
                let start = j;
                let mut k = j;
                while k < bytes.len() && is_ident_cont(bytes[k]) {
                    k += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: bytes[start..k].iter().collect(),
                    line,
                });
                line_has_token = true;
                i = k;
                continue;
            }
            if c == 'b' && hashes == 0 && bytes.get(i + 1) == Some(&'"') {
                i += 1; // fall through to the string arm below
                let end = scan_string(&bytes, i, &mut line, &mut line_has_token);
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                line_has_token = true;
                i = end;
                continue;
            }
            if c == 'b' && hashes == 0 && bytes.get(i + 1) == Some(&'\'') {
                i += 1; // byte char literal, handled like a char literal
                let end = scan_char_literal(&bytes, i);
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line_has_token = true;
                i = end;
                continue;
            }
            // else: plain identifier starting with r/b, falls through.
        }
        if c == '"' {
            let end = scan_string(&bytes, i, &mut line, &mut line_has_token);
            // Keep the literal's raw content (escapes verbatim): R7 matches
            // failpoint site names against the registry by text. Other rules
            // key off Ident/Punct tokens and never read Str text.
            let content_end = if bytes.get(end.wrapping_sub(1)) == Some(&'"') {
                end - 1
            } else {
                end // unterminated at EOF
            };
            tokens.push(Tok {
                kind: TokKind::Str,
                text: bytes[i + 1..content_end.max(i + 1)].iter().collect(),
                line,
            });
            line_has_token = true;
            i = end;
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal: a backslash or a close-quote two
            // characters out means char literal; otherwise lifetime.
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => bytes.get(i + 2) == Some(&'\''),
                Some(_) => true, // e.g. '(' — only valid as a char literal
                None => false,
            };
            if is_char {
                let end = scan_char_literal(&bytes, i);
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line_has_token = true;
                i = end;
            } else {
                let mut k = i + 1;
                while k < bytes.len() && is_ident_cont(bytes[k]) {
                    k += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line,
                });
                line_has_token = true;
                i = k;
            }
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            tokens.push(Tok {
                kind: TokKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            line_has_token = true;
            continue;
        }
        if c.is_ascii_digit() {
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            tokens.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                line,
            });
            line_has_token = true;
            continue;
        }
        tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        line_has_token = true;
        i += 1;
    }

    Lexed {
        tokens,
        waivers,
        bad_waivers,
    }
}

fn scan_string(bytes: &[char], open: usize, line: &mut u32, line_has_token: &mut bool) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped newline (string continuation) still ends a source
            // line — skipping it uncounted would shift every line number
            // reported after the string, detaching waivers from their code.
            '\\' => {
                if bytes.get(i + 1) == Some(&'\n') {
                    *line += 1;
                    *line_has_token = false;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                *line_has_token = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn scan_char_literal(bytes: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn parse_waiver_comment(
    comment: &str,
    line: u32,
    standalone: bool,
    waivers: &mut Vec<Waiver>,
    bad: &mut Vec<BadWaiver>,
) {
    let body = comment.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("fhc-lint:") else {
        return;
    };
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix("allow(") else {
        bad.push(BadWaiver {
            line,
            detail: format!("expected `allow(rule) -- reason`, got {rest:?}"),
        });
        return;
    };
    let Some(close) = inner.find(')') else {
        bad.push(BadWaiver {
            line,
            detail: "unterminated allow( — missing `)`".to_string(),
        });
        return;
    };
    let rule = inner[..close].trim();
    if rule_by_name(rule).is_none() || rule == "waiver_syntax" {
        bad.push(BadWaiver {
            line,
            detail: format!("unknown rule {rule:?} in waiver"),
        });
        return;
    }
    let tail = inner[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        bad.push(BadWaiver {
            line,
            detail: "waiver is missing the mandatory `-- reason`".to_string(),
        });
        return;
    };
    let reason = reason.trim();
    if reason.is_empty() {
        bad.push(BadWaiver {
            line,
            detail: "waiver reason must be non-empty".to_string(),
        });
        return;
    }
    waivers.push(Waiver {
        rule: rule.to_string(),
        reason: reason.to_string(),
        comment_line: line,
        standalone,
    });
}

// ---------------------------------------------------------------------------
// Item scoping (brace-tracked, attribute-aware)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    pub line: u32,
    /// Token index of the opening `{` of the body.
    pub body_start: usize,
    /// Token index of the matching `}` (exclusive end is body_end + 1).
    pub body_end: usize,
    pub is_test: bool,
}

struct ScopeOutcome {
    fns: Vec<FnInfo>,
    /// Token ranges inside `#[cfg(test)] mod` bodies.
    test_spans: Vec<(usize, usize)>,
}

enum Pending {
    None,
    Fn { name: String, line: u32, test: bool },
    Mod { test: bool },
}

fn track_scopes(tokens: &[Tok]) -> ScopeOutcome {
    enum Scope {
        Block,
        Fn { index: usize },
        Mod { test: bool, start: usize },
    }
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut test_spans = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    let mut pending_attr_test = false;
    let mut in_test_mod = 0usize;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            // Attribute: #[...] — collect identifiers, looking for `test`
            // (covers #[test] and #[cfg(test)]; `not(test)` is counted as
            // non-test, which matches how this repo uses cfg).
            TokKind::Punct
                if t.text == "#" && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("[") =>
            {
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut saw_test = false;
                let mut saw_not = false;
                while j < tokens.len() {
                    let a = &tokens[j];
                    match (a.kind, a.text.as_str()) {
                        (TokKind::Punct, "[") => depth += 1,
                        (TokKind::Punct, "]") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (TokKind::Ident, "test") => saw_test = true,
                        (TokKind::Ident, "not") => saw_not = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_test && !saw_not {
                    pending_attr_test = true;
                }
                i = j + 1;
                continue;
            }
            TokKind::Ident if t.text == "fn" => {
                if let Some(name_tok) = tokens.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        pending = Pending::Fn {
                            name: name_tok.text.clone(),
                            line: name_tok.line,
                            test: pending_attr_test || in_test_mod > 0,
                        };
                        pending_attr_test = false;
                        i += 2;
                        continue;
                    }
                }
            }
            TokKind::Ident
                if t.text == "mod" && tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) =>
            {
                pending = Pending::Mod {
                    test: pending_attr_test || in_test_mod > 0,
                };
                pending_attr_test = false;
                i += 2;
                continue;
            }
            TokKind::Ident if matches!(t.text.as_str(), "struct" | "enum" | "impl" | "trait") => {
                // Item keywords consume any pending cfg(test) attribute so it
                // does not leak onto a later fn.
                pending_attr_test = false;
            }
            TokKind::Punct if t.text == ";" => {
                // A signature-only fn (trait method) or `mod name;` never
                // opens a body; cancel the pending item.
                pending = Pending::None;
            }
            TokKind::Punct if t.text == "{" => {
                match std::mem::replace(&mut pending, Pending::None) {
                    Pending::Fn { name, line, test } => {
                        fns.push(FnInfo {
                            name,
                            line,
                            body_start: i,
                            body_end: usize::MAX,
                            is_test: test,
                        });
                        stack.push(Scope::Fn {
                            index: fns.len() - 1,
                        });
                    }
                    Pending::Mod { test } => {
                        if test {
                            in_test_mod += 1;
                        }
                        stack.push(Scope::Mod { test, start: i });
                    }
                    Pending::None => stack.push(Scope::Block),
                }
            }
            TokKind::Punct if t.text == "}" => match stack.pop() {
                Some(Scope::Fn { index }) => fns[index].body_end = i,
                Some(Scope::Mod { test: true, start }) => {
                    in_test_mod -= 1;
                    test_spans.push((start, i));
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    // Unclosed scopes (truncated input): close at EOF.
    for f in &mut fns {
        if f.body_end == usize::MAX {
            f.body_end = tokens.len().saturating_sub(1);
        }
    }
    ScopeOutcome { fns, test_spans }
}

// ---------------------------------------------------------------------------
// Violations and per-file analysis
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static RuleInfo,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// The waiver reason, when a matching waiver covers this line.
    pub waived: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}:{} — {}",
            if self.waived.is_some() {
                "waived"
            } else {
                "error"
            },
            self.rule.id,
            self.rule.name,
            self.path,
            self.line,
            self.message
        )
    }
}

pub struct FileReport {
    pub violations: Vec<Violation>,
    pub waiver_count: usize,
}

/// Lint one source file using the rules its path selects.
pub fn lint_source(path: &str, src: &str) -> FileReport {
    lint_source_with(path, src, rules_for_path(path))
}

/// Lint one source file with an explicit rule set (fixture tests use this to
/// route arbitrary paths onto specific rules).
pub fn lint_source_with(path: &str, src: &str, rules: RuleSet) -> FileReport {
    let mut out = Vec::new();
    let lexed = lex(src);

    // Malformed waivers are always violations, even in otherwise-exempt rule
    // sets: a waiver that silently fails to parse would hide a real finding.
    for bad in &lexed.bad_waivers {
        out.push(Violation {
            rule: &RULES[7],
            path: path.to_string(),
            line: bad.line,
            message: bad.detail.clone(),
            waived: None,
        });
    }

    if rules.is_empty() {
        return FileReport {
            violations: out,
            waiver_count: 0,
        };
    }

    let scopes = track_scopes(&lexed.tokens);
    let ctx = FileCtx {
        tokens: &lexed.tokens,
        fns: &scopes.fns,
        test_spans: &scopes.test_spans,
        path,
    };

    if rules.no_panic {
        rule_no_panic(&ctx, &mut out);
    }
    if rules.socket_deadlines {
        rule_socket_deadlines(&ctx, &mut out);
    }
    if rules.bounded_channels {
        rule_bounded_channels(&ctx, &mut out);
    }
    if rules.join_or_detach {
        rule_join_or_detach(&ctx, &mut out);
    }
    if rules.codec_symmetry {
        rule_codec_symmetry(&ctx, &mut out);
    }
    if rules.bounded_retry {
        rule_bounded_retry(&ctx, &mut out);
    }
    if rules.failpoint_named {
        rule_failpoint_named(&ctx, &mut out);
    }

    // Apply waivers: a waiver covers its own line (trailing comment) or, when
    // standalone, the next source line — chains of standalone waivers all
    // resolve to the first code line below them.
    let mut waiver_count = 0usize;
    for v in &mut out {
        if v.rule.name == "waiver_syntax" {
            continue;
        }
        let covered = lexed.waivers.iter().find(|w| {
            w.rule == v.rule.name
                && (w.comment_line == v.line
                    || (w.standalone && waiver_target(&lexed, w) == Some(v.line)))
        });
        if let Some(w) = covered {
            v.waived = Some(w.reason.clone());
            waiver_count += 1;
        }
    }
    FileReport {
        violations: out,
        waiver_count,
    }
}

/// The first code line at or below a standalone waiver comment.
fn waiver_target(lexed: &Lexed, w: &Waiver) -> Option<u32> {
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > w.comment_line)
}

struct FileCtx<'a> {
    tokens: &'a [Tok],
    fns: &'a [FnInfo],
    test_spans: &'a [(usize, usize)],
    path: &'a str,
}

impl<'a> FileCtx<'a> {
    fn is_test_at(&self, idx: usize) -> bool {
        if self.test_spans.iter().any(|&(s, e)| idx > s && idx < e) {
            return true;
        }
        self.enclosing_fn(idx).is_some_and(|f| f.is_test)
    }

    fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        // Innermost = the fn whose body span is the tightest around idx.
        self.fns
            .iter()
            .filter(|f| idx > f.body_start && idx < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }

    fn ident(&self, idx: usize) -> Option<&str> {
        let t = self.tokens.get(idx)?;
        (t.kind == TokKind::Ident).then_some(t.text.as_str())
    }

    fn punct(&self, idx: usize) -> Option<&str> {
        let t = self.tokens.get(idx)?;
        (t.kind == TokKind::Punct).then_some(t.text.as_str())
    }

    fn violation(&self, rule: &'static RuleInfo, line: u32, message: String) -> Violation {
        Violation {
            rule,
            path: self.path.to_string(),
            line,
            message,
            waived: None,
        }
    }
}

/// Skip a turbofish (`::<...>`) starting at `idx`; returns the index just
/// past it, or `idx` unchanged if there is none.
fn skip_turbofish(ctx: &FileCtx<'_>, idx: usize) -> usize {
    if ctx.punct(idx) == Some(":")
        && ctx.punct(idx + 1) == Some(":")
        && ctx.punct(idx + 2) == Some("<")
    {
        let mut depth = 1usize;
        let mut j = idx + 3;
        while j < ctx.tokens.len() && depth > 0 {
            match ctx.punct(j) {
                Some("<") => depth += 1,
                Some(">") => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        return j;
    }
    idx
}

/// Index just past the matching `)` of a call whose `(` is at `open`.
fn skip_call(ctx: &FileCtx<'_>, open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < ctx.tokens.len() {
        match ctx.punct(j) {
            Some("(") => depth += 1,
            Some(")") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// --- R1: no_panic ----------------------------------------------------------

fn rule_no_panic(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        let flagged = match name {
            "unwrap" | "expect" => {
                ctx.punct(i.wrapping_sub(1)) == Some(".") && ctx.punct(i + 1) == Some("(")
            }
            "panic" | "unreachable" => ctx.punct(i + 1) == Some("!"),
            _ => false,
        };
        if !flagged || ctx.is_test_at(i) {
            continue;
        }
        let what = match name {
            "unwrap" => ".unwrap()",
            "expect" => ".expect(..)",
            "panic" => "panic!",
            _ => "unreachable!",
        };
        out.push(ctx.violation(
            &RULES[0],
            ctx.tokens[i].line,
            format!("{what} in non-test daemon code — return a typed MuxError/NetError instead"),
        ));
    }
}

// --- R2: socket_deadlines --------------------------------------------------

fn rule_socket_deadlines(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for f in ctx.fns {
        if f.is_test {
            continue;
        }
        let mut accept_at: Option<(u32, &str)> = None;
        let mut has_read = false;
        let mut has_write = false;
        for i in f.body_start..=f.body_end.min(ctx.tokens.len().saturating_sub(1)) {
            let Some(name) = ctx.ident(i) else { continue };
            match name {
                "accept" | "incoming"
                    if ctx.punct(i.wrapping_sub(1)) == Some(".")
                        && ctx.punct(i + 1) == Some("(")
                        && accept_at.is_none() =>
                {
                    accept_at = Some((
                        ctx.tokens[i].line,
                        if name == "accept" {
                            "accept()"
                        } else {
                            "incoming()"
                        },
                    ));
                }
                "set_read_timeout" => has_read = true,
                "set_write_timeout" => has_write = true,
                _ => {}
            }
        }
        if let Some((line, how)) = accept_at {
            if !(has_read && has_write) {
                let missing = match (has_read, has_write) {
                    (false, false) => "set_read_timeout and set_write_timeout",
                    (true, false) => "set_write_timeout",
                    (false, true) => "set_read_timeout",
                    _ => unreachable!(),
                };
                out.push(ctx.violation(
                    &RULES[1],
                    line,
                    format!(
                        "fn {} accepts connections via {how} but never calls {missing} — accepted sockets need both deadlines",
                        f.name
                    ),
                ));
            }
        }
    }
}

// --- R3: bounded_channels --------------------------------------------------

fn rule_bounded_channels(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        if ctx.ident(i) != Some("channel") {
            continue;
        }
        // Method calls (`.channel()`) and import paths (`use ...::channel;`)
        // are not constructor calls.
        if ctx.punct(i.wrapping_sub(1)) == Some(".") {
            continue;
        }
        let after = skip_turbofish(ctx, i + 1);
        if ctx.punct(after) != Some("(") {
            continue;
        }
        if ctx.is_test_at(i) {
            continue;
        }
        out.push(ctx.violation(
            &RULES[2],
            ctx.tokens[i].line,
            "unbounded mpsc::channel() in a daemon module — use sync_channel with an explicit bound"
                .to_string(),
        ));
    }
}

// --- R4: join_or_detach ----------------------------------------------------

fn rule_join_or_detach(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        if ctx.ident(i) != Some("spawn") {
            continue;
        }
        let open = skip_turbofish(ctx, i + 1);
        if ctx.punct(open) != Some("(") {
            continue;
        }
        if ctx.is_test_at(i) {
            continue;
        }
        // Walk the method chain after the call; `.join()` anywhere in the
        // chain means the handle is consumed properly.
        let mut j = skip_call(ctx, open);
        let mut joined = false;
        while ctx.punct(j) == Some(".") {
            if let Some(m) = ctx.ident(j + 1) {
                if m == "join" {
                    joined = true;
                }
                let call_open = skip_turbofish(ctx, j + 2);
                if ctx.punct(call_open) == Some("(") {
                    j = skip_call(ctx, call_open);
                } else {
                    j += 2; // field access
                }
            } else {
                break;
            }
        }
        if joined || ctx.punct(j) == Some("?") || ctx.punct(j) != Some(";") {
            // Joined inline, propagated with `?` (caller owns the handle), or
            // the expression's value flows somewhere (argument, tail expr,
            // struct field, collection literal).
            continue;
        }
        // Statement ends in `;` — check whether the value was bound. Walk
        // back to the statement boundary; crossing an unmatched opener means
        // the spawn is nested inside a larger expression (value consumed).
        let mut k = i;
        let mut nested = false;
        let mut saw_let = false;
        let mut let_discard = false;
        let mut assigned = false;
        let mut returned = false;
        let mut depth = 0i32;
        while k > 0 {
            k -= 1;
            let t = &ctx.tokens[k];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth += 1,
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                    depth -= 1;
                    if depth < 0 {
                        nested = true;
                        break;
                    }
                }
                (TokKind::Punct, ";") | (TokKind::Punct, "{") | (TokKind::Punct, "}")
                    if depth == 0 =>
                {
                    break;
                }
                (TokKind::Punct, "=") if depth == 0 => assigned = true,
                (TokKind::Ident, "let") if depth == 0 => saw_let = true,
                (TokKind::Ident, "_") if depth == 0 => let_discard = true,
                (TokKind::Ident, "return") if depth == 0 => returned = true,
                _ => {}
            }
        }
        let kept = nested || returned || (assigned && !(saw_let && let_discard));
        if !kept {
            out.push(ctx.violation(
                &RULES[3],
                ctx.tokens[i].line,
                "spawn handle is discarded — keep and join it, or waive with an explicit detach reason"
                    .to_string(),
            ));
        }
    }
}

// --- R5: codec_symmetry ----------------------------------------------------

fn rule_codec_symmetry(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    // Pair encode_X with decode_X by suffix, within this file. Direct
    // put_*/get_* calls count whether written as methods (`w.put_u32(..)`)
    // or free helpers taking the writer (`put_len_u32(&mut w, ..)`); a
    // `len_` infix is stripped so length-writing helpers compare as the
    // integer they emit. Helpers that delegate entirely have empty
    // sequences and are skipped.
    let seq_of = |f: &FnInfo, prefix: &str| -> Vec<String> {
        let mut seq = Vec::new();
        for i in f.body_start..=f.body_end.min(ctx.tokens.len().saturating_sub(1)) {
            if let Some(name) = ctx.ident(i) {
                if let Some(suffix) = name.strip_prefix(prefix) {
                    let is_definition = ctx.ident(i.wrapping_sub(1)) == Some("fn");
                    if !suffix.is_empty() && !is_definition && ctx.punct(i + 1) == Some("(") {
                        let suffix = suffix.strip_prefix("len_").unwrap_or(suffix);
                        seq.push(suffix.to_string());
                    }
                }
            }
        }
        seq
    };
    for enc in ctx.fns.iter().filter(|f| !f.is_test) {
        let Some(suffix) = enc.name.strip_prefix("encode_") else {
            continue;
        };
        let dec_name = format!("decode_{suffix}");
        let Some(dec) = ctx.fns.iter().find(|f| f.name == dec_name && !f.is_test) else {
            continue;
        };
        let puts = seq_of(enc, "put_");
        let gets = seq_of(dec, "get_");
        if puts.is_empty() || gets.is_empty() {
            continue;
        }
        if puts != gets {
            out.push(ctx.violation(
                &RULES[4],
                dec.line,
                format!(
                    "codec drift: {} writes [{}] but {} reads [{}]",
                    enc.name,
                    puts.join(", "),
                    dec.name,
                    gets.join(", ")
                ),
            ));
        }
    }
}

// --- R6: bounded_retry -----------------------------------------------------

fn rule_bounded_retry(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    // A `loop` / `while` body that dials a connection (any `connect*` or
    // `*dial*` call) is a retry loop: it must reference a backoff or
    // deadline binding somewhere between the keyword and the closing
    // brace, or it will hammer a dead peer at full speed. `for` loops are
    // exempt — iterating a fixed endpoint list dials each peer once.
    let mut i = 0usize;
    while i < ctx.tokens.len() {
        let Some(kw) = ctx.ident(i) else {
            i += 1;
            continue;
        };
        if kw != "loop" && kw != "while" {
            i += 1;
            continue;
        }
        // The loop body's `{` is the first top-level brace after the
        // keyword; `(`/`[` groups in a `while` condition are skipped.
        let mut j = i + 1;
        let mut group = 0usize;
        let open = loop {
            match ctx.punct(j) {
                None if j >= ctx.tokens.len() => break None,
                Some("(") | Some("[") => group += 1,
                Some(")") | Some("]") => group = group.saturating_sub(1),
                Some("{") if group == 0 => break Some(j),
                Some(";") if group == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        while close < ctx.tokens.len() {
            match ctx.punct(close) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if !ctx.is_test_at(i) {
            let mut dial_at: Option<u32> = None;
            let mut bounded = false;
            for t in i..=close.min(ctx.tokens.len().saturating_sub(1)) {
                let Some(name) = ctx.ident(t) else { continue };
                if name.contains("backoff") || name.contains("deadline") {
                    bounded = true;
                } else if (name.starts_with("connect") || name.contains("dial"))
                    && ctx.punct(skip_turbofish(ctx, t + 1)) == Some("(")
                    && dial_at.is_none()
                {
                    dial_at = Some(ctx.tokens[t].line);
                }
            }
            if let (Some(line), false) = (dial_at, bounded) {
                out.push(ctx.violation(
                    &RULES[5],
                    line,
                    format!(
                        "`{kw}` body redials connections with no backoff/deadline bound — gate the redial or waive with a reason"
                    ),
                ));
            }
        }
        i = open + 1;
    }
}

// --- R7: failpoint_named ---------------------------------------------------

fn rule_failpoint_named(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    // Every failpoint reference — `failpoint::hit("site")` or the shardnet
    // `inject("site", peer)` wrapper — must name its site as a bare string
    // literal registered in `hpcutil::failpoint::SITES`. Literals keep the
    // registry greppable from a violation report; registry membership keeps
    // a `--failpoints` spec (validated against the same list) from naming a
    // site that nothing ever hits.
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if name != "hit" && name != "inject" {
            continue;
        }
        if ctx.punct(i + 1) != Some("(") {
            continue;
        }
        // `fn hit(..)` / `fn inject(..)` are definitions, not references.
        if ctx.ident(i.wrapping_sub(1)) == Some("fn") {
            continue;
        }
        if ctx.is_test_at(i) {
            continue;
        }
        let line = ctx.tokens[i].line;
        match ctx.tokens.get(i + 2) {
            Some(t) if t.kind == TokKind::Str => {
                let site = t.text.as_str();
                if !hpcutil::failpoint::SITES.contains(&site) {
                    out.push(ctx.violation(
                        &RULES[6],
                        line,
                        format!(
                            "unknown failpoint site {site:?} — register it in hpcutil::failpoint::SITES"
                        ),
                    ));
                }
            }
            _ => out.push(ctx.violation(
                &RULES[6],
                line,
                format!(
                    "{name}(..) takes a computed site name — failpoint sites must be bare string literals from hpcutil::failpoint::SITES"
                ),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking and reporting
// ---------------------------------------------------------------------------

pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.waived.is_none())
    }

    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    pub fn waived_count(&self) -> usize {
        self.violations.len() - self.unwaived_count()
    }

    /// Per-rule (unwaived, waived) counts in catalog order.
    pub fn per_rule(&self) -> Vec<(&'static RuleInfo, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let mut open = 0;
                let mut waived = 0;
                for v in &self.violations {
                    if v.rule.id == r.id {
                        if v.waived.is_some() {
                            waived += 1;
                        } else {
                            open += 1;
                        }
                    }
                }
                (r, open, waived)
            })
            .collect()
    }
}

/// Recursively collect `.rs` files under `crates/` of the workspace root,
/// skipping vendored shims, build output, and fixture trees.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace source under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rules_for_path(&rel).is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        files_scanned += 1;
        violations.extend(lint_source(&rel, &src).violations);
    }
    violations.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(Report {
        violations,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon_path() -> &'static str {
        "crates/fhc/src/shardnet/fixture.rs"
    }

    fn run(src: &str) -> Vec<Violation> {
        lint_source_with(daemon_path(), src, RuleSet::all()).violations
    }

    fn unwaived(src: &str) -> Vec<Violation> {
        run(src)
            .into_iter()
            .filter(|v| v.waived.is_none())
            .collect()
    }

    #[test]
    fn lexer_skips_comments_and_strings() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* nested */ block */
            fn f() {
                let s = "call .unwrap() here";
                let r = r#"panic!("in raw string")"#;
                let c = '"';
                let _ = (s, r, c);
            }
        "##;
        assert!(unwaived(src).is_empty());
    }

    #[test]
    fn lexer_counts_lines_through_string_continuations() {
        // A `\`-newline continuation inside a string literal still ends a
        // source line; miscounting it shifts every later violation line and
        // detaches standalone waivers from the code they cover.
        let src = "
            fn f() {
                let s = \"split \\
                         string\";
                let x = maybe().unwrap();
                let _ = (s, x);
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "no_panic");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn waiver_covers_a_method_call_on_its_own_line() {
        let src = "
            fn f() {
                maybe()
                    // fhc-lint: allow(no_panic) -- invariant: cannot fail on an empty registry
                    .expect(\"fresh state\");
            }
        ";
        let all = run(src);
        assert_eq!(all.len(), 1, "{all:?}");
        assert!(all[0].waived.is_some(), "{all:?}");
    }

    #[test]
    fn r1_flags_unwrap_in_non_test_code_only() {
        let src = "
            fn serve() { let x = maybe().unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn ok() { maybe().unwrap(); }
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "no_panic");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn r1_ignores_unwrap_or_else() {
        let src = "fn f() { lock().unwrap_or_else(|p| p.into_inner()); }";
        assert!(unwaived(src).is_empty());
    }

    #[test]
    fn waiver_suppresses_with_reason() {
        let src = "
            fn f() {
                // fhc-lint: allow(no_panic) -- invariant: poisoned lock recovered above
                let x = maybe().unwrap();
            }
        ";
        let all = run(src);
        assert_eq!(all.len(), 1);
        assert!(all[0].waived.is_some());
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "
            fn f() {
                // fhc-lint: allow(no_panic)
                let x = maybe().unwrap();
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 2, "{v:?}"); // malformed waiver + unwaived unwrap
        assert!(v.iter().any(|x| x.rule.name == "waiver_syntax"));
        assert!(v.iter().any(|x| x.rule.name == "no_panic"));
    }

    #[test]
    fn r2_requires_both_deadlines() {
        let src = "
            fn serve(listener: TcpListener) {
                for stream in listener.incoming() {
                    let s = stream?;
                    s.set_read_timeout(Some(T))?;
                }
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "socket_deadlines");
        assert!(v[0].message.contains("set_write_timeout"));
    }

    #[test]
    fn r3_flags_unbounded_channel_allows_sync() {
        let src = "
            fn f() {
                let (a, b) = channel::<Vec<u8>>();
                let (c, d) = mpsc::channel();
                let (e, g) = mpsc::sync_channel(8);
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule.name == "bounded_channels"));
    }

    #[test]
    fn r4_discarded_spawn_flagged_bound_spawn_ok() {
        let src = "
            fn bad() { std::thread::spawn(move || work()); }
            fn chained() { Builder::new().name(n).spawn(f).expect(m); }
            fn good() {
                let h = std::thread::spawn(move || work());
                h.join();
            }
            fn stored(v: &mut Vec<JoinHandle<()>>) { v.push(std::thread::spawn(f)); }
            fn inline() { std::thread::spawn(f).join(); }
        ";
        let v: Vec<_> = unwaived(src)
            .into_iter()
            .filter(|x| x.rule.name == "join_or_detach")
            .collect();
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn r5_mismatched_codec_pair_flagged() {
        let src = "
            fn encode_point(w: &mut W, p: &P) {
                w.put_u32(p.x);
                w.put_f64(p.y);
            }
            fn decode_point(r: &mut R) -> Result<P, E> {
                let y = r.get_f64()?;
                let x = r.get_u32()?;
                Ok(P { x, y })
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "codec_symmetry");
    }

    #[test]
    fn r5_matching_pair_with_loops_ok() {
        let src = "
            fn encode_cells(w: &mut W, cells: &[(u32, f64)]) {
                w.put_u32(cells.len() as u32);
                for (c, s) in cells {
                    w.put_u32(*c);
                    w.put_f64(*s);
                }
            }
            fn decode_cells(r: &mut R) -> Result<Vec<(u32, f64)>, E> {
                let n = r.get_u32()?;
                let mut out = Vec::new();
                for _ in 0..n {
                    out.push((r.get_u32()?, r.get_f64()?));
                }
                Ok(out)
            }
        ";
        assert!(unwaived(src).is_empty());
    }

    #[test]
    fn r6_hot_redial_loop_flagged() {
        let src = "
            fn redial(ep: &Endpoint) -> SplitConn {
                loop {
                    if let Ok(conn) = ep.connect_split() {
                        return conn;
                    }
                }
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "bounded_retry");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn r6_backoff_or_deadline_bound_ok() {
        let src = "
            fn redial(ep: &Endpoint, backoff: &BackoffPolicy) -> Result<SplitConn, E> {
                let mut failures = 0u32;
                loop {
                    match ep.connect_split() {
                        Ok(conn) => return Ok(conn),
                        Err(_) => {
                            failures += 1;
                            std::thread::sleep(backoff.delay_for(failures));
                        }
                    }
                }
            }
            fn poll(ep: &Endpoint, deadline: Instant) -> Result<SplitConn, E> {
                while Instant::now() < deadline {
                    if let Ok(conn) = ep.connect_split() {
                        return Ok(conn);
                    }
                }
                Err(E::Timeout)
            }
            fn sweep(eps: &[Endpoint]) {
                for ep in eps {
                    let _ = ep.connect_split();
                }
            }
            fn drain(rx: &Receiver<Job>) {
                while let Ok(job) = rx.recv() {
                    job.run();
                }
            }
        ";
        assert!(unwaived(src).is_empty());
    }

    #[test]
    fn r6_waiver_suppresses_with_reason() {
        let src = "
            fn redial(ep: &Endpoint) -> SplitConn {
                loop {
                    // fhc-lint: allow(bounded_retry) -- caller enforces an overall attempt budget
                    if let Ok(conn) = ep.connect_split() {
                        return conn;
                    }
                }
            }
        ";
        let all = run(src);
        assert_eq!(all.len(), 1, "{all:?}");
        assert!(all[0].waived.is_some());
    }

    #[test]
    fn r7_unknown_site_flagged_registered_site_ok() {
        let src = "
            fn probe() { let _ = crate::failpoint::hit(\"frame.read\"); }
            fn typo() { let _ = crate::failpoint::hit(\"frame.reed\"); }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule.name, "failpoint_named");
        assert!(v[0].message.contains("frame.reed"), "{}", v[0].message);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn r7_inject_wrapper_checked_like_hit() {
        let src = "
            fn fan_out(peer: &str) -> Result<(), NetError> {
                crate::shardnet::inject(\"fleet.hedge\", peer)?;
                crate::shardnet::inject(\"fleet.teleport\", peer)
            }
        ";
        let v = unwaived(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("fleet.teleport"));
    }

    #[test]
    fn r7_computed_site_name_flagged_and_waivable() {
        let src = "
            fn relay(site: &str) { let _ = hpcutil::failpoint::hit(site); }
            fn pass_through(site: &str) {
                // fhc-lint: allow(failpoint_named) -- pass-through helper; every caller's literal is checked
                let _ = hpcutil::failpoint::hit(site);
            }
        ";
        let all = run(src);
        assert_eq!(all.len(), 2, "{all:?}");
        let open: Vec<_> = all.iter().filter(|v| v.waived.is_none()).collect();
        assert_eq!(open.len(), 1, "{open:?}");
        assert!(open[0].message.contains("computed site name"));
    }

    #[test]
    fn r7_skips_definitions_and_test_code() {
        let src = "
            fn hit(site: &str) -> Option<Fault> { lookup(site) }
            #[cfg(test)]
            mod tests {
                #[test]
                fn dynamic() { let _ = crate::failpoint::hit(&format!(\"x{}\", 1)); }
            }
        ";
        assert!(unwaived(src).is_empty());
    }

    #[test]
    fn exempt_paths_have_no_rules() {
        assert!(rules_for_path("crates/fhc/tests/remote_serving.rs").is_empty());
        assert!(rules_for_path("crates/fhc/examples/demo.rs").is_empty());
        assert!(rules_for_path("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for_path("crates/fhc/benches/serving.rs").is_empty());
    }

    #[test]
    fn daemon_paths_get_full_rules() {
        let r = rules_for_path("crates/fhc/src/shardnet/mux_client.rs");
        assert!(r.no_panic && r.socket_deadlines && r.bounded_channels && r.bounded_retry);
        let r = rules_for_path("crates/hpcutil/src/mux.rs");
        assert!(r.no_panic && r.codec_symmetry);
        let r = rules_for_path("crates/hpcutil/src/codec.rs");
        assert!(!r.no_panic && r.codec_symmetry && !r.bounded_retry);
        let r = rules_for_path("crates/fhc/src/bin/fhc_shardd.rs");
        assert!(r.no_panic);
        assert!(rules_for_path("crates/fhc/src/serving.rs").is_empty());
    }
}
