//! fhc-lint CLI: walk the workspace (or explicit files) and report
//! violations of the shardnet review checklist. `--deny` turns unwaived
//! violations into a nonzero exit, which is how CI gates on it.

use std::path::PathBuf;
use std::process::ExitCode;

use fhclint::{lint_source, rules_for_path, Report, RULES};

const USAGE: &str = "usage: fhc-lint [--workspace] [--deny] [--list-rules] [paths...]

  --workspace   lint every crate source under the workspace root (default
                when no paths are given)
  --deny        exit nonzero when any unwaived violation remains
  --list-rules  print the rule catalog and exit
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut workspace = false;
    let mut list_rules = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fhc-lint: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    if list_rules {
        for rule in &RULES {
            println!("{:<3} {:<18} {}", rule.id, rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let report = if workspace || paths.is_empty() {
        let root = match workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("fhc-lint: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory)");
                return ExitCode::from(2);
            }
        };
        match fhclint::lint_workspace(&root) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("fhc-lint: workspace walk failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut violations = Vec::new();
        let mut files_scanned = 0usize;
        for path in &paths {
            let label = path.to_string_lossy().replace('\\', "/");
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(err) => {
                    eprintln!("fhc-lint: cannot read {label}: {err}");
                    return ExitCode::from(2);
                }
            };
            if rules_for_path(&label).is_empty() {
                continue;
            }
            files_scanned += 1;
            violations.extend(lint_source(&label, &src).violations);
        }
        Report {
            violations,
            files_scanned,
        }
    };

    for violation in &report.violations {
        if violation.waived.is_none() {
            println!("{violation}");
        }
    }
    for violation in &report.violations {
        if let Some(reason) = &violation.waived {
            println!("{violation} (reason: {reason})");
        }
    }

    println!();
    println!(
        "{:<3} {:<18} {:>10} {:>8}",
        "id", "rule", "violations", "waived"
    );
    for (rule, open, waived) in report.per_rule() {
        println!(
            "{:<3} {:<18} {:>10} {:>8}",
            rule.id, rule.name, open, waived
        );
    }
    println!(
        "\n{} file(s) scanned: {} violation(s), {} waiver(s)",
        report.files_scanned,
        report.unwaived_count(),
        report.waived_count()
    );

    if deny && report.unwaived_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Nearest ancestor of the current directory whose Cargo.toml declares a
/// `[workspace]` section.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
