//! Randomized (but fully deterministic) property tests for the fuzzy-hashing
//! engine. The build environment has no crates.io access, so instead of
//! `proptest` these tests drive the same properties with a seeded SplitMix64
//! generator over a fixed number of cases.

use ssdeep::{
    compare, compare_prepared, damerau_levenshtein, fuzzy_hash_bytes, levenshtein,
    weighted_edit_distance, FuzzyHash, PreparedHash,
};

/// SplitMix64 — the deterministic case generator for these tests.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, low: usize, high: usize) -> usize {
        low + (self.next() as usize) % (high - low)
    }

    /// Random bytes with length in `low..high`.
    fn bytes(&mut self, low: usize, high: usize) -> Vec<u8> {
        let len = self.range(low, high);
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// Random base64-alphabet string with length in `0..=max_len`.
    fn b64_string(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let len = self.range(0, max_len + 1);
        (0..len)
            .map(|_| ALPHABET[self.range(0, ALPHABET.len())] as char)
            .collect()
    }
}

/// Hashing is deterministic and the textual form round-trips.
#[test]
fn hash_roundtrips_through_text() {
    let mut g = Gen(1);
    for _ in 0..64 {
        let data = g.bytes(0, 20_000);
        let h = fuzzy_hash_bytes(&data);
        let text = h.to_string();
        let parsed: FuzzyHash = text.parse().expect("generated hash must parse");
        assert_eq!(parsed, h);
    }
}

/// Signature lengths never exceed the SSDeep bounds.
#[test]
fn signature_lengths_bounded() {
    let mut g = Gen(2);
    for _ in 0..64 {
        let data = g.bytes(0, 50_000);
        let h = fuzzy_hash_bytes(&data);
        assert!(h.signature().len() <= ssdeep::SPAM_SUM_LENGTH);
        assert!(h.signature_double().len() <= ssdeep::SPAM_SUM_LENGTH / 2);
        assert!(h.block_size() >= 3);
    }
}

/// Self-comparison of a non-trivial input is the maximum score and every
/// comparison stays within 0..=100.
#[test]
fn self_similarity_is_max() {
    let mut g = Gen(3);
    for _ in 0..64 {
        let data = g.bytes(2_000, 20_000);
        let h = fuzzy_hash_bytes(&data);
        let s = compare(&h, &h);
        assert!(s <= 100);
        // Inputs this long always produce signatures >= 7 chars unless the
        // data is pathologically uniform; allow the capped case.
        if h.signature().len() >= 7 {
            assert_eq!(s, 100);
        }
    }
}

/// Comparison is symmetric.
#[test]
fn comparison_symmetric() {
    let mut g = Gen(4);
    for _ in 0..64 {
        let a = g.bytes(0, 15_000);
        let b = g.bytes(0, 15_000);
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(&b);
        assert_eq!(compare(&ha, &hb), compare(&hb, &ha));
    }
}

/// Levenshtein axioms: identity, symmetry, bounded by max length, Damerau
/// never exceeds Levenshtein, weighted never below Levenshtein.
#[test]
fn edit_distance_axioms() {
    let mut g = Gen(5);
    for _ in 0..128 {
        let a = g.b64_string(48);
        let b = g.b64_string(48);
        let lev = levenshtein(&a, &b);
        let dl = damerau_levenshtein(&a, &b);
        let w = weighted_edit_distance(&a, &b);
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        assert!(lev <= a.len().max(b.len()));
        assert!(dl <= lev);
        assert!(w >= lev);
        assert!(w <= a.len() + b.len());
        assert_eq!(dl == 0, a == b);
    }
}

/// `compare_prepared` is score-identical to `compare` on random hash pairs:
/// real generated hashes (some sharing content so block sizes collide or
/// differ by a factor of two) and fabricated hashes with random signatures
/// and random — including tiny and enormous — block sizes.
#[test]
fn prepared_comparison_equals_plain_comparison() {
    let mut g = Gen(7);
    let mut hashes: Vec<FuzzyHash> = Vec::new();
    for _ in 0..24 {
        let base = g.bytes(500, 30_000);
        hashes.push(fuzzy_hash_bytes(&base));
        // A mutated copy: often the same or a neighboring block size.
        let mut variant = base.clone();
        let start = g.range(0, variant.len().max(2) - 1);
        let span = g.range(1, 1 + variant.len() / 8);
        for byte in variant.iter_mut().skip(start).take(span) {
            *byte ^= 0xA7;
        }
        hashes.push(fuzzy_hash_bytes(&variant));
    }
    for _ in 0..24 {
        let block_size = match g.range(0, 4) {
            0 => 3 << g.range(0, 8),
            1 => g.next().max(1),
            2 => u64::MAX - g.range(0, 3) as u64,
            _ => 3,
        };
        let sig1 = g.b64_string(64);
        let sig2 = g.b64_string(32);
        hashes.push(FuzzyHash::from_parts(block_size, sig1, sig2).expect("valid parts"));
    }

    let prepared: Vec<PreparedHash> = hashes.iter().map(PreparedHash::new).collect();
    for (ha, pa) in hashes.iter().zip(&prepared) {
        for (hb, pb) in hashes.iter().zip(&prepared) {
            assert_eq!(
                compare(ha, hb),
                compare_prepared(pa, pb),
                "prepared comparison diverged for {ha} vs {hb}"
            );
        }
    }
}

/// Appending a small suffix to a large input keeps the block size comparable
/// and the comparison bounded.
#[test]
fn append_small_suffix_bounded() {
    let mut g = Gen(6);
    for _ in 0..64 {
        let data = g.bytes(5_000, 30_000);
        let suffix = g.bytes(0, 64);
        let mut extended = data.clone();
        extended.extend_from_slice(&suffix);
        let ha = fuzzy_hash_bytes(&data);
        let hb = fuzzy_hash_bytes(&extended);
        let s = compare(&ha, &hb);
        assert!(s <= 100);
    }
}

/// The bounded kernel is byte-identical to the oracle DP for *every* limit:
/// random base64 signatures of lengths 0..=64 (run-eliminated signature
/// territory), exact below the limit, `AtLeast(limit + 1)` above it.
#[test]
fn bounded_distance_equals_oracle_for_every_limit() {
    use ssdeep::{weighted_edit_distance_bounded, BoundedDistance};
    let mut g = Gen(8);
    for _ in 0..96 {
        let a = g.b64_string(64);
        let b = g.b64_string(64);
        let oracle = weighted_edit_distance(&a, &b);
        for limit in 0..=(a.len() + b.len() + 1) {
            match weighted_edit_distance_bounded(&a, &b, limit) {
                BoundedDistance::Exact(d) => {
                    assert_eq!(d, oracle, "exact mismatch for {a:?} vs {b:?} at {limit}");
                    assert!(d <= limit);
                }
                BoundedDistance::AtLeast(floor) => {
                    assert_eq!(floor, limit + 1);
                    assert!(
                        oracle > limit,
                        "spurious rejection of {a:?} vs {b:?} at {limit}"
                    );
                }
            }
        }
    }
}

/// The bit-parallel Damerau distance is exact against the row DP, and is a
/// lower bound on the weighted distance (which is what licenses it as a
/// pre-DP rejection filter).
#[test]
fn bitparallel_damerau_is_exact_and_a_lower_bound() {
    use ssdeep::damerau_levenshtein_bitparallel;
    let mut g = Gen(9);
    for _ in 0..256 {
        let a = g.b64_string(64);
        let b = g.b64_string(64);
        let bp = damerau_levenshtein_bitparallel(&a, &b).expect("<=64-char strings fit one word");
        assert_eq!(bp, damerau_levenshtein(&a, &b), "{a:?} vs {b:?}");
        assert!(bp <= weighted_edit_distance(&a, &b), "{a:?} vs {b:?}");
    }
}

/// Transposition-heavy pairs: swapping adjacent characters is the case
/// where a naive one-row band cutoff would be unsound (a transposition can
/// hop a row), so hammer exactly that shape.
#[test]
fn bounded_distance_handles_transposition_heavy_pairs() {
    use ssdeep::{weighted_edit_distance_bounded, BoundedDistance};
    let mut g = Gen(10);
    for _ in 0..64 {
        let a = g.b64_string(64);
        let mut chars: Vec<char> = a.chars().collect();
        // Swap a random subset of disjoint adjacent pairs.
        let mut i = 0;
        while i + 1 < chars.len() {
            if g.range(0, 2) == 0 {
                chars.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        let b: String = chars.into_iter().collect();
        let oracle = weighted_edit_distance(&a, &b);
        for limit in [0, 1, oracle.saturating_sub(1), oracle, oracle + 1, 128] {
            match weighted_edit_distance_bounded(&a, &b, limit) {
                BoundedDistance::Exact(d) => assert_eq!(d, oracle),
                BoundedDistance::AtLeast(floor) => {
                    assert_eq!(floor, limit + 1);
                    assert!(oracle > limit);
                }
            }
        }
    }
}

/// Run-collapse edge cases: `eliminate_long_runs` borrows when nothing
/// collapses, collapses runs to three otherwise, and round-trips non-ASCII
/// input byte-correctly (the old byte-as-char loop corrupted it).
#[test]
fn eliminate_long_runs_properties() {
    use ssdeep::compare::eliminate_long_runs;
    let mut g = Gen(11);
    for _ in 0..256 {
        // Low-alphabet strings maximize run frequency.
        let len = g.range(0, 80);
        let s: String = (0..len)
            .map(|_| (b'A' + (g.next() % 3) as u8) as char)
            .collect();
        let out = eliminate_long_runs(&s);
        // No run longer than three survives…
        let bytes = out.as_bytes();
        for w in bytes.windows(4) {
            assert!(
                !(w[0] == w[1] && w[1] == w[2] && w[2] == w[3]),
                "run survived in {out:?} from {s:?}"
            );
        }
        // …the output is a subsequence of the input…
        let mut it = s.bytes();
        for b in bytes {
            assert!(it.any(|c| c == *b), "not a subsequence: {out:?} from {s:?}");
        }
        // …and borrowing happens exactly when nothing collapsed.
        match &out {
            std::borrow::Cow::Borrowed(_) => assert_eq!(out.as_ref(), s),
            std::borrow::Cow::Owned(o) => assert!(o.len() < s.len()),
        }
    }
    // Non-ASCII input survives byte-correctly (multi-byte chars cannot form
    // >3-byte runs, so nothing may be collapsed or corrupted here).
    for s in ["péché", "ÿÿÿÿ", "\u{3FFFF}\u{3FFFF}", "aàaàaà"] {
        assert_eq!(eliminate_long_runs(s), s, "non-ASCII corrupted");
    }
    // ASCII runs inside otherwise non-ASCII strings still collapse.
    assert_eq!(eliminate_long_runs("éAAAAAé"), "éAAAé");
}

/// The score-budget comparison is exact at or above its budget and never
/// overshoots below it, for every budget, on random prepared pairs.
#[test]
fn compare_prepared_min_respects_its_contract() {
    use ssdeep::compare_prepared_min;
    let mut g = Gen(12);
    let mut hashes: Vec<FuzzyHash> = Vec::new();
    for _ in 0..12 {
        let base = g.bytes(500, 20_000);
        hashes.push(fuzzy_hash_bytes(&base));
        let mut variant = base;
        let start = g.range(0, variant.len().max(2) - 1);
        for byte in variant.iter_mut().skip(start).take(200) {
            *byte ^= 0x3C;
        }
        hashes.push(fuzzy_hash_bytes(&variant));
    }
    for _ in 0..12 {
        let block_size = [3u64, 96, 3072, u64::MAX][g.range(0, 4)];
        let sig1 = g.b64_string(64);
        let sig2 = g.b64_string(32);
        hashes.push(FuzzyHash::from_parts(block_size, sig1, sig2).expect("valid parts"));
    }
    let prepared: Vec<PreparedHash> = hashes.iter().map(PreparedHash::new).collect();
    for pa in &prepared {
        for pb in &prepared {
            let exact = compare_prepared(pa, pb);
            for min_score in [0u32, 1, exact.saturating_sub(1), exact, exact + 1, 100, 101] {
                let got = compare_prepared_min(pa, pb, min_score);
                if exact >= min_score {
                    assert_eq!(got, exact, "budget {min_score} lost an exact score");
                } else {
                    assert!(got <= exact, "budget {min_score} overshot: {got} > {exact}");
                }
            }
        }
    }
}
