//! Property-based tests for the fuzzy-hashing engine.

use proptest::prelude::*;
use ssdeep::{
    compare, damerau_levenshtein, fuzzy_hash_bytes, levenshtein, weighted_edit_distance, FuzzyHash,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hashing is deterministic and the textual form round-trips.
    #[test]
    fn hash_roundtrips_through_text(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let h = fuzzy_hash_bytes(&data);
        let text = h.to_string();
        let parsed: FuzzyHash = text.parse().expect("generated hash must parse");
        prop_assert_eq!(parsed, h);
    }

    /// Signature lengths never exceed the SSDeep bounds.
    #[test]
    fn signature_lengths_bounded(data in proptest::collection::vec(any::<u8>(), 0..50_000)) {
        let h = fuzzy_hash_bytes(&data);
        prop_assert!(h.signature().len() <= ssdeep::SPAM_SUM_LENGTH);
        prop_assert!(h.signature_double().len() <= ssdeep::SPAM_SUM_LENGTH / 2);
        prop_assert!(h.block_size() >= 3);
    }

    /// Self-comparison of a non-trivial input is the maximum score and every
    /// comparison stays within 0..=100.
    #[test]
    fn self_similarity_is_max(data in proptest::collection::vec(any::<u8>(), 2_000..20_000)) {
        let h = fuzzy_hash_bytes(&data);
        let s = compare(&h, &h);
        prop_assert!(s <= 100);
        // Inputs this long always produce signatures >= 7 chars unless the
        // data is pathologically uniform; allow the capped case.
        if h.signature().len() >= 7 {
            prop_assert_eq!(s, 100);
        }
    }

    /// Comparison is symmetric.
    #[test]
    fn comparison_symmetric(
        a in proptest::collection::vec(any::<u8>(), 0..15_000),
        b in proptest::collection::vec(any::<u8>(), 0..15_000),
    ) {
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(&b);
        prop_assert_eq!(compare(&ha, &hb), compare(&hb, &ha));
    }

    /// Levenshtein axioms: identity, symmetry, bounded by max length,
    /// Damerau never exceeds Levenshtein, weighted never below Levenshtein.
    #[test]
    fn edit_distance_axioms(a in "[A-Za-z0-9+/]{0,48}", b in "[A-Za-z0-9+/]{0,48}") {
        let lev = levenshtein(&a, &b);
        let dl = damerau_levenshtein(&a, &b);
        let w = weighted_edit_distance(&a, &b);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(lev <= a.len().max(b.len()));
        prop_assert!(dl <= lev);
        prop_assert!(w >= lev);
        prop_assert!(w <= a.len() + b.len());
        prop_assert_eq!(dl == 0, a == b);
    }

    /// Appending a small suffix to a large input keeps the block size
    /// comparable and the comparison bounded.
    #[test]
    fn append_small_suffix_bounded(
        data in proptest::collection::vec(any::<u8>(), 5_000..30_000),
        suffix in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut extended = data.clone();
        extended.extend_from_slice(&suffix);
        let ha = fuzzy_hash_bytes(&data);
        let hb = fuzzy_hash_bytes(&extended);
        let s = compare(&ha, &hb);
        prop_assert!(s <= 100);
    }
}
