//! Randomized (but fully deterministic) property tests for the fuzzy-hashing
//! engine. The build environment has no crates.io access, so instead of
//! `proptest` these tests drive the same properties with a seeded SplitMix64
//! generator over a fixed number of cases.

use ssdeep::{
    compare, compare_prepared, damerau_levenshtein, fuzzy_hash_bytes, levenshtein,
    weighted_edit_distance, FuzzyHash, PreparedHash,
};

/// SplitMix64 — the deterministic case generator for these tests.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, low: usize, high: usize) -> usize {
        low + (self.next() as usize) % (high - low)
    }

    /// Random bytes with length in `low..high`.
    fn bytes(&mut self, low: usize, high: usize) -> Vec<u8> {
        let len = self.range(low, high);
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// Random base64-alphabet string with length in `0..=max_len`.
    fn b64_string(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let len = self.range(0, max_len + 1);
        (0..len)
            .map(|_| ALPHABET[self.range(0, ALPHABET.len())] as char)
            .collect()
    }
}

/// Hashing is deterministic and the textual form round-trips.
#[test]
fn hash_roundtrips_through_text() {
    let mut g = Gen(1);
    for _ in 0..64 {
        let data = g.bytes(0, 20_000);
        let h = fuzzy_hash_bytes(&data);
        let text = h.to_string();
        let parsed: FuzzyHash = text.parse().expect("generated hash must parse");
        assert_eq!(parsed, h);
    }
}

/// Signature lengths never exceed the SSDeep bounds.
#[test]
fn signature_lengths_bounded() {
    let mut g = Gen(2);
    for _ in 0..64 {
        let data = g.bytes(0, 50_000);
        let h = fuzzy_hash_bytes(&data);
        assert!(h.signature().len() <= ssdeep::SPAM_SUM_LENGTH);
        assert!(h.signature_double().len() <= ssdeep::SPAM_SUM_LENGTH / 2);
        assert!(h.block_size() >= 3);
    }
}

/// Self-comparison of a non-trivial input is the maximum score and every
/// comparison stays within 0..=100.
#[test]
fn self_similarity_is_max() {
    let mut g = Gen(3);
    for _ in 0..64 {
        let data = g.bytes(2_000, 20_000);
        let h = fuzzy_hash_bytes(&data);
        let s = compare(&h, &h);
        assert!(s <= 100);
        // Inputs this long always produce signatures >= 7 chars unless the
        // data is pathologically uniform; allow the capped case.
        if h.signature().len() >= 7 {
            assert_eq!(s, 100);
        }
    }
}

/// Comparison is symmetric.
#[test]
fn comparison_symmetric() {
    let mut g = Gen(4);
    for _ in 0..64 {
        let a = g.bytes(0, 15_000);
        let b = g.bytes(0, 15_000);
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(&b);
        assert_eq!(compare(&ha, &hb), compare(&hb, &ha));
    }
}

/// Levenshtein axioms: identity, symmetry, bounded by max length, Damerau
/// never exceeds Levenshtein, weighted never below Levenshtein.
#[test]
fn edit_distance_axioms() {
    let mut g = Gen(5);
    for _ in 0..128 {
        let a = g.b64_string(48);
        let b = g.b64_string(48);
        let lev = levenshtein(&a, &b);
        let dl = damerau_levenshtein(&a, &b);
        let w = weighted_edit_distance(&a, &b);
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        assert!(lev <= a.len().max(b.len()));
        assert!(dl <= lev);
        assert!(w >= lev);
        assert!(w <= a.len() + b.len());
        assert_eq!(dl == 0, a == b);
    }
}

/// `compare_prepared` is score-identical to `compare` on random hash pairs:
/// real generated hashes (some sharing content so block sizes collide or
/// differ by a factor of two) and fabricated hashes with random signatures
/// and random — including tiny and enormous — block sizes.
#[test]
fn prepared_comparison_equals_plain_comparison() {
    let mut g = Gen(7);
    let mut hashes: Vec<FuzzyHash> = Vec::new();
    for _ in 0..24 {
        let base = g.bytes(500, 30_000);
        hashes.push(fuzzy_hash_bytes(&base));
        // A mutated copy: often the same or a neighboring block size.
        let mut variant = base.clone();
        let start = g.range(0, variant.len().max(2) - 1);
        let span = g.range(1, 1 + variant.len() / 8);
        for byte in variant.iter_mut().skip(start).take(span) {
            *byte ^= 0xA7;
        }
        hashes.push(fuzzy_hash_bytes(&variant));
    }
    for _ in 0..24 {
        let block_size = match g.range(0, 4) {
            0 => 3 << g.range(0, 8),
            1 => g.next().max(1),
            2 => u64::MAX - g.range(0, 3) as u64,
            _ => 3,
        };
        let sig1 = g.b64_string(64);
        let sig2 = g.b64_string(32);
        hashes.push(FuzzyHash::from_parts(block_size, sig1, sig2).expect("valid parts"));
    }

    let prepared: Vec<PreparedHash> = hashes.iter().map(PreparedHash::new).collect();
    for (ha, pa) in hashes.iter().zip(&prepared) {
        for (hb, pb) in hashes.iter().zip(&prepared) {
            assert_eq!(
                compare(ha, hb),
                compare_prepared(pa, pb),
                "prepared comparison diverged for {ha} vs {hb}"
            );
        }
    }
}

/// Appending a small suffix to a large input keeps the block size comparable
/// and the comparison bounded.
#[test]
fn append_small_suffix_bounded() {
    let mut g = Gen(6);
    for _ in 0..64 {
        let data = g.bytes(5_000, 30_000);
        let suffix = g.bytes(0, 64);
        let mut extended = data.clone();
        extended.extend_from_slice(&suffix);
        let ha = fuzzy_hash_bytes(&data);
        let hb = fuzzy_hash_bytes(&extended);
        let s = compare(&ha, &hb);
        assert!(s <= 100);
    }
}
