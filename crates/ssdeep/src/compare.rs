//! Scoring the similarity of two fuzzy hashes on the 0–100 scale.
//!
//! Following SSDeep, two hashes are compared by:
//!
//! 1. Checking block-size compatibility (equal or factor-of-two).
//! 2. Collapsing runs of more than three identical characters in each
//!    signature (long runs carry almost no information and would otherwise
//!    inflate similarity).
//! 3. Requiring a common substring of at least
//!    [`MIN_COMMON_SUBSTRING`] characters — without one the score is 0,
//!    which suppresses coincidental low-level matches.
//! 4. Computing the weighted Damerau–Levenshtein distance
//!    ([`weighted_edit_distance`])
//!    between the matching-block-size signatures and scaling it to 0–100,
//!    where 100 means identical signatures.
//! 5. Capping the score for very small block sizes, where short inputs can
//!    produce spuriously confident matches.

use crate::blocksize::MIN_BLOCKSIZE;
use crate::edit_distance::weighted_edit_distance;
use crate::generate::{FuzzyHash, SPAM_SUM_LENGTH};
use std::borrow::Cow;

/// Minimum length of a common substring required for a non-zero score
/// (equal to the rolling-hash window length, as in SSDeep).
pub const MIN_COMMON_SUBSTRING: usize = 7;

/// Collapse runs of more than three identical characters down to three.
///
/// Sequences like `AAAAAAA` arise from large homogeneous regions (e.g.
/// zero-padding in executables) and carry little identity information.
///
/// Returns the input unchanged (borrowed, no allocation) when no run is
/// collapsed — the common case on the scoring hot path. The output is built
/// as bytes and converted once: the old per-byte `push(b as char)` loop
/// reinterpreted each byte as a Unicode scalar, so non-ASCII input
/// round-tripped wrongly (each byte `>= 0x80` became a two-byte char).
pub fn eliminate_long_runs(sig: &str) -> Cow<'_, str> {
    let bytes = sig.as_bytes();
    // Scan for the first byte that extends a run past three.
    let mut run_len = 0usize;
    let mut prev = None;
    let mut first_excess = None;
    for (i, &b) in bytes.iter().enumerate() {
        if Some(b) == prev {
            run_len += 1;
            if run_len > 3 {
                first_excess = Some(i);
                break;
            }
        } else {
            prev = Some(b);
            run_len = 1;
        }
    }
    let Some(start) = first_excess else {
        return Cow::Borrowed(sig);
    };
    // Copy the clean prefix, then keep filtering from the overflow point.
    let mut out = Vec::with_capacity(bytes.len() - 1);
    out.extend_from_slice(&bytes[..start]);
    let mut run_len = 4usize; // bytes[start] is the 4th of its run: dropped
    let mut run_byte = bytes[start];
    for &b in &bytes[start + 1..] {
        if b == run_byte {
            run_len += 1;
        } else {
            run_byte = b;
            run_len = 1;
        }
        if run_len <= 3 {
            out.push(b);
        }
    }
    // Only whole bytes of a >3-run are dropped, and in valid UTF-8 such a
    // run is always ASCII: identical lead bytes cannot be adjacent (a lead
    // is followed by continuations), and a char carries at most three
    // identical continuation bytes, which the next char's lead terminates.
    Cow::Owned(String::from_utf8(out).expect("collapsing ASCII runs preserves UTF-8"))
}

/// Pack one [`MIN_COMMON_SUBSTRING`]-byte window into a `u64` key (base64
/// characters are 7-bit, so 7 bytes fit in 56 bits).
#[inline]
pub(crate) fn pack_window(window: &[u8]) -> u64 {
    let mut v = 0u64;
    for &byte in window {
        v = (v << 8) | u64::from(byte);
    }
    v
}

/// The sorted packed 7-byte window keys of `bytes` (empty when the input is
/// shorter than [`MIN_COMMON_SUBSTRING`]). Two strings share a common
/// substring of length [`MIN_COMMON_SUBSTRING`] iff their key sets intersect.
pub(crate) fn window_keys(bytes: &[u8]) -> Vec<u64> {
    if bytes.len() < MIN_COMMON_SUBSTRING {
        return Vec::new();
    }
    let mut keys: Vec<u64> = bytes
        .windows(MIN_COMMON_SUBSTRING)
        .map(pack_window)
        .collect();
    keys.sort_unstable();
    keys
}

/// Whether `a` and `b` share a common substring of length at least
/// [`MIN_COMMON_SUBSTRING`].
///
/// This check runs for every candidate pair in the similarity feature
/// matrix (millions of times per experiment), and most pairs fail it, so it
/// is the hot path of the whole classifier. Each 7-byte window fits in a
/// `u64` (base64 characters are 7-bit), so the windows of the shorter string
/// are packed and sorted once and the other string's windows are found by
/// binary search — far cheaper than the quadratic slice comparison.
///
/// Signatures produced by this crate are at most
/// [`SPAM_SUM_LENGTH`] characters, so their windows
/// fit a stack buffer; arbitrary caller-supplied strings of any length fall
/// back to a heap buffer instead of panicking.
pub fn has_common_substring(a: &str, b: &str) -> bool {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.len() < MIN_COMMON_SUBSTRING || b.len() < MIN_COMMON_SUBSTRING {
        return false;
    }
    // Pack the shorter string's windows (at most 58 for real signatures) on
    // the stack; longer inputs spill to the heap.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let n = short.len() - MIN_COMMON_SUBSTRING + 1;
    let mut stack = [0u64; crate::generate::SPAM_SUM_LENGTH];
    let mut heap: Vec<u64> = Vec::new();
    let keys: &mut [u64] = if n <= stack.len() {
        &mut stack[..n]
    } else {
        heap.resize(n, 0);
        &mut heap
    };
    for (i, key) in keys.iter_mut().enumerate() {
        *key = pack_window(&short[i..i + MIN_COMMON_SUBSTRING]);
    }
    keys.sort_unstable();
    long.windows(MIN_COMMON_SUBSTRING)
        .any(|w| keys.binary_search(&pack_window(w)).is_ok())
}

/// Scale a weighted edit distance between two run-eliminated signatures of
/// lengths `len1` and `len2` onto the 0–100 similarity scale, applying the
/// small-block-size cap. Shared by [`score_strings`] and the precomputed
/// [`compare_prepared`](crate::prepared::compare_prepared) path so the two
/// stay byte-identical. Monotone non-increasing in `dist`, which is what
/// makes the [`max_distance_for_score`] inverse (and therefore score-budget
/// pruning) exact.
///
/// A weighted edit distance never exceeds `len1 + len2`, so `dist` is
/// clamped to that range; two empty signatures (which the scoring paths
/// reject before scaling) score 0.
pub fn scale_score(dist: u64, len1: u64, len2: u64, block_size: u64) -> u32 {
    let total = len1.saturating_add(len2);
    if total == 0 {
        return 0;
    }
    let dist = dist.min(total);
    // Scale the distance by the signature lengths onto 0..=100, mirroring
    // spamsum: first rescale to a "proportional" distance relative to
    // SPAM_SUM_LENGTH, then convert to a similarity. The multiplication
    // saturates only for absurd (> 2^57-byte) caller-supplied lengths,
    // where the score is 0 either way.
    let mut score = dist.saturating_mul(SPAM_SUM_LENGTH as u64) / total;
    score = (100 * score) / (SPAM_SUM_LENGTH as u64);
    let mut score = 100u64.saturating_sub(score);

    // For small block sizes, cap the score: short, low-entropy inputs can
    // otherwise look deceptively similar. The cap is only computed inside the
    // branch so a huge caller-supplied block size cannot overflow the
    // multiplication.
    if block_size < 99 * MIN_BLOCKSIZE {
        let cap = (block_size / MIN_BLOCKSIZE) * len1.min(len2);
        if score > cap {
            score = cap;
        }
    }
    score.min(100) as u32
}

/// The inverse of [`scale_score`]: the largest weighted edit distance that
/// still scales to a similarity of at least `min_score` for run-eliminated
/// signature lengths `len1`/`len2` under `block_size` — or `None` when no
/// distance can reach `min_score` (the small-block-size cap alone rules it
/// out, or `min_score > 100`).
///
/// This is what turns a *score* budget into a *distance* budget: a caller
/// that only cares about comparisons beating some running maximum `s` can
/// bound the edit-distance DP at `max_distance_for_score(s + 1, ..)` and
/// abandon the table the moment the bound is exceeded
/// ([`crate::fastdist::weighted_edit_distance_bounded`]), without ever
/// changing a reported score. `scale_score` is monotone non-increasing in
/// the distance, so the inverse is found by binary search over
/// `0..=len1+len2` (the range of possible weighted distances) with
/// `scale_score` itself as the oracle — exact by construction, immune to
/// the scaling's floor-division subtleties.
///
/// # Examples
///
/// ```
/// use ssdeep::compare::{max_distance_for_score, scale_score};
/// let budget = max_distance_for_score(80, 60, 60, 3072).unwrap();
/// assert!(scale_score(budget, 60, 60, 3072) >= 80);
/// assert!(scale_score(budget + 1, 60, 60, 3072) < 80);
/// // A tiny block size caps scores below 100: no distance reaches it.
/// assert_eq!(max_distance_for_score(100, 8, 8, 3), None);
/// ```
pub fn max_distance_for_score(
    min_score: u32,
    len1: u64,
    len2: u64,
    block_size: u64,
) -> Option<u64> {
    let max_dist = len1.saturating_add(len2);
    if min_score == 0 {
        // Every comparison scores at least 0.
        return Some(max_dist);
    }
    if min_score > 100 || scale_score(0, len1, len2, block_size) < min_score {
        return None;
    }
    let (mut lo, mut hi) = (0u64, max_dist);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if scale_score(mid, len1, len2, block_size) >= min_score {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Score two signatures that were generated with the same block size.
///
/// Returns 0–100. `block_size` is used only for the small-block-size cap.
pub fn score_strings(s1: &str, s2: &str, block_size: u64) -> u32 {
    let s1 = eliminate_long_runs(s1);
    let s2 = eliminate_long_runs(s2);
    if s1.is_empty() || s2.is_empty() {
        return 0;
    }
    if !has_common_substring(&s1, &s2) {
        return 0;
    }
    let dist = weighted_edit_distance(&s1, &s2) as u64;
    scale_score(dist, s1.len() as u64, s2.len() as u64, block_size)
}

/// Compare two fuzzy hashes and return a similarity score in `0..=100`.
///
/// Returns 0 when the block sizes are not comparable (neither equal nor a
/// factor of two apart).
///
/// # Examples
///
/// ```
/// use ssdeep::{fuzzy_hash_bytes, compare};
/// let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
/// let same = compare(&fuzzy_hash_bytes(&data), &fuzzy_hash_bytes(&data));
/// assert_eq!(same, 100);
/// ```
pub fn compare(a: &FuzzyHash, b: &FuzzyHash) -> u32 {
    let b1 = a.block_size();
    let b2 = b.block_size();

    if b1 == b2 && a.signature() == b.signature() && a.signature_double() == b.signature_double() {
        // Identical hashes of non-trivial inputs are a perfect match; for
        // extremely short signatures fall through to the scoring (which caps
        // low-information matches).
        if a.signature().len() >= MIN_COMMON_SUBSTRING {
            return 100;
        }
    }

    if b1 == b2 {
        // The double-signature block size can overflow for adversarial
        // `from_parts` inputs near `u64::MAX`; saturating is score-identical
        // because any block size that large skips the small-block-size cap.
        let s1 = score_strings(a.signature(), b.signature(), b1);
        let s2 = score_strings(
            a.signature_double(),
            b.signature_double(),
            b1.saturating_mul(2),
        );
        s1.max(s2)
    } else if b2.checked_mul(2) == Some(b1) {
        // a's primary block size equals b's double block size.
        score_strings(a.signature(), b.signature_double(), b1)
    } else if b1.checked_mul(2) == Some(b2) {
        score_strings(a.signature_double(), b.signature(), b2)
    } else {
        0
    }
}

/// Convenience wrapper: parse two textual hashes and compare them.
///
/// Returns `None` if either string fails to parse.
pub fn compare_strings(a: &str, b: &str) -> Option<u32> {
    let ha: FuzzyHash = a.parse().ok()?;
    let hb: FuzzyHash = b.parse().ok()?;
    Some(compare(&ha, &hb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::fuzzy_hash_bytes;

    fn patterned(len: usize, stride: u64) -> Vec<u8> {
        (0..len as u64)
            .map(|i| ((i * stride + i / 11) % 249) as u8)
            .collect()
    }

    #[test]
    fn identical_inputs_score_100() {
        let d = patterned(80_000, 17);
        let h = fuzzy_hash_bytes(&d);
        assert_eq!(compare(&h, &h), 100);
    }

    #[test]
    fn unrelated_inputs_score_low() {
        let a = fuzzy_hash_bytes(&patterned(60_000, 17));
        let b = fuzzy_hash_bytes(&patterned(60_000, 101));
        assert!(compare(&a, &b) < 40, "got {}", compare(&a, &b));
    }

    #[test]
    fn similar_inputs_score_between() {
        // A realistic "new version" edit: one contiguous region changes while
        // the rest of the file stays identical. Scattering single-byte edits
        // into every chunk would (correctly) destroy CTPH similarity, so the
        // edit here is localized, as code changes in executables are.
        let base = patterned(100_000, 17);
        let mut variant = base.clone();
        for item in variant.iter_mut().skip(48_000).take(2_000) {
            *item ^= 0x5A;
        }
        let ha = fuzzy_hash_bytes(&base);
        let hb = fuzzy_hash_bytes(&variant);
        let s = compare(&ha, &hb);
        assert!(s > 40, "modified copy should still look similar, got {s}");
        assert!(s <= 100);
    }

    #[test]
    fn comparison_is_symmetric() {
        let a = fuzzy_hash_bytes(&patterned(70_000, 13));
        let b = fuzzy_hash_bytes(&patterned(70_000, 19));
        assert_eq!(compare(&a, &b), compare(&b, &a));
    }

    #[test]
    fn incompatible_block_sizes_score_zero() {
        let a = FuzzyHash::from_parts(3, "ABCDEFGHIJKL".into(), "ABCDEF".into()).unwrap();
        let b = FuzzyHash::from_parts(48, "ABCDEFGHIJKL".into(), "ABCDEF".into()).unwrap();
        assert_eq!(compare(&a, &b), 0);
    }

    #[test]
    fn eliminate_long_runs_collapses() {
        assert_eq!(eliminate_long_runs("AAAAAABBBCC"), "AAABBBCC");
        assert_eq!(eliminate_long_runs(""), "");
        assert_eq!(eliminate_long_runs("ABAB"), "ABAB");
        assert_eq!(eliminate_long_runs("AAAA"), "AAA");
    }

    #[test]
    fn common_substring_requirement() {
        assert!(has_common_substring("ABCDEFGHIJ", "xxxABCDEFGyyy"));
        assert!(!has_common_substring("ABCDEFG", "GFEDCBA"));
        assert!(!has_common_substring("short", "short"));
        // Exactly 7 shared characters is enough.
        assert!(has_common_substring("1234567", "1234567"));
    }

    #[test]
    fn score_strings_zero_without_common_substring() {
        assert_eq!(
            score_strings("ABCDEFGHIJKLMNOP", "qrstuvwxyz012345", 192),
            0
        );
    }

    #[test]
    fn score_strings_identical_is_high() {
        let sig = "QZXCVBNMASDFGHJKLPOIUYTREWQ";
        assert!(score_strings(sig, sig, 3072) >= 99);
    }

    #[test]
    fn small_blocksize_cap_applies() {
        // With block size == MIN_BLOCKSIZE the cap is min(len1, len2), so two
        // identical 8-char signatures cannot score above 8.
        let sig = "ABCDEFGH";
        let s = score_strings(sig, sig, MIN_BLOCKSIZE);
        assert!(s <= 8, "cap should limit score, got {s}");
    }

    #[test]
    fn factor_two_block_sizes_can_match() {
        // Build an input, hash it, then hash a doubled version: their block
        // sizes often differ by x2 but the comparison path must not panic and
        // must return a bounded score.
        let a = patterned(100_000, 7);
        let mut b = a.clone();
        b.extend_from_slice(&patterned(120_000, 7));
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(&b);
        let s = compare(&ha, &hb);
        assert!(s <= 100);
    }

    #[test]
    fn common_substring_accepts_oversized_inputs() {
        // Regression: strings longer than SPAM_SUM_LENGTH + 6 windows used to
        // index past a fixed stack array and panic. Both the shared-window
        // and the disjoint case must return correct answers instead.
        let long_a: String = (0..200)
            .map(|i| ((i * 7 + 3) % 26 + 65) as u8 as char)
            .collect();
        let mut long_b: String = (0..200)
            .map(|i| ((i * 11 + 5) % 26 + 97) as u8 as char)
            .collect();
        assert!(has_common_substring(&long_a, &long_a));
        assert!(!has_common_substring(&long_a, &long_b));
        // Splice a 7-char window of `a` into `b`: now they must match.
        long_b.replace_range(90..97, &long_a[40..47]);
        assert!(has_common_substring(&long_a, &long_b));
        assert!(has_common_substring(&long_b, &long_a));
        // Exactly one past the old stack capacity (71 bytes) on both sides.
        let a71: String = (0..71)
            .map(|i| ((i * 5 + 1) % 26 + 65) as u8 as char)
            .collect();
        assert!(has_common_substring(&a71, &a71));
    }

    #[test]
    fn score_strings_accepts_oversized_inputs() {
        let sig: String = (0..120)
            .map(|i| ((i * 13 + 2) % 26 + 65) as u8 as char)
            .collect();
        let s = score_strings(&sig, &sig, 3072);
        assert!(s >= 99, "identical long strings should score high, got {s}");
        let other: String = (0..120)
            .map(|i| ((i * 17 + 9) % 26 + 97) as u8 as char)
            .collect();
        assert_eq!(score_strings(&sig, &other, 3072), 0);
    }

    #[test]
    fn compare_near_max_block_size_does_not_overflow() {
        let sig = "ABCDEFGHIJKL".to_string();
        let max = FuzzyHash::from_parts(u64::MAX, sig.clone(), sig.clone()).unwrap();
        let half = FuzzyHash::from_parts(u64::MAX / 2 + 1, sig.clone(), sig.clone()).unwrap();
        let odd = FuzzyHash::from_parts(u64::MAX - 2, sig.clone(), sig.clone()).unwrap();

        // Identical huge-block-size hashes still compare as identical.
        assert_eq!(compare(&max, &max), 100);
        // (u64::MAX / 2 + 1) * 2 overflows; the pair is not comparable.
        assert_eq!(compare(&max, &half), 0);
        assert_eq!(compare(&half, &max), 0);
        assert_eq!(compare(&max, &odd), 0);

        // A genuine factor-of-two pair near the top of the range still works.
        let b1 = 1u64 << 62;
        let a = FuzzyHash::from_parts(b1, sig.clone(), sig.clone()).unwrap();
        let b = FuzzyHash::from_parts(b1 * 2, sig.clone(), sig).unwrap();
        assert!(compare(&a, &b) > 0);
        assert_eq!(compare(&a, &b), compare(&b, &a));
    }

    #[test]
    fn scale_score_handles_degenerate_public_inputs() {
        // Zero lengths (empty signatures) score 0 instead of dividing by
        // zero, a distance beyond len1 + len2 clamps (the weighted distance
        // never exceeds it), and absurd magnitudes saturate instead of
        // overflowing.
        assert_eq!(scale_score(0, 0, 0, 3), 0);
        assert_eq!(scale_score(7, 0, 0, u64::MAX), 0);
        assert_eq!(
            scale_score(u64::MAX, 32, 32, 3072),
            scale_score(64, 32, 32, 3072)
        );
        assert_eq!(scale_score(u64::MAX / 32, 1, 1, 3072), 0);
        assert_eq!(scale_score(0, u64::MAX, u64::MAX, 3072), 100);
        assert_eq!(max_distance_for_score(1, 0, 0, 3), None);
        assert_eq!(max_distance_for_score(0, 0, 0, 3), Some(0));
        assert!(max_distance_for_score(1, u64::MAX, u64::MAX, 3072).is_some());
    }

    #[test]
    fn compare_strings_parses_and_scores() {
        let d = patterned(50_000, 29);
        let h = fuzzy_hash_bytes(&d).to_string();
        assert_eq!(compare_strings(&h, &h), Some(100));
        assert_eq!(compare_strings("garbage", &h), None);
    }

    #[test]
    fn truncation_of_input_retains_similarity() {
        let a = patterned(200_000, 23);
        let b = &a[..150_000];
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(b);
        let s = compare(&ha, &hb);
        assert!(s > 0, "a 75% prefix should retain some similarity");
    }
}
