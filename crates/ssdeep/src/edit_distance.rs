//! Edit distances used to score fuzzy-hash similarity.
//!
//! The paper (Section 3) defines the Damerau–Levenshtein distance via the
//! recurrence in Equation 1 and explains that SSDeep scales this distance
//! into a 0–100 similarity score. Three variants are provided:
//!
//! * [`levenshtein`] — unit-cost insertions, deletions, substitutions.
//! * [`damerau_levenshtein`] — Equation 1: unit-cost operations plus
//!   transpositions of adjacent characters (optimal string alignment form).
//! * [`weighted_edit_distance`] — the SSDeep scoring distance: insertions and
//!   deletions cost 1, substitutions cost 2, adjacent transpositions cost 1.
//!   With these weights the distance between two strings of lengths `m` and
//!   `n` is at most `m + n`, which is what lets SSDeep map it linearly onto
//!   the 0–100 scale.
//!
//! All three run in `O(m * n)` time and `O(min(m, n))`-ish space (three
//! reusable rows), which matters because the classifier computes millions of
//! pairwise comparisons when filling the similarity feature matrix.

/// Unit-cost Levenshtein distance between `a` and `b`.
///
/// # Examples
///
/// ```
/// use ssdeep::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    generic_distance(a.as_bytes(), b.as_bytes(), 1, 1, 1, None)
}

/// Damerau–Levenshtein distance (optimal string alignment): unit-cost
/// insertions, deletions, substitutions, and adjacent transpositions.
///
/// This is the distance defined by Equation 1 of the paper.
///
/// # Examples
///
/// ```
/// use ssdeep::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("ca", "ac"), 1);     // one transposition
/// assert_eq!(damerau_levenshtein("abcd", "abdc"), 1); // one transposition
/// assert_eq!(damerau_levenshtein("abc", "abc"), 0);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    generic_distance(a.as_bytes(), b.as_bytes(), 1, 1, 1, Some(1))
}

/// The SSDeep scoring distance: insert/delete cost 1, substitution cost 2,
/// adjacent transposition cost 1.
///
/// The result is at most `a.len() + b.len()`, which SSDeep maps linearly to
/// the 0–100 similarity scale.
///
/// # Examples
///
/// ```
/// use ssdeep::weighted_edit_distance;
/// assert_eq!(weighted_edit_distance("abc", "abc"), 0);
/// assert_eq!(weighted_edit_distance("abc", "abd"), 2);  // substitution costs 2
/// assert_eq!(weighted_edit_distance("abc", "ab"), 1);   // deletion costs 1
/// assert_eq!(weighted_edit_distance("ab", "ba"), 1);    // transposition costs 1
/// ```
pub fn weighted_edit_distance(a: &str, b: &str) -> usize {
    generic_distance(a.as_bytes(), b.as_bytes(), 1, 1, 2, Some(1))
}

/// Shared dynamic program over byte strings.
///
/// `ins`, `del`, and `sub` are the per-operation costs; `transpose` enables
/// the Damerau transposition case with the given cost when `Some`.
///
/// This is the *oracle*: structurally the simplest correct implementation,
/// which the bounded kernel in [`crate::fastdist`] is property-tested
/// against. It allocates three fresh rows per call and always fills the
/// full table — hot paths use
/// [`weighted_edit_distance_bounded`](crate::fastdist::weighted_edit_distance_bounded)
/// instead.
pub(crate) fn generic_distance(
    a: &[u8],
    b: &[u8],
    ins: usize,
    del: usize,
    sub: usize,
    transpose: Option<usize>,
) -> usize {
    if a.is_empty() {
        return b.len() * ins;
    }
    if b.is_empty() {
        return a.len() * del;
    }
    // Keep three rows: i-2, i-1, i. Row index j runs over b.
    let n = b.len();
    let mut prev2: Vec<usize> = vec![0; n + 1];
    let mut prev: Vec<usize> = (0..=n).map(|j| j * ins).collect();
    let mut cur: Vec<usize> = vec![0; n + 1];

    for i in 1..=a.len() {
        cur[0] = i * del;
        for j in 1..=n {
            let cost_sub = if a[i - 1] == b[j - 1] { 0 } else { sub };
            let mut best = (prev[j] + del) // delete a[i-1]
                .min(cur[j - 1] + ins) // insert b[j-1]
                .min(prev[j - 1] + cost_sub); // match / substitute
            if let Some(tcost) = transpose {
                if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                    best = best.min(prev2[j - 2] + tcost);
                }
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn damerau_counts_transpositions() {
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("a cat", "an act"), 2);
        assert_eq!(damerau_levenshtein("abcdef", "abcdfe"), 1);
    }

    #[test]
    fn damerau_equals_levenshtein_without_transpositions() {
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("abc", "xyz"), 3);
    }

    #[test]
    fn weighted_substitution_costs_two() {
        assert_eq!(weighted_edit_distance("a", "b"), 2);
        assert_eq!(weighted_edit_distance("abc", "axc"), 2);
        // With sub=2 a substitution is never cheaper than delete+insert, so
        // the distance is bounded by len(a) + len(b).
        assert_eq!(weighted_edit_distance("abcd", "wxyz"), 8);
    }

    #[test]
    fn weighted_bounded_by_sum_of_lengths() {
        let a = "AAAABBBBCCCC";
        let b = "xyzxyzxyz";
        assert!(weighted_edit_distance(a, b) <= a.len() + b.len());
    }

    #[test]
    fn identity_is_zero_for_all_variants() {
        for s in ["", "a", "hello world", "z/\u{7f}"] {
            assert_eq!(levenshtein(s, s), 0);
            assert_eq!(damerau_levenshtein(s, s), 0);
            assert_eq!(weighted_edit_distance(s, s), 0);
        }
    }

    #[test]
    fn symmetry() {
        let pairs = [("abcde", "xbcdz"), ("fuzzy", "hash"), ("", "nonempty")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
            assert_eq!(weighted_edit_distance(a, b), weighted_edit_distance(b, a));
        }
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        let pairs = [
            ("ABCDEF", "ABDCEF"),
            ("signature", "singature"),
            ("0123456789", "9876543210"),
        ];
        for (a, b) in pairs {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let strs = ["abc", "abd", "bcd", "xyz", ""];
        for a in strs {
            for b in strs {
                for c in strs {
                    assert!(
                        levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c),
                        "triangle inequality violated for ({a},{b},{c})"
                    );
                }
            }
        }
    }
}
