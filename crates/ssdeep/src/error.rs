//! Errors for parsing fuzzy-hash strings.

use std::fmt;

/// Why a textual fuzzy hash could not be parsed back into a [`FuzzyHash`].
///
/// [`FuzzyHash`]: crate::FuzzyHash
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The string did not contain the expected `blocksize:sig1:sig2` shape.
    MissingSeparator,
    /// The leading block-size field was not a positive integer.
    InvalidBlockSize(String),
    /// A signature contained a character outside the base64 alphabet.
    InvalidCharacter(char),
    /// A signature was longer than the maximum SSDeep emits.
    SignatureTooLong(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingSeparator => {
                write!(f, "fuzzy hash must have the form 'blocksize:sig1:sig2'")
            }
            ParseError::InvalidBlockSize(s) => write!(f, "invalid block size '{s}'"),
            ParseError::InvalidCharacter(c) => {
                write!(
                    f,
                    "invalid signature character '{c}' (not in the base64 alphabet)"
                )
            }
            ParseError::SignatureTooLong(n) => {
                write!(
                    f,
                    "signature of length {n} exceeds the maximum fuzzy-hash signature length"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ParseError::MissingSeparator
            .to_string()
            .contains("blocksize"));
        assert!(ParseError::InvalidBlockSize("x".into())
            .to_string()
            .contains('x'));
        assert!(ParseError::InvalidCharacter('!').to_string().contains('!'));
        assert!(ParseError::SignatureTooLong(99).to_string().contains("99"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ParseError::MissingSeparator);
        assert!(!e.to_string().is_empty());
    }
}
