//! Block-size selection.
//!
//! SSDeep signatures are kept near [`SPAM_SUM_LENGTH`](crate::SPAM_SUM_LENGTH)
//! (64) characters regardless of input size by scaling the *block size*: a
//! chunk boundary is emitted when the rolling hash is congruent to
//! `blocksize - 1 (mod blocksize)`, so doubling the block size roughly halves
//! the number of chunks. The generator starts from an estimate derived from
//! the input length and, if the resulting signature is too short, halves the
//! block size and retries (mirroring the reference implementation, which
//! instead starts small and doubles — the fixed point reached is the same).

/// The smallest block size SSDeep will use.
pub const MIN_BLOCKSIZE: u64 = 3;

/// Maximum number of doublings supported (spamsum's `NUM_BLOCKHASHES` is 31).
pub const NUM_BLOCKHASHES: u32 = 31;

/// The signature length the block size aims for (64 characters).
pub const SPAM_SUM_LENGTH: usize = 64;

/// The block size for a given doubling index: `MIN_BLOCKSIZE << index`.
#[inline]
pub fn blocksize_at(index: u32) -> u64 {
    MIN_BLOCKSIZE << index.min(NUM_BLOCKHASHES)
}

/// The largest "interesting" block size for an input of `len` bytes: the
/// smallest `MIN_BLOCKSIZE * 2^i` such that `blocksize * SPAM_SUM_LENGTH >=
/// len`, i.e. the block size at which the expected signature length first
/// drops to at most 64 characters.
pub fn initial_blocksize(len: usize) -> u64 {
    let len = len as u64;
    let mut bs = MIN_BLOCKSIZE;
    let mut iterations = 0;
    while bs * (SPAM_SUM_LENGTH as u64) < len && iterations < NUM_BLOCKHASHES {
        bs *= 2;
        iterations += 1;
    }
    bs
}

/// Whether two block sizes are close enough for their signatures to be
/// compared: SSDeep only compares signatures whose block sizes are equal or
/// differ by exactly a factor of two.
pub fn comparable(b1: u64, b2: u64) -> bool {
    // checked_mul: parsed hashes can carry block sizes near `u64::MAX`, and
    // a doubling that overflows can never equal the other block size.
    b1 == b2 || b2.checked_mul(2) == Some(b1) || b1.checked_mul(2) == Some(b2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocksize_at_doubles() {
        assert_eq!(blocksize_at(0), 3);
        assert_eq!(blocksize_at(1), 6);
        assert_eq!(blocksize_at(5), 96);
    }

    #[test]
    fn initial_blocksize_small_input_is_minimum() {
        assert_eq!(initial_blocksize(0), MIN_BLOCKSIZE);
        assert_eq!(initial_blocksize(100), MIN_BLOCKSIZE);
        assert_eq!(initial_blocksize(3 * 64), MIN_BLOCKSIZE);
    }

    #[test]
    fn initial_blocksize_grows_with_input() {
        assert_eq!(initial_blocksize(3 * 64 + 1), 6);
        let bs = initial_blocksize(1 << 20);
        assert!(bs * 64 >= 1 << 20);
        assert!(bs / 2 * 64 < 1 << 20);
    }

    #[test]
    fn initial_blocksize_monotone() {
        let mut prev = 0;
        for len in [0usize, 10, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            let bs = initial_blocksize(len);
            assert!(bs >= prev);
            prev = bs;
        }
    }

    #[test]
    fn comparable_rule() {
        assert!(comparable(48, 48));
        assert!(comparable(48, 96));
        assert!(comparable(96, 48));
        assert!(!comparable(48, 192));
        assert!(!comparable(3, 12));
    }

    #[test]
    fn blocksize_never_overflows() {
        // Even a clamped huge index must not overflow u64.
        let bs = blocksize_at(NUM_BLOCKHASHES);
        assert_eq!(bs, MIN_BLOCKSIZE << NUM_BLOCKHASHES);
    }
}
