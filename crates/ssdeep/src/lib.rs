//! Pure-Rust context-triggered piecewise hashing (CTPH), compatible in
//! spirit with SSDeep (Kornblum, 2006), plus the edit distances the paper
//! builds its similarity score on.
//!
//! The Fuzzy Hash Classifier paper compares application executables by
//! computing SSDeep fuzzy hashes of three views of each executable (raw
//! bytes, printable strings, global symbols) and scoring pairs of hashes on
//! a 0–100 similarity scale. This crate implements the complete machinery:
//!
//! * [`rolling_hash`] — the Adler-32-style rolling hash that makes chunk
//!   boundaries *context triggered*.
//! * [`fnv`] — the FNV-style non-cryptographic chunk hash whose low bits
//!   become signature characters.
//! * [`blocksize`] — block-size selection and the iteration rule that keeps
//!   signatures near 64 characters.
//! * [`generate`] — [`FuzzyHash`] generation ([`fuzzy_hash_bytes`]).
//! * [`edit_distance`] — Levenshtein, Damerau–Levenshtein (Eq. 1 of the
//!   paper), and the weighted edit distance SSDeep scales into a score.
//! * [`fastdist`] — the bounded comparison kernel: reusable DP scratch, a
//!   bit-parallel (Myers/Hyyrö) Damerau lower bound, and a banded DP with
//!   early cutoff ([`weighted_edit_distance_bounded`]), byte-identical to
//!   the oracle wherever it reports an exact distance.
//! * [mod@compare] — the 0–100 similarity score ([`compare`](compare::compare)),
//!   including the common-substring guard and block-size compatibility rule.
//! * [`prepared`] — [`PreparedHash`]: per-hash comparison state computed
//!   once, so comparing against a static reference set
//!   ([`compare_prepared`]) pays only the
//!   edit-distance DP per pair, with scores byte-identical to
//!   [`compare`](compare::compare), and [`compare_prepared_min`]: the
//!   max-merge pruning primitive that abandons comparisons which cannot
//!   beat a running maximum score.
//!
//! # Quick start
//!
//! ```
//! use ssdeep::{fuzzy_hash_bytes, compare};
//!
//! // Two "versions" of the same content: identical except for one
//! // localized edit, as when an executable gets a small code change.
//! let a: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
//! let mut b = a.clone();
//! for byte in b.iter_mut().skip(30_000).take(500) {
//!     *byte ^= 0xAA;
//! }
//!
//! let ha = fuzzy_hash_bytes(&a);
//! let hb = fuzzy_hash_bytes(&b);
//! let score = compare(&ha, &hb);
//! assert!(score > 50, "similar inputs should score high, got {score}");
//! assert_eq!(compare(&ha, &ha), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod blocksize;
pub mod compare;
pub mod edit_distance;
pub mod error;
pub mod fastdist;
pub mod fnv;
pub mod generate;
pub mod prepared;
pub mod rolling_hash;

pub use compare::{compare, compare_strings, max_distance_for_score, scale_score};
pub use edit_distance::{damerau_levenshtein, levenshtein, weighted_edit_distance};
pub use error::ParseError;
pub use fastdist::{
    damerau_levenshtein_bitparallel, weighted_edit_distance_bounded, BoundedDistance,
    DistanceScratch,
};
pub use generate::{fuzzy_hash_bytes, FuzzyHash, SPAM_SUM_LENGTH};
pub use prepared::{compare_prepared, compare_prepared_min, PreparedHash};
