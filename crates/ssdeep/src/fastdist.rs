//! The bounded edit-distance kernel for the similarity hot path.
//!
//! Every backend — scan, indexed, sharded, remote — funnels millions of
//! pairwise signature comparisons through the weighted Damerau–Levenshtein
//! distance. The oracle implementation
//! ([`weighted_edit_distance`](crate::edit_distance::weighted_edit_distance))
//! allocates three fresh rows per call and always fills the full `O(m·n)`
//! table, even when the caller only needs to know whether the distance can
//! stay under a budget. This module is the fast path, three stacked wins,
//! all byte-identical to the oracle wherever a result is produced:
//!
//! 1. **Scratch reuse** — [`DistanceScratch`] owns the DP rows (`u32`, not
//!    `usize`: signature distances are tiny and narrower rows halve memory
//!    traffic). Callers hold one per thread, or use the thread-local inside
//!    [`weighted_edit_distance_bounded`], so the per-call allocations
//!    disappear.
//! 2. **Bit-parallel lower bound** — the unit-cost Damerau–Levenshtein
//!    distance ([`damerau_levenshtein_bitparallel`], Myers/Hyyrö bit-vector
//!    algorithm, one `u64` word for the ≤64-char run-eliminated signatures)
//!    is a lower bound on the weighted distance (every weighted op cost
//!    dominates its unit cost, and the recurrences are otherwise
//!    identical), so `lb > limit` rejects a pair in ~`n` word operations
//!    before any DP row is touched.
//! 3. **Banded DP with cutoff** — [`weighted_edit_distance_bounded`] fills
//!    only the diagonal band that can still produce a distance `<= limit`
//!    (any path through diagonal offset `d = j - i` costs at least
//!    `|d| + |Δ - d|` in unit-cost insertions/deletions, `Δ` the final
//!    length difference) and abandons the table as soon as two consecutive
//!    rows exceed the limit (two rows, not one, because a transposition
//!    step can hop over a single row), returning
//!    [`BoundedDistance::AtLeast`] instead of an exact value.
//!
//! The prepared comparison path
//! ([`compare_prepared_min`](crate::prepared::compare_prepared_min)) turns
//! a *score* budget into a distance `limit` via
//! [`max_distance_for_score`](crate::compare::max_distance_for_score) and
//! feeds it here, so a comparison that cannot beat a class's running
//! maximum similarity is abandoned mid-table.

use crate::edit_distance::generic_distance;
use std::cell::RefCell;

/// Result of a limit-bounded distance computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedDistance {
    /// The distance is exactly this value (and `<= limit`).
    Exact(usize),
    /// The distance is at least this value (always `limit + 1`): the pair
    /// was rejected by a lower bound or the band cutoff and the exact
    /// distance was never materialized.
    AtLeast(usize),
}

impl BoundedDistance {
    /// The exact distance, if the computation stayed within the limit.
    pub fn exact(self) -> Option<usize> {
        match self {
            BoundedDistance::Exact(d) => Some(d),
            BoundedDistance::AtLeast(_) => None,
        }
    }

    /// The tightest known lower bound on the distance (the exact value, or
    /// `limit + 1` after a rejection).
    pub fn lower_bound(self) -> usize {
        match self {
            BoundedDistance::Exact(d) | BoundedDistance::AtLeast(d) => d,
        }
    }
}

/// Sentinel for out-of-band DP cells. Far above any real signature
/// distance, far below `u32::MAX` so `saturating_add` headroom is never
/// needed on the hot path (a plain `+ 2` cannot overflow it).
const INF: u32 = u32::MAX / 4;

/// Reusable DP rows for [`weighted_edit_distance_bounded_with`].
///
/// One scratch per thread removes the three `Vec` allocations the oracle
/// pays per call. The rows grow to the widest signature seen and are then
/// reused verbatim; dropping the scratch frees them.
#[derive(Debug, Default)]
pub struct DistanceScratch {
    prev2: Vec<u32>,
    prev: Vec<u32>,
    cur: Vec<u32>,
    /// Match-position masks for the bit-parallel lower bound, allocated on
    /// first use and kept **all-zero between calls** (each call clears the
    /// ≤ 64 entries its pattern touched on exit) — cheaper than refilling
    /// a 2 KB table per comparison.
    pm: Vec<u64>,
}

impl DistanceScratch {
    /// An empty scratch (rows grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The three rows, each resized to `width` cells.
    fn rows(&mut self, width: usize) -> (&mut Vec<u32>, &mut Vec<u32>, &mut Vec<u32>) {
        self.prev2.resize(width, INF);
        self.prev.resize(width, INF);
        self.cur.resize(width, INF);
        (&mut self.prev2, &mut self.prev, &mut self.cur)
    }
}

thread_local! {
    /// Per-thread scratch used by the convenience wrappers, so hot-path
    /// callers get allocation-free comparisons without threading a scratch
    /// through every layer by hand.
    static THREAD_SCRATCH: RefCell<DistanceScratch> = RefCell::new(DistanceScratch::new());
}

/// The SSDeep scoring distance (insert/delete 1, substitute 2, adjacent
/// transposition 1) of `a` and `b`, computed only as far as `limit`:
/// returns [`BoundedDistance::Exact`] when the distance is `<= limit` —
/// byte-identical to
/// [`weighted_edit_distance`](crate::edit_distance::weighted_edit_distance)
/// — and [`BoundedDistance::AtLeast`]`(limit + 1)` otherwise.
///
/// Uses a per-thread [`DistanceScratch`]; see
/// [`weighted_edit_distance_bounded_with`] for the caller-owned-scratch
/// form and the pruning tiers.
///
/// # Examples
///
/// ```
/// use ssdeep::fastdist::{weighted_edit_distance_bounded, BoundedDistance};
/// assert_eq!(
///     weighted_edit_distance_bounded("abc", "abd", 10),
///     BoundedDistance::Exact(2)
/// );
/// assert_eq!(
///     weighted_edit_distance_bounded("abcdefgh", "stuvwxyz", 3),
///     BoundedDistance::AtLeast(4)
/// );
/// ```
pub fn weighted_edit_distance_bounded(a: &str, b: &str, limit: usize) -> BoundedDistance {
    THREAD_SCRATCH.with(|scratch| {
        weighted_edit_distance_bounded_with(
            &mut scratch.borrow_mut(),
            a.as_bytes(),
            b.as_bytes(),
            limit,
        )
    })
}

/// [`weighted_edit_distance_bounded`] over raw bytes with a caller-owned
/// scratch (the form the comparison hot path uses).
pub fn weighted_edit_distance_bounded_with(
    scratch: &mut DistanceScratch,
    a: &[u8],
    b: &[u8],
    limit: usize,
) -> BoundedDistance {
    let (m, n) = (a.len(), b.len());

    // Degenerate shapes first: they need no table at all.
    if m == 0 || n == 0 {
        let d = m + n;
        return if d <= limit {
            BoundedDistance::Exact(d)
        } else {
            BoundedDistance::AtLeast(limit + 1)
        };
    }
    if a == b {
        return BoundedDistance::Exact(0);
    }

    // Tier 0: the distance is at least the length difference (only
    // insertions and deletions change the length, at cost 1 each).
    let diff = m.abs_diff(n);
    if diff > limit {
        return BoundedDistance::AtLeast(limit + 1);
    }

    // Absurdly long inputs (far beyond any signature) would overflow the
    // u32 rows; hand them to the allocating oracle.
    if m + n >= INF as usize {
        let d = generic_distance(a, b, 1, 1, 2, Some(1));
        return if d <= limit {
            BoundedDistance::Exact(d)
        } else {
            BoundedDistance::AtLeast(limit + 1)
        };
    }

    // Tier 1: bit-parallel unit-cost Damerau–Levenshtein lower bound.
    // Every weighted op cost dominates its unit cost (1/1/2/1 vs 1/1/1/1)
    // over the same recurrence, so DL <= weighted distance cell-wise. Only
    // worth running when it *can* reject: DL never exceeds max(m, n).
    if limit < m.max(n) {
        if let Some(lb) = damerau_bitparallel_with(&mut scratch.pm, a, b) {
            if lb > limit {
                return BoundedDistance::AtLeast(limit + 1);
            }
        }
    }

    // Tier 2: banded DP. A path through the cell (i, j) — diagonal offset
    // d = j - i — spends at least |d| + |Δ - d| on insertions/deletions
    // (Δ = n - m is the final offset; substitutions and transpositions
    // never change the offset, and a transposition changes it by 0). So
    // only offsets with |d| + |Δ - d| <= limit can contribute, which is
    // the interval [min(0, Δ) - slack, max(0, Δ) + slack] with
    // slack = (limit - |Δ|) / 2.
    let limit = limit.min(m + n);
    let limit_u32 = limit as u32;
    let delta = n as isize - m as isize;
    let slack = ((limit - diff) / 2) as isize;
    let lo = delta.min(0) - slack;
    let hi = delta.max(0) + slack;

    let width = n + 1;
    let (prev2, prev, cur) = scratch.rows(width);

    // Row 0: D[0][j] = j insertions; out-of-band cells are INF. Row -1
    // (prev2 for i = 1) is all INF.
    prev2[..width].fill(INF);
    for (j, cell) in prev[..width].iter_mut().enumerate() {
        *cell = if j as isize <= hi { j as u32 } else { INF };
    }
    // The cutoff needs two consecutive over-limit rows because a
    // transposition reads prev2 and can hop a single bad row.
    let mut prev_row_min = 0u32;

    for i in 1..=m {
        let band_lo = (i as isize + lo).max(0) as usize;
        let band_hi = ((i as isize + hi).min(n as isize)) as usize;
        cur[..width].fill(INF);
        let mut row_min = INF;
        if band_lo == 0 {
            cur[0] = i as u32; // delete a[..i]
            row_min = cur[0];
        }
        let ai = a[i - 1];
        for j in band_lo.max(1)..=band_hi {
            let bj = b[j - 1];
            let cost_sub = if ai == bj { 0 } else { 2 };
            let mut best = (prev[j] + 1) // delete a[i-1]
                .min(cur[j - 1] + 1) // insert b[j-1]
                .min(prev[j - 1] + cost_sub); // match / substitute
            if i > 1 && j > 1 && ai == b[j - 2] && a[i - 2] == bj {
                best = best.min(prev2[j - 2] + 1); // transpose
            }
            cur[j] = best;
            row_min = row_min.min(best);
        }
        if row_min > limit_u32 && prev_row_min > limit_u32 {
            return BoundedDistance::AtLeast(limit + 1);
        }
        prev_row_min = row_min;
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
    }

    let d = prev[n];
    if d <= limit_u32 {
        BoundedDistance::Exact(d as usize)
    } else {
        BoundedDistance::AtLeast(limit + 1)
    }
}

/// Unit-cost Damerau–Levenshtein distance (optimal string alignment, the
/// distance of [`damerau_levenshtein`](crate::edit_distance::damerau_levenshtein))
/// by the Myers/Hyyrö bit-vector algorithm, in `O(n)` word operations when
/// the shorter string fits one 64-bit word.
///
/// Returns `None` when both strings are longer than 64 bytes (real
/// run-eliminated signatures never are). Used as the pre-DP lower bound of
/// [`weighted_edit_distance_bounded_with`]; exactness is enforced against
/// the row DP by the property tests.
///
/// # Examples
///
/// ```
/// use ssdeep::fastdist::damerau_levenshtein_bitparallel;
/// assert_eq!(damerau_levenshtein_bitparallel("ca", "ac"), Some(1));
/// assert_eq!(damerau_levenshtein_bitparallel("kitten", "sitting"), Some(3));
/// ```
pub fn damerau_levenshtein_bitparallel(a: &str, b: &str) -> Option<usize> {
    damerau_levenshtein_bitparallel_bytes(a.as_bytes(), b.as_bytes())
}

/// Byte-slice form of [`damerau_levenshtein_bitparallel`] (uses the
/// per-thread scratch's match-mask table).
pub fn damerau_levenshtein_bitparallel_bytes(a: &[u8], b: &[u8]) -> Option<usize> {
    THREAD_SCRATCH.with(|scratch| damerau_bitparallel_with(&mut scratch.borrow_mut().pm, a, b))
}

/// The bit-parallel core over a caller-owned match-mask table. `pm` must
/// be all-zero (or empty) on entry; the entries touched by the pattern are
/// re-zeroed before returning, so repeated calls never refill the whole
/// 2 KB table.
fn damerau_bitparallel_with(pm: &mut Vec<u64>, a: &[u8], b: &[u8]) -> Option<usize> {
    // The pattern (bit-packed side) must fit one word; the distance is
    // symmetric, so pack the shorter string.
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = pattern.len();
    if m == 0 {
        return Some(text.len());
    }
    if m > 64 {
        return None;
    }

    // Match-position bitmasks: bit i of pm[c] is set iff pattern[i] == c.
    if pm.is_empty() {
        pm.resize(256, 0);
    }
    debug_assert!(pm.iter().all(|&mask| mask == 0), "pm table left dirty");
    for (i, &c) in pattern.iter().enumerate() {
        pm[c as usize] |= 1 << i;
    }

    let high = 1u64 << (m - 1);
    let full = if m == 64 { !0u64 } else { (1u64 << m) - 1 };
    let mut vp = full; // vertical positive deltas
    let mut vn = 0u64; // vertical negative deltas
    let mut d0_prev = 0u64; // previous column's diagonal-zero vector
    let mut pm_prev = 0u64; // previous text char's match vector
    let mut score = m;

    for &c in text {
        let pm_j = pm[c as usize];
        // Hyyrö's Damerau extension: bit i of tr marks a usable adjacent
        // transposition ending at (i, j).
        let tr = ((!d0_prev & pm_j) << 1) & pm_prev;
        let x = pm_j | vn;
        let d0 = (((x & vp).wrapping_add(vp)) ^ vp) | x | tr;
        let hp = vn | !(d0 | vp);
        let hn = d0 & vp;
        if hp & high != 0 {
            score += 1;
        }
        if hn & high != 0 {
            score -= 1;
        }
        // Global distance: the top boundary D[0][j] = j always grows, so
        // the shifted horizontal-positive vector carries a set low bit.
        let hp_shifted = (hp << 1) | 1;
        let hn_shifted = hn << 1;
        vp = hn_shifted | !(d0 | hp_shifted) & full;
        vn = d0 & hp_shifted;
        d0_prev = d0;
        pm_prev = pm_j;
    }
    // Restore the all-zero invariant by clearing only what was touched.
    for &c in pattern {
        pm[c as usize] = 0;
    }
    Some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::{damerau_levenshtein, weighted_edit_distance};

    fn wed(a: &str, b: &str) -> usize {
        weighted_edit_distance(a, b)
    }

    #[test]
    fn bounded_matches_oracle_on_small_cases() {
        let cases = [
            ("", ""),
            ("", "abc"),
            ("abc", ""),
            ("abc", "abc"),
            ("abc", "abd"),
            ("ab", "ba"),
            ("abcd", "abdc"),
            ("kitten", "sitting"),
            ("abcd", "wxyz"),
            ("AAAABBBB", "BBBBAAAA"),
            ("a cat", "an act"),
        ];
        for (a, b) in cases {
            let d = wed(a, b);
            for limit in 0..=(a.len() + b.len() + 2) {
                let got = weighted_edit_distance_bounded(a, b, limit);
                if d <= limit {
                    assert_eq!(
                        got,
                        BoundedDistance::Exact(d),
                        "({a:?},{b:?}) limit {limit}"
                    );
                } else {
                    assert_eq!(
                        got,
                        BoundedDistance::AtLeast(limit + 1),
                        "({a:?},{b:?}) limit {limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitparallel_matches_damerau_on_classics() {
        let cases = [
            ("", ""),
            ("", "abc"),
            ("ca", "ac"),
            ("abcd", "abdc"),
            ("kitten", "sitting"),
            ("a cat", "an act"),
            ("abcdef", "abcdfe"),
            ("0123456789", "9876543210"),
            ("flaw", "lawn"),
        ];
        for (a, b) in cases {
            assert_eq!(
                damerau_levenshtein_bitparallel(a, b),
                Some(damerau_levenshtein(a, b)),
                "({a:?},{b:?})"
            );
        }
    }

    #[test]
    fn bitparallel_handles_64_char_pattern() {
        let a: String = (0..64).map(|i| (b'A' + (i % 26)) as char).collect();
        let mut b = a.clone();
        b.replace_range(10..11, "z");
        assert_eq!(damerau_levenshtein_bitparallel(&a, &a), Some(0));
        assert_eq!(damerau_levenshtein_bitparallel(&a, &b), Some(1));
        let long: String = (0..65).map(|_| 'x').collect();
        // One side over a word is fine (the other is packed)…
        assert!(damerau_levenshtein_bitparallel(&a, &long).is_some());
        // …both sides over a word is not.
        assert_eq!(damerau_levenshtein_bitparallel(&long, &long), None);
    }

    #[test]
    fn lower_bound_property_holds() {
        // DL <= weighted on a deterministic mix of shapes.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let la = (next() % 20) as usize;
            let lb = (next() % 20) as usize;
            let a: String = (0..la)
                .map(|_| (b'a' + (next() % 4) as u8) as char)
                .collect();
            let b: String = (0..lb)
                .map(|_| (b'a' + (next() % 4) as u8) as char)
                .collect();
            let dl = damerau_levenshtein_bitparallel(&a, &b).unwrap();
            assert_eq!(dl, damerau_levenshtein(&a, &b), "({a:?},{b:?})");
            assert!(dl <= wed(&a, &b), "({a:?},{b:?})");
        }
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut scratch = DistanceScratch::new();
        let pairs = [
            ("short", "also short"),
            ("a much longer signature string to widen the rows", "x"),
            ("", "nonempty"),
            ("back", "to short"),
        ];
        for (a, b) in pairs {
            let d = wed(a, b);
            let got = weighted_edit_distance_bounded_with(
                &mut scratch,
                a.as_bytes(),
                b.as_bytes(),
                a.len() + b.len(),
            );
            assert_eq!(got, BoundedDistance::Exact(d));
        }
    }

    #[test]
    fn transposition_cannot_tunnel_past_the_cutoff() {
        // Transposition-heavy pairs where a single-row cutoff would be
        // unsound: every adjacent pair swapped.
        let a = "abcdefghijklmnop";
        let b = "badcfehgjilknmpo";
        let d = wed(a, b); // 8 transpositions
        assert_eq!(d, 8);
        for limit in 0..=20 {
            let got = weighted_edit_distance_bounded(a, b, limit);
            if d <= limit {
                assert_eq!(got, BoundedDistance::Exact(d), "limit {limit}");
            } else {
                assert_eq!(got, BoundedDistance::AtLeast(limit + 1), "limit {limit}");
            }
        }
    }

    #[test]
    fn zero_limit_accepts_only_equality() {
        assert_eq!(
            weighted_edit_distance_bounded("same", "same", 0),
            BoundedDistance::Exact(0)
        );
        assert_eq!(
            weighted_edit_distance_bounded("same", "sane", 0),
            BoundedDistance::AtLeast(1)
        );
    }

    #[test]
    fn bounded_distance_accessors() {
        assert_eq!(BoundedDistance::Exact(3).exact(), Some(3));
        assert_eq!(BoundedDistance::AtLeast(7).exact(), None);
        assert_eq!(BoundedDistance::Exact(3).lower_bound(), 3);
        assert_eq!(BoundedDistance::AtLeast(7).lower_bound(), 7);
    }
}
