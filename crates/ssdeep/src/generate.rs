//! Fuzzy-hash generation.
//!
//! A fuzzy hash (signature) has the textual form
//! `blocksize:signature1:signature2`, where `signature1` is built with chunk
//! boundaries triggered at `blocksize` and `signature2` at `2 * blocksize`.
//! Keeping the double-block-size signature allows two files whose chosen
//! block sizes differ by a factor of two to still be compared.

use crate::base64;
use crate::blocksize::{comparable, initial_blocksize, MIN_BLOCKSIZE};
use crate::error::ParseError;
use crate::fnv::PartialHash;
use crate::rolling_hash::RollingHash;
use std::fmt;
use std::str::FromStr;

/// Target signature length (64 characters), as in spamsum/SSDeep.
pub const SPAM_SUM_LENGTH: usize = 64;

/// A context-triggered piecewise hash of one input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuzzyHash {
    block_size: u64,
    sig1: String,
    sig2: String,
}

impl FuzzyHash {
    /// Construct a fuzzy hash from raw parts (used by the parser and tests).
    pub fn from_parts(block_size: u64, sig1: String, sig2: String) -> Result<Self, ParseError> {
        if block_size == 0 {
            return Err(ParseError::InvalidBlockSize("0".to_string()));
        }
        for sig in [&sig1, &sig2] {
            if sig.len() > SPAM_SUM_LENGTH {
                return Err(ParseError::SignatureTooLong(sig.len()));
            }
            if let Some(c) = sig.chars().find(|&c| !base64::is_valid_char(c)) {
                return Err(ParseError::InvalidCharacter(c));
            }
        }
        Ok(Self {
            block_size,
            sig1,
            sig2,
        })
    }

    /// The block size the primary signature was generated with.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The primary signature (chunked at `block_size`).
    pub fn signature(&self) -> &str {
        &self.sig1
    }

    /// The secondary signature (chunked at `2 * block_size`).
    pub fn signature_double(&self) -> &str {
        &self.sig2
    }

    /// Whether this hash can be meaningfully compared with `other` (equal
    /// block sizes or a factor-of-two difference).
    pub fn comparable_with(&self, other: &FuzzyHash) -> bool {
        comparable(self.block_size, other.block_size)
    }
}

impl fmt::Display for FuzzyHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.block_size, self.sig1, self.sig2)
    }
}

impl FromStr for FuzzyHash {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, ':');
        let bs = parts.next().ok_or(ParseError::MissingSeparator)?;
        let sig1 = parts.next().ok_or(ParseError::MissingSeparator)?;
        let sig2 = parts.next().ok_or(ParseError::MissingSeparator)?;
        let block_size: u64 = bs
            .parse()
            .map_err(|_| ParseError::InvalidBlockSize(bs.to_string()))?;
        FuzzyHash::from_parts(block_size, sig1.to_string(), sig2.to_string())
    }
}

/// One pass of the CTPH chunker at a fixed block size.
///
/// Returns `(sig1, sig2)` where `sig1` uses `block_size` and `sig2` uses
/// `2 * block_size` as the boundary trigger.
fn chunk_signatures(data: &[u8], block_size: u64) -> (String, String) {
    let mut roll = RollingHash::new();
    let mut h1 = PartialHash::new();
    let mut h2 = PartialHash::new();
    let mut sig1 = String::with_capacity(SPAM_SUM_LENGTH);
    let mut sig2 = String::with_capacity(SPAM_SUM_LENGTH / 2);
    let double = block_size * 2;

    for &byte in data {
        let r = u64::from(roll.update(byte));
        h1.update(byte);
        h2.update(byte);

        if r % block_size == block_size - 1 && sig1.len() < SPAM_SUM_LENGTH - 1 {
            sig1.push(base64::encode(h1.b64_index()));
            h1 = PartialHash::new();
        }
        if r % double == double - 1 && sig2.len() < SPAM_SUM_LENGTH / 2 - 1 {
            sig2.push(base64::encode(h2.b64_index()));
            h2 = PartialHash::new();
        }
    }

    // Capture whatever is left in the final (possibly unterminated) chunk.
    if roll.value() != 0 || data.is_empty() {
        sig1.push(base64::encode(h1.b64_index()));
        sig2.push(base64::encode(h2.b64_index()));
    }
    (sig1, sig2)
}

/// Compute the fuzzy hash of a byte slice.
///
/// The block size starts at the estimate from
/// [`initial_blocksize`] and is halved
/// (re-hashing the input) while the primary signature comes out shorter than
/// half the target length, exactly as the reference implementation does, so
/// that small inputs still produce informative signatures.
///
/// # Examples
///
/// ```
/// use ssdeep::fuzzy_hash_bytes;
/// let h = fuzzy_hash_bytes(b"hello fuzzy hashing world, this is a short input");
/// assert!(h.block_size() >= 3);
/// assert!(!h.signature().is_empty());
/// let text = h.to_string();
/// assert_eq!(text.matches(':').count(), 2);
/// ```
pub fn fuzzy_hash_bytes(data: &[u8]) -> FuzzyHash {
    let mut block_size = initial_blocksize(data.len());
    loop {
        let (sig1, sig2) = chunk_signatures(data, block_size);
        if sig1.len() < SPAM_SUM_LENGTH / 2 && block_size > MIN_BLOCKSIZE {
            block_size /= 2;
            continue;
        }
        return FuzzyHash {
            block_size,
            sig1,
            sig2,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, stride: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i as u64 * u64::from(stride) + i as u64 / 7) % 251) as u8)
            .collect()
    }

    #[test]
    fn empty_input_has_minimal_hash() {
        let h = fuzzy_hash_bytes(b"");
        assert_eq!(h.block_size(), MIN_BLOCKSIZE);
        assert_eq!(h.signature().len(), 1);
        assert_eq!(h.signature_double().len(), 1);
    }

    #[test]
    fn deterministic() {
        let data = patterned(50_000, 13);
        assert_eq!(fuzzy_hash_bytes(&data), fuzzy_hash_bytes(&data));
    }

    #[test]
    fn signatures_respect_length_bounds() {
        for len in [0usize, 1, 10, 100, 1_000, 10_000, 200_000] {
            let h = fuzzy_hash_bytes(&patterned(len, 7));
            assert!(h.signature().len() <= SPAM_SUM_LENGTH, "len {len}");
            assert!(
                h.signature_double().len() <= SPAM_SUM_LENGTH / 2,
                "len {len}"
            );
        }
    }

    #[test]
    fn signature_chars_are_valid_base64() {
        let h = fuzzy_hash_bytes(&patterned(30_000, 31));
        assert!(crate::base64::is_valid_signature(h.signature()));
        assert!(crate::base64::is_valid_signature(h.signature_double()));
    }

    #[test]
    fn roundtrip_display_parse() {
        let h = fuzzy_hash_bytes(&patterned(12_345, 5));
        let text = h.to_string();
        let parsed: FuzzyHash = text.parse().unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "nocolons".parse::<FuzzyHash>(),
            Err(ParseError::MissingSeparator)
        ));
        assert!(matches!(
            "x:AB:CD".parse::<FuzzyHash>(),
            Err(ParseError::InvalidBlockSize(_))
        ));
        assert!(matches!(
            "0:AB:CD".parse::<FuzzyHash>(),
            Err(ParseError::InvalidBlockSize(_))
        ));
        assert!(matches!(
            "3:A B:CD".parse::<FuzzyHash>(),
            Err(ParseError::InvalidCharacter(' '))
        ));
        let long = "A".repeat(SPAM_SUM_LENGTH + 1);
        assert!(matches!(
            format!("3:{long}:CD").parse::<FuzzyHash>(),
            Err(ParseError::SignatureTooLong(_))
        ));
    }

    #[test]
    fn larger_inputs_get_larger_block_sizes() {
        let small = fuzzy_hash_bytes(&patterned(1_000, 3));
        let large = fuzzy_hash_bytes(&patterned(1_000_000, 3));
        assert!(large.block_size() > small.block_size());
    }

    #[test]
    fn comparable_with_factor_two() {
        let a = FuzzyHash::from_parts(48, "ABC".into(), "DE".into()).unwrap();
        let b = FuzzyHash::from_parts(96, "ABC".into(), "DE".into()).unwrap();
        let c = FuzzyHash::from_parts(192, "ABC".into(), "DE".into()).unwrap();
        assert!(a.comparable_with(&b));
        assert!(b.comparable_with(&c));
        assert!(!a.comparable_with(&c));
    }

    #[test]
    fn small_change_keeps_most_of_signature() {
        let a = patterned(60_000, 11);
        let mut b = a.clone();
        // Flip a handful of bytes in the middle.
        for byte in &mut b[30_000..30_016] {
            *byte ^= 0xFF;
        }
        let ha = fuzzy_hash_bytes(&a);
        let hb = fuzzy_hash_bytes(&b);
        assert_eq!(ha.block_size(), hb.block_size());
        // The signatures must share a long common prefix or suffix overall;
        // quantify via edit distance being far below the signature length.
        let d = crate::edit_distance::levenshtein(ha.signature(), hb.signature());
        assert!(
            d < ha.signature().len() / 2,
            "edit distance {d} too large for a 16-byte change (sig len {})",
            ha.signature().len()
        );
    }

    #[test]
    fn debug_repr_mentions_block_size() {
        let h = fuzzy_hash_bytes(&patterned(5_000, 9));
        let debug = format!("{h:?}");
        assert!(debug.contains(&h.block_size().to_string()));
    }
}
