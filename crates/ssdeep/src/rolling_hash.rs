//! The rolling hash that drives context-triggered chunk boundaries.
//!
//! SSDeep decides where one chunk ends and the next begins by maintaining a
//! rolling hash over the last [`ROLLING_WINDOW`] bytes of input. Whenever the
//! rolling hash value `h` satisfies `h % blocksize == blocksize - 1` a chunk
//! boundary is emitted. Because the hash depends only on a small window of
//! recent content, inserting or deleting bytes early in a file does not shift
//! every later boundary — which is exactly the property that makes the final
//! signatures of two similar files comparable.

/// Number of bytes the rolling hash looks back over.
pub const ROLLING_WINDOW: usize = 7;

/// Rolling hash state (an Adler-32 style sum/shift/window combination, as in
/// the original spamsum/SSDeep implementation).
#[derive(Debug, Clone)]
pub struct RollingHash {
    window: [u8; ROLLING_WINDOW],
    h1: u32,
    h2: u32,
    h3: u32,
    n: usize,
}

impl Default for RollingHash {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingHash {
    /// Create a fresh rolling hash with an empty window.
    pub fn new() -> Self {
        Self {
            window: [0; ROLLING_WINDOW],
            h1: 0,
            h2: 0,
            h3: 0,
            n: 0,
        }
    }

    /// Feed one byte and return the updated hash value.
    #[inline]
    pub fn update(&mut self, byte: u8) -> u32 {
        let b = u32::from(byte);
        let dropped = u32::from(self.window[self.n % ROLLING_WINDOW]);

        self.h2 = self.h2.wrapping_sub(self.h1);
        self.h2 = self.h2.wrapping_add(ROLLING_WINDOW as u32 * b);

        self.h1 = self.h1.wrapping_add(b);
        self.h1 = self.h1.wrapping_sub(dropped);

        self.window[self.n % ROLLING_WINDOW] = byte;
        self.n += 1;

        // h3 is a shift/xor over the window; it reacts quickly to the most
        // recent bytes and slowly forgets older ones.
        self.h3 = (self.h3 << 5) ^ b;

        self.value()
    }

    /// The current hash value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.h1.wrapping_add(self.h2).wrapping_add(self.h3)
    }

    /// Number of bytes consumed so far.
    pub fn bytes_seen(&self) -> usize {
        self.n
    }
}

/// Hash an entire slice, returning the final rolling value (used in tests).
pub fn roll_over(data: &[u8]) -> u32 {
    let mut rh = RollingHash::new();
    let mut v = 0;
    for &b in data {
        v = rh.update(b);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_is_zero() {
        let rh = RollingHash::new();
        assert_eq!(rh.value(), 0);
        assert_eq!(rh.bytes_seen(), 0);
    }

    #[test]
    fn deterministic() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(roll_over(data), roll_over(data));
    }

    #[test]
    fn depends_only_on_recent_window() {
        // Two inputs with identical last ROLLING_WINDOW bytes but different
        // long prefixes: h1 and h2 depend on the window contents only, and h3
        // effectively forgets bytes older than ~6 shifts (32-bit shifts of 5).
        // The full value may differ because h3 mixes older bytes, so we check
        // the window-derived components (h1) instead.
        let mut a = RollingHash::new();
        let mut b = RollingHash::new();
        for &x in b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAsuffix7" {
            a.update(x);
        }
        for &x in b"BBBBBBBBBBBBBBBBsuffix7" {
            b.update(x);
        }
        assert_eq!(a.h1, b.h1, "h1 must depend only on the last 7 bytes");
    }

    #[test]
    fn update_changes_value() {
        let mut rh = RollingHash::new();
        let v1 = rh.update(1);
        let v2 = rh.update(2);
        assert_ne!(v1, v2);
        assert_eq!(rh.bytes_seen(), 2);
    }

    #[test]
    fn window_wraps_correctly() {
        let mut rh = RollingHash::new();
        for i in 0..(ROLLING_WINDOW * 3) {
            rh.update((i % 251) as u8);
        }
        assert_eq!(rh.bytes_seen(), ROLLING_WINDOW * 3);
        // h1 equals the sum of the last ROLLING_WINDOW bytes.
        let expected: u32 = ((ROLLING_WINDOW * 2)..(ROLLING_WINDOW * 3))
            .map(|i| (i % 251) as u32)
            .sum();
        assert_eq!(rh.h1, expected);
    }
}
