//! The non-cryptographic chunk hash whose low six bits become signature
//! characters.
//!
//! SSDeep hashes each context-triggered chunk with a small FNV-style hash
//! (the original spamsum used exactly this 32-bit FNV-1 variant with a
//! custom offset basis). Only the low 6 bits of the final value are kept and
//! mapped through the base64 alphabet, so the hash does not need to be
//! cryptographically strong — it only needs to spread nearby inputs across
//! the 64 possible characters.

/// FNV-1 32-bit prime.
pub const FNV_PRIME: u32 = 0x0100_0193;
/// The offset basis used by spamsum/SSDeep (`HASH_INIT`).
pub const HASH_INIT: u32 = 0x2802_1967;

/// Incremental FNV-style chunk hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialHash(u32);

impl Default for PartialHash {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialHash {
    /// Start a fresh chunk hash.
    #[inline]
    pub fn new() -> Self {
        Self(HASH_INIT)
    }

    /// Mix one byte into the hash.
    #[inline]
    pub fn update(&mut self, byte: u8) {
        self.0 = self.0.wrapping_mul(FNV_PRIME) ^ u32::from(byte);
    }

    /// The current 32-bit value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.0
    }

    /// The low six bits, i.e. the index into the base64 alphabet.
    #[inline]
    pub fn b64_index(&self) -> usize {
        (self.0 & 0x3F) as usize
    }
}

/// Hash a whole slice in one call (convenience for tests and for hashing
/// short feature strings).
pub fn fnv_hash(data: &[u8]) -> u32 {
    let mut h = PartialHash::new();
    for &b in data {
        h.update(b);
    }
    h.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(fnv_hash(b""), HASH_INIT);
        assert_eq!(PartialHash::new().value(), HASH_INIT);
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        assert_eq!(fnv_hash(b"abc"), fnv_hash(b"abc"));
        assert_ne!(fnv_hash(b"abc"), fnv_hash(b"acb"));
    }

    #[test]
    fn single_byte_formula() {
        let mut h = PartialHash::new();
        h.update(0x61);
        assert_eq!(h.value(), HASH_INIT.wrapping_mul(FNV_PRIME) ^ 0x61);
    }

    #[test]
    fn b64_index_in_range() {
        for i in 0..=255u8 {
            let mut h = PartialHash::new();
            h.update(i);
            assert!(h.b64_index() < 64);
        }
    }

    #[test]
    fn different_inputs_spread_over_indices() {
        use std::collections::HashSet;
        let indices: HashSet<usize> = (0u32..4096)
            .map(|i| {
                let mut h = PartialHash::new();
                for b in i.to_le_bytes() {
                    h.update(b);
                }
                h.b64_index()
            })
            .collect();
        // All 64 buckets should be hit by 4096 distinct short inputs.
        assert_eq!(indices.len(), 64);
    }
}
