//! Precomputed comparison state for a fuzzy hash.
//!
//! [`compare`](crate::compare::compare) repeats the same signature-local work
//! on every call: it run-eliminates both signatures (allocating fresh
//! `String`s), packs the 7-byte windows of the shorter one into `u64` keys,
//! and sorts them — all before the edit-distance DP even starts. When one
//! side of the comparison is *static* (the reference hashes of a trained
//! classifier, compared against every incoming sample), that work can be
//! paid once per hash instead of once per comparison.
//!
//! [`PreparedHash`] caches exactly that state: the run-eliminated primary
//! and double signatures plus their sorted packed window keys.
//! [`compare_prepared`] then scores two prepared hashes with the per-pair
//! work reduced to a sorted-set intersection (for the common-substring
//! guard) and the weighted edit-distance DP — and is **byte-identical** to
//! [`compare`](crate::compare::compare) on the corresponding [`FuzzyHash`]
//! pair, which the equivalence tests below enforce.

use crate::compare::{
    eliminate_long_runs, max_distance_for_score, scale_score, window_keys, MIN_COMMON_SUBSTRING,
};
use crate::fastdist::{weighted_edit_distance_bounded, BoundedDistance};
use crate::generate::FuzzyHash;

/// One signature with its comparison state precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedSignature {
    /// The signature with runs of more than three identical characters
    /// collapsed (what the edit distance actually runs on).
    eliminated: String,
    /// Sorted packed 7-byte window keys of `eliminated` (empty when the
    /// eliminated signature is shorter than the window).
    keys: Vec<u64>,
}

impl PreparedSignature {
    fn new(signature: &str) -> Self {
        let eliminated = eliminate_long_runs(signature).into_owned();
        let keys = window_keys(eliminated.as_bytes());
        Self { eliminated, keys }
    }

    /// The run-eliminated signature.
    pub fn eliminated(&self) -> &str {
        &self.eliminated
    }

    /// The sorted packed window keys of the eliminated signature.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

/// Error returned when reassembling a [`PreparedHash`] from persisted parts
/// that do not derive from the hash they claim to describe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedPartsError(String);

impl std::fmt::Display for PreparedPartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid prepared-hash parts: {}", self.0)
    }
}

impl std::error::Error for PreparedPartsError {}

/// A fuzzy hash with its per-comparison state precomputed.
///
/// Build one with [`PreparedHash::new`] (or `From<&FuzzyHash>`); compare two
/// with [`compare_prepared`]. Scores are byte-identical to
/// [`compare`](crate::compare::compare) on the underlying hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedHash {
    hash: FuzzyHash,
    primary: PreparedSignature,
    double: PreparedSignature,
}

impl PreparedHash {
    /// Precompute the comparison state of `hash`.
    pub fn new(hash: &FuzzyHash) -> Self {
        Self {
            primary: PreparedSignature::new(hash.signature()),
            double: PreparedSignature::new(hash.signature_double()),
            hash: hash.clone(),
        }
    }

    /// Reassemble a prepared hash from persisted parts without re-deriving
    /// them (used by artifact decoders — the whole point of persisting the
    /// prepared index is that loading skips the per-hash preparation).
    ///
    /// Structural invariants are always enforced — eliminated no longer
    /// than the original, window-key count consistent with the eliminated
    /// length, keys sorted — so malformed input fails cleanly. Semantic
    /// integrity (the parts byte-for-byte deriving from the hash) rests on
    /// the caller's transport guarantees, exactly as for every other
    /// persisted field (artifacts are checksummed; a writer that can forge
    /// prepared state can equally forge the hashes or the forest itself).
    /// Debug builds — which is what the test suite runs — additionally
    /// verify full derivation against a fresh preparation, so any codec bug
    /// that round-trips wrong state is caught before it ships.
    pub fn from_precomputed(
        hash: FuzzyHash,
        eliminated: String,
        keys: Vec<u64>,
        eliminated_double: String,
        keys_double: Vec<u64>,
    ) -> Result<Self, PreparedPartsError> {
        for (sig, elim, k) in [
            (hash.signature(), &eliminated, &keys),
            (hash.signature_double(), &eliminated_double, &keys_double),
        ] {
            if elim.len() > sig.len() {
                return Err(PreparedPartsError(format!(
                    "eliminated signature ({} bytes) longer than original ({} bytes)",
                    elim.len(),
                    sig.len()
                )));
            }
            let expected_keys = if elim.len() < MIN_COMMON_SUBSTRING {
                0
            } else {
                elim.len() - MIN_COMMON_SUBSTRING + 1
            };
            if k.len() != expected_keys {
                return Err(PreparedPartsError(format!(
                    "{} window keys for a {}-byte eliminated signature",
                    k.len(),
                    elim.len()
                )));
            }
            if k.windows(2).any(|w| w[0] > w[1]) {
                return Err(PreparedPartsError("window keys are not sorted".into()));
            }
        }
        let prepared = Self {
            hash,
            primary: PreparedSignature { eliminated, keys },
            double: PreparedSignature {
                eliminated: eliminated_double,
                keys: keys_double,
            },
        };
        #[cfg(debug_assertions)]
        {
            let expected = Self::new(&prepared.hash);
            if prepared.primary != expected.primary || prepared.double != expected.double {
                return Err(PreparedPartsError(format!(
                    "prepared state does not derive from hash {} \
                     (debug-only full verification)",
                    prepared.hash
                )));
            }
        }
        Ok(prepared)
    }

    /// The underlying fuzzy hash.
    pub fn hash(&self) -> &FuzzyHash {
        &self.hash
    }

    /// The block size of the underlying hash.
    pub fn block_size(&self) -> u64 {
        self.hash.block_size()
    }

    /// The prepared primary signature (chunked at `block_size`).
    pub fn primary(&self) -> &PreparedSignature {
        &self.primary
    }

    /// The prepared double signature (chunked at `2 * block_size`).
    pub fn double(&self) -> &PreparedSignature {
        &self.double
    }
}

impl From<&FuzzyHash> for PreparedHash {
    fn from(hash: &FuzzyHash) -> Self {
        Self::new(hash)
    }
}

/// Whether two sorted key sets intersect (a linear merge walk — the prepared
/// replacement for re-packing and binary-searching windows on every call).
fn sorted_keys_intersect(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Score two prepared signatures generated with the same block size (the
/// precomputed twin of [`score_strings`](crate::compare::score_strings)),
/// under a score budget.
///
/// Exact — byte-identical to the unbudgeted scoring — whenever the true
/// score is `>= min_score`; when the true score is below the budget the
/// comparison is abandoned early (often before any DP row is touched) and
/// 0 is returned. Callers folding scores with `max` therefore get
/// byte-identical maxima as long as they pass `running_max + 1`.
fn score_prepared_min(
    s1: &PreparedSignature,
    s2: &PreparedSignature,
    block_size: u64,
    min_score: u32,
) -> u32 {
    if s1.eliminated.is_empty() || s2.eliminated.is_empty() {
        return 0;
    }
    // Empty key sets mean the eliminated signature is shorter than the
    // common-substring window, which `has_common_substring` also rejects.
    if !sorted_keys_intersect(&s1.keys, &s2.keys) {
        return 0;
    }
    let len1 = s1.eliminated.len() as u64;
    let len2 = s2.eliminated.len() as u64;
    // Turn the score budget into a distance budget; a pair whose lengths
    // and block size cannot reach min_score at any distance is skipped
    // outright (min_score is clamped to >= 1 so a zero budget degenerates
    // to the exact unbudgeted comparison, never a wider one).
    let Some(limit) = max_distance_for_score(min_score.max(1), len1, len2, block_size) else {
        return 0;
    };
    match weighted_edit_distance_bounded(&s1.eliminated, &s2.eliminated, limit as usize) {
        BoundedDistance::Exact(dist) => scale_score(dist as u64, len1, len2, block_size),
        // Distance over the budget means score under min_score: the exact
        // value is irrelevant to a max-merge against min_score - 1.
        BoundedDistance::AtLeast(_) => 0,
    }
}

/// Compare two prepared hashes and return a similarity score in `0..=100`.
///
/// Byte-identical to [`compare`](crate::compare::compare) on the underlying
/// [`FuzzyHash`] pair, but with the per-comparison signature normalization
/// already paid and the edit distance computed by the banded
/// [`fastdist`](crate::fastdist) kernel: only the common-substring
/// intersection and the in-band DP cells run per pair.
pub fn compare_prepared(a: &PreparedHash, b: &PreparedHash) -> u32 {
    // min_score = 1 never prunes: a true score of 0 is returned exactly
    // (the only value below the budget), everything else beats it.
    compare_prepared_min(a, b, 1)
}

/// [`compare_prepared`] with an early-exit score budget: the result is
/// exact (byte-identical to [`compare`](crate::compare::compare)) whenever
/// it is `>= min_score`; a comparison that cannot reach `min_score` may be
/// abandoned mid-DP, returning some value `<=` the true score (usually 0).
///
/// This is the max-merge pruning primitive: folding
/// `best = best.max(compare_prepared_min(q, r, best + 1))` over a
/// reference set yields byte-identical maxima to folding the exact
/// [`compare_prepared`], while skipping most of the DP work for
/// comparisons that cannot beat the running maximum.
///
/// # Examples
///
/// ```
/// use ssdeep::{fuzzy_hash_bytes, PreparedHash, compare_prepared, compare_prepared_min};
/// let a: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
/// let mut b = a.clone();
/// b[20_000..20_400].fill(0x7F);
/// let (pa, pb) = (
///     PreparedHash::new(&fuzzy_hash_bytes(&a)),
///     PreparedHash::new(&fuzzy_hash_bytes(&b)),
/// );
/// let exact = compare_prepared(&pa, &pb);
/// // Any reachable budget reproduces the exact score…
/// assert_eq!(compare_prepared_min(&pa, &pb, exact), exact);
/// // …while an unreachable budget may abandon the comparison.
/// assert!(compare_prepared_min(&pa, &pb, exact + 1) <= exact);
/// ```
pub fn compare_prepared_min(a: &PreparedHash, b: &PreparedHash, min_score: u32) -> u32 {
    let b1 = a.hash.block_size();
    let b2 = b.hash.block_size();

    if b1 == b2
        && a.hash.signature() == b.hash.signature()
        && a.hash.signature_double() == b.hash.signature_double()
        && a.hash.signature().len() >= MIN_COMMON_SUBSTRING
    {
        // Identical hashes of non-trivial inputs are a perfect match; for
        // extremely short signatures fall through to the scoring (which caps
        // low-information matches).
        return 100;
    }

    if b1 == b2 {
        let s1 = score_prepared_min(&a.primary, &b.primary, b1, min_score);
        // The double-signature comparison only matters if it beats the
        // primary score, so its budget tightens to s1 + 1.
        let s2 = score_prepared_min(
            &a.double,
            &b.double,
            b1.saturating_mul(2),
            min_score.max(s1.saturating_add(1)),
        );
        s1.max(s2)
    } else if b2.checked_mul(2) == Some(b1) {
        score_prepared_min(&a.primary, &b.double, b1, min_score)
    } else if b1.checked_mul(2) == Some(b2) {
        score_prepared_min(&a.double, &b.primary, b2, min_score)
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare;
    use crate::generate::fuzzy_hash_bytes;

    /// Deterministic corpus of hashes covering real generated signatures,
    /// factor-of-two block sizes, small-block-size caps, short and run-heavy
    /// signatures, and adversarial near-`u64::MAX` block sizes.
    fn corpus() -> Vec<FuzzyHash> {
        let mut hashes = Vec::new();

        // Real hashes of related and unrelated inputs at several sizes (the
        // sizes straddle block-size doublings, so factor-of-two pairs occur).
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [600usize, 5_000, 20_000, 40_000, 80_000, 160_000] {
            let base: Vec<u8> = (0..len).map(|_| (next() >> 32) as u8).collect();
            hashes.push(fuzzy_hash_bytes(&base));
            // A localized edit of the same input.
            let mut variant = base.clone();
            for byte in variant.iter_mut().skip(len / 3).take(len / 20 + 1) {
                *byte ^= 0x55;
            }
            hashes.push(fuzzy_hash_bytes(&variant));
            // A doubled input (often a x2 block size).
            let mut doubled = base.clone();
            doubled.extend_from_slice(&base);
            hashes.push(fuzzy_hash_bytes(&doubled));
        }

        // Hand-built hashes: small block sizes (cap territory), identical
        // short signatures, run-heavy signatures, huge block sizes.
        let parts: [(u64, &str, &str); 10] = [
            (3, "ABCDEFGH", "ABCD"),
            (3, "ABCDEFGH", "ABCE"),
            (6, "ABCDEFGHIJKLMNOP", "ABCDEFGH"),
            (12, "ABCDEFGHIJKLMNOP", "QRSTUVWX"),
            (3, "AAAAAAAAAA", "AAAAA"),
            (3, "AAAAAAAAAB", "AAAAA"),
            (96, "MNBVCXZLKJHGFDSA", "MNBVCXZL"),
            (192, "MNBVCXZLKJHGFDSA", "POIUYTRE"),
            (u64::MAX, "ABCDEFGHIJKL", "ABCDEF"),
            (u64::MAX / 2 + 1, "ABCDEFGHIJKL", "ABCDEF"),
        ];
        for (bs, s1, s2) in parts {
            hashes.push(FuzzyHash::from_parts(bs, s1.into(), s2.into()).unwrap());
        }
        hashes
    }

    #[test]
    fn compare_prepared_matches_compare_across_corpus() {
        let hashes = corpus();
        let prepared: Vec<PreparedHash> = hashes.iter().map(PreparedHash::new).collect();
        let mut compatible_pairs = 0;
        for (i, (ha, pa)) in hashes.iter().zip(&prepared).enumerate() {
            for (hb, pb) in hashes.iter().zip(&prepared) {
                let plain = compare(ha, hb);
                let fast = compare_prepared(pa, pb);
                assert_eq!(
                    plain, fast,
                    "hash {i}: compare({ha}, {hb}) = {plain} but prepared gave {fast}"
                );
                if ha.comparable_with(hb) {
                    compatible_pairs += 1;
                }
            }
        }
        // The corpus must actually exercise the interesting branches.
        assert!(compatible_pairs > hashes.len(), "corpus too disjoint");
    }

    #[test]
    fn prepared_roundtrips_through_parts() {
        for hash in corpus() {
            let prepared = PreparedHash::new(&hash);
            let rebuilt = PreparedHash::from_precomputed(
                hash.clone(),
                prepared.primary().eliminated().to_string(),
                prepared.primary().keys().to_vec(),
                prepared.double().eliminated().to_string(),
                prepared.double().keys().to_vec(),
            )
            .expect("parts produced by new() are valid");
            assert_eq!(rebuilt, prepared);
            assert_eq!(rebuilt.hash(), &hash);
            assert_eq!(rebuilt.block_size(), hash.block_size());
        }
    }

    #[test]
    fn from_precomputed_rejects_inconsistent_parts() {
        let hash: FuzzyHash = "3:ABCDEFGHIJ:ABCDE".parse().unwrap();
        let prepared = PreparedHash::new(&hash);
        let elim = prepared.primary().eliminated().to_string();
        let keys = prepared.primary().keys().to_vec();
        let elim2 = prepared.double().eliminated().to_string();
        let keys2 = prepared.double().keys().to_vec();

        // Wrong key count.
        assert!(PreparedHash::from_precomputed(
            hash.clone(),
            elim.clone(),
            keys[..keys.len() - 1].to_vec(),
            elim2.clone(),
            keys2.clone(),
        )
        .is_err());

        // Unsorted keys.
        let mut reversed = keys.clone();
        reversed.reverse();
        let unsorted = PreparedHash::from_precomputed(
            hash.clone(),
            elim.clone(),
            reversed.clone(),
            elim2.clone(),
            keys2.clone(),
        );
        if reversed != keys {
            assert!(unsorted.is_err());
        }

        // Eliminated longer than the original signature.
        assert!(PreparedHash::from_precomputed(
            hash.clone(),
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ".into(),
            window_keys(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"),
            elim2.clone(),
            keys2.clone(),
        )
        .is_err());

        // Structurally consistent (right length, sorted keys that match the
        // fake eliminated string) but not derived from the hash: the
        // debug-build full verification rejects it, so a codec bug that
        // round-trips wrong prepared state can never survive the test suite.
        #[cfg(debug_assertions)]
        {
            let fake_elim = "ABCDEFGHIK".to_string(); // one char off, same length
            assert_ne!(fake_elim, elim);
            assert!(PreparedHash::from_precomputed(
                hash,
                fake_elim.clone(),
                window_keys(fake_elim.as_bytes()),
                elim2,
                keys2,
            )
            .is_err());
        }
    }

    #[test]
    fn sorted_intersection_matches_naive() {
        assert!(sorted_keys_intersect(&[1, 3, 5], &[2, 3, 4]));
        assert!(!sorted_keys_intersect(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_keys_intersect(&[], &[1]));
        assert!(!sorted_keys_intersect(&[], &[]));
        assert!(sorted_keys_intersect(&[7, 7, 7], &[7]));
    }

    #[test]
    fn prepared_self_comparison_is_maximal() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let p = PreparedHash::new(&fuzzy_hash_bytes(&data));
        assert_eq!(compare_prepared(&p, &p), 100);
    }
}
