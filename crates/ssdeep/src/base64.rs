//! The base64 alphabet used for SSDeep signature characters.
//!
//! SSDeep signatures are strings over the standard base64 alphabet
//! (`A–Z a–z 0–9 + /`). Each chunk contributes a single character: the
//! alphabet entry selected by the low six bits of the chunk's FNV hash.

/// The 64-character alphabet, in SSDeep/spamsum order.
pub const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Map a 6-bit index to its signature character.
///
/// # Panics
///
/// Panics if `index >= 64`.
#[inline]
pub fn encode(index: usize) -> char {
    B64[index] as char
}

/// Whether `c` is a valid signature character.
pub fn is_valid_char(c: char) -> bool {
    c.is_ascii() && B64.contains(&(c as u8))
}

/// Whether an entire signature string consists only of valid characters.
pub fn is_valid_signature(s: &str) -> bool {
    s.chars().all(is_valid_char)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_has_64_unique_chars() {
        use std::collections::HashSet;
        let set: HashSet<u8> = B64.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn encode_first_and_last() {
        assert_eq!(encode(0), 'A');
        assert_eq!(encode(25), 'Z');
        assert_eq!(encode(26), 'a');
        assert_eq!(encode(63), '/');
    }

    #[test]
    #[should_panic]
    fn encode_out_of_range_panics() {
        let _ = encode(64);
    }

    #[test]
    fn validity_checks() {
        assert!(is_valid_char('A'));
        assert!(is_valid_char('/'));
        assert!(!is_valid_char(':'));
        assert!(!is_valid_char(' '));
        assert!(is_valid_signature("AbC123+/"));
        assert!(!is_valid_signature("AbC 123"));
        assert!(is_valid_signature(""));
    }
}
