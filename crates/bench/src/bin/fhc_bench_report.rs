//! `fhc-bench-report` — merge raw bench runs into the committed
//! `BENCH_serving.json` trajectory file.
//!
//! The vendored bench harness writes one raw-run JSON per bench binary when
//! `FHC_BENCH_JSON=path` is set (schema `fhc-bench-run/v1`: a flat list of
//! `{label, median_ns, ...}`). This tool merges one or more raw runs into a
//! report that carries a *baseline* section next to the *current* one and
//! the per-label median speedups, so the perf trajectory of the serving hot
//! path is tracked in-repo from one measurement to the next:
//!
//! ```text
//! fhc-bench-report OUT.json --current RUN.json [RUN2.json ...] \
//!                           [--baseline PRIOR.json] [--fail-below X]
//! ```
//!
//! `PRIOR.json` may be a raw run or a previous report; for a report, its
//! `current` section becomes the new baseline (so pointing `--baseline` at
//! the committed `BENCH_serving.json` compares against the last recorded
//! measurement). Without `--baseline`, the report records the current run
//! as its own baseline — the form used to seed the trajectory.
//!
//! `--fail-below X` exits non-zero when any baselined label's speedup
//! drops under `X` — the CI regression gate. The report is still written
//! first, so the artifact always shows *which* label collapsed. CI uses a
//! deliberately loose threshold: quick-mode medians on shared runners are
//! noisy and the committed baseline comes from a different machine, so
//! the gate is meant to catch a kernel falling off a cliff, not a few
//! percent of drift.

use std::fmt::Write as _;
use std::process::ExitCode;

/// One benchmark's median, as extracted from a run or report file.
#[derive(Debug, Clone)]
struct Entry {
    label: String,
    median_ns: f64,
}

/// Extract `{"label": ..., "median_ns": ...}` entries from harness JSON.
///
/// Both the raw-run schema and the report sections write one result object
/// per line, so a line scanner is enough — no general JSON parser needed
/// in this dependency-free workspace.
fn extract_entries(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(label) = field_str(line, "label") else {
            continue;
        };
        let Some(median_ns) = field_num(line, "median_ns") else {
            continue;
        };
        entries.push(Entry { label, median_ns });
    }
    entries
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, name: &str) -> Option<f64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The baseline entries of a prior file: the `current` section of a report,
/// or every entry of a raw run.
fn extract_baseline(text: &str) -> Vec<Entry> {
    match text.find("\"current\"") {
        Some(pos) => extract_entries(&text[pos..]),
        None => extract_entries(text),
    }
}

fn render_entries(out: &mut String, entries: &[Entry]) {
    out.push_str("    \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"label\": \"{}\", \"median_ns\": {:.1}}}{comma}",
            e.label, e.median_ns
        );
    }
    out.push_str("    ]\n");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut current_paths = Vec::new();
    let mut baseline_path = None;
    let mut fail_below = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--current" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    current_paths.push(args[i].clone());
                    i += 1;
                }
            }
            "--baseline" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--baseline needs a path");
                    return ExitCode::FAILURE;
                }
                baseline_path = Some(args[i].clone());
                i += 1;
            }
            "--fail-below" => {
                i += 1;
                let parsed = args.get(i).and_then(|v| v.parse::<f64>().ok());
                let Some(threshold) = parsed else {
                    eprintln!("--fail-below needs a number");
                    return ExitCode::FAILURE;
                };
                fail_below = Some(threshold);
                i += 1;
            }
            other if out_path.is_none() => {
                out_path = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(out_path), false) = (out_path, current_paths.is_empty()) else {
        eprintln!(
            "usage: fhc-bench-report OUT.json --current RUN.json [RUN.json ...] \
             [--baseline PRIOR.json] [--fail-below X]"
        );
        return ExitCode::FAILURE;
    };

    let mut current = Vec::new();
    for path in &current_paths {
        match std::fs::read_to_string(path) {
            Ok(text) => current.extend(extract_entries(&text)),
            Err(e) => {
                eprintln!("cannot read current run {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if current.is_empty() {
        eprintln!("no results found in {current_paths:?}");
        return ExitCode::FAILURE;
    }
    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let entries = extract_baseline(&text);
                if entries.is_empty() {
                    eprintln!("no baseline results found in {path}");
                    return ExitCode::FAILURE;
                }
                entries
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => current.clone(),
    };

    let mut out = String::from("{\n  \"schema\": \"fhc-bench-report/v1\",\n");
    out.push_str("  \"unit\": \"median ns/op\",\n");
    out.push_str("  \"baseline\": {\n");
    render_entries(&mut out, &baseline);
    out.push_str("  },\n  \"current\": {\n");
    render_entries(&mut out, &current);
    out.push_str("  },\n  \"speedup_median\": [\n");
    let speedups: Vec<(String, f64)> = current
        .iter()
        .filter_map(|c| {
            let b = baseline.iter().find(|b| b.label == c.label)?;
            (c.median_ns > 0.0).then(|| (c.label.clone(), b.median_ns / c.median_ns))
        })
        .collect();
    for (i, (label, x)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"label\": \"{label}\", \"x\": {x:.2}}}{comma}");
    }
    out.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &out) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} current labels, {} baselined",
        current.len(),
        speedups.len()
    );
    if let Some(threshold) = fail_below {
        let regressed: Vec<&(String, f64)> =
            speedups.iter().filter(|(_, x)| *x < threshold).collect();
        if !regressed.is_empty() {
            for (label, x) in &regressed {
                eprintln!("REGRESSION: {label} at {x:.2}x of baseline (< {threshold})");
            }
            return ExitCode::FAILURE;
        }
        println!("all {} baselined labels >= {threshold}x", speedups.len());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUN: &str = r#"{
  "schema": "fhc-bench-run/v1",
  "quick": false,
  "results": [
    {"label": "g/a", "median_ns": 100.0, "mean_ns": 110.0, "min_ns": 90.0, "iters": 5},
    {"label": "g/b", "median_ns": 2000.5, "mean_ns": 2100.0, "min_ns": 1900.0, "iters": 3}
  ]
}"#;

    #[test]
    fn extracts_raw_run_entries() {
        let entries = extract_entries(RUN);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "g/a");
        assert_eq!(entries[0].median_ns, 100.0);
        assert_eq!(entries[1].median_ns, 2000.5);
    }

    #[test]
    fn baseline_of_report_is_its_current_section() {
        let report = "{\n\"baseline\": {\n\"results\": [\n{\"label\": \"g/a\", \"median_ns\": 999.0}\n]},\n\"current\": {\n\"results\": [\n{\"label\": \"g/a\", \"median_ns\": 50.0}\n]}\n}";
        let entries = extract_baseline(report);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].median_ns, 50.0);
        // A raw run falls back to all entries.
        assert_eq!(extract_baseline(RUN).len(), 2);
    }
}
