//! Shared fixtures for the Criterion benchmarks.
//!
//! Every bench regenerates a piece of the paper's evaluation (see
//! `DESIGN.md`, experiments E1–E9 and B1–B5). The helpers here build small
//! deterministic corpora and feature sets so individual benches stay fast on
//! a single-core machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use corpus::{Catalog, Corpus, CorpusBuilder};
use fhc::config::FhcConfig;
use fhc::features::SampleFeatures;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};

/// Deterministic pseudo-random bytes with local structure (stand-in for an
/// executable of `len` bytes).
pub fn synthetic_bytes(len: usize, salt: u64) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let x = (i.wrapping_add(salt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x >> 29) as u8
        })
        .collect()
}

/// A small benchmark corpus (all 92 classes, few samples each).
pub fn bench_corpus(scale: f64, seed: u64) -> Corpus {
    CorpusBuilder::new(seed).build(&Catalog::paper().scaled(scale))
}

/// Unified configuration used by the benchmark harness (modest forest so a
/// single iteration stays in the tens-of-seconds range at bench scale;
/// default runtime layers).
pub fn bench_config(seed: u64) -> FhcConfig {
    FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 30,
            ..Default::default()
        },
        ..Default::default()
    })
}

/// Extract features for every sample of a corpus.
pub fn extract_all(corpus: &Corpus, config: &FhcConfig) -> Vec<SampleFeatures> {
    FuzzyHashClassifier::with_config(config.clone()).extract_features(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(synthetic_bytes(128, 1), synthetic_bytes(128, 1));
        assert_ne!(synthetic_bytes(128, 1), synthetic_bytes(128, 2));
        let corpus = bench_corpus(0.02, 3);
        assert_eq!(corpus.n_classes(), 92);
        let config = bench_config(3);
        let features = extract_all(&corpus, &config);
        assert_eq!(features.len(), corpus.n_samples());
    }
}
