//! B2 — executable analysis throughput: ELF build/parse, `strings`, `nm`,
//! and full three-view feature extraction (the per-sample cost of the
//! paper's feature-extraction stage).

use binary::elf::{ElfBuilder, ElfFile};
use binary::strings::strings_blob;
use binary::symbols::symbols_blob;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fhc::features::SampleFeatures;
use fhc_bench::synthetic_bytes;
use std::hint::black_box;

fn build_sample_elf() -> Vec<u8> {
    let mut b = ElfBuilder::new();
    b.add_text_section(synthetic_bytes(96_000, 3));
    let mut rodata = Vec::new();
    for i in 0..200 {
        rodata.extend_from_slice(
            format!("diagnostic message number {i} with detail %s\0").as_bytes(),
        );
    }
    b.add_rodata_section(rodata);
    for i in 0..250 {
        b.add_global_function(
            &format!("application_kernel_routine_{i}"),
            (i * 380) as u64,
            380,
        );
    }
    b.build()
}

fn bench_elf(c: &mut Criterion) {
    let bytes = build_sample_elf();
    let mut group = c.benchmark_group("binary/elf");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| ElfFile::parse(black_box(&bytes)).expect("parse"))
    });
    group.bench_function("build", |b| b.iter(build_sample_elf));
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let bytes = build_sample_elf();
    let elf = ElfFile::parse(&bytes).unwrap();
    let mut group = c.benchmark_group("binary/views");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("strings_blob", |b| {
        b.iter(|| strings_blob(black_box(&bytes), 4))
    });
    group.bench_function("symbols_blob", |b| b.iter(|| symbols_blob(black_box(&elf))));
    group.bench_function("full_feature_extraction", |b| {
        b.iter(|| SampleFeatures::extract(black_box(&bytes)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_elf, bench_views
}
criterion_main!(benches);
