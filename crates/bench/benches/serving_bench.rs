//! Serving throughput: samples/second through a trained classifier.
//!
//! This is the number the ROADMAP's serving trajectory cares about: once
//! `fit` has paid the training cost, how fast can `classify_batch` score a
//! stream of new executables? Measured end-to-end (feature extraction +
//! similarity row + forest vote), for the pre-hashed hot path, and —
//! crucially — **prepared vs unprepared**: the same batch pushed through the
//! precomputed similarity index versus the pre-index scan that re-normalized
//! every reference signature on every comparison (the serving path before
//! the index existed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fhc::artifact::ArtifactDelta;
use fhc::backend::{round_robin_partition, BackendConfig};
use fhc::features::{PreparedSampleFeatures, SampleFeatures};
use fhc::pipeline::FuzzyHashClassifier;
use fhc::serving::Prediction;
use fhc::shardnet::wire::{self, Frame};
use fhc::shardnet::worker::{serve_host_tcp, serve_tcp};
use fhc::shardnet::{
    gateway, Endpoint, FleetBackend, FleetShard, FleetTopology, FleetView, Gateway, GatewayBackend,
    GatewayOptions, RemoteBackend, ShardWorker, TenantHost, Transport,
};
use fhc::threshold::{apply_threshold, UNKNOWN_LABEL};
use fhc_bench::{bench_config, bench_corpus};
use hpcutil::{par_map_indexed, ParallelConfig};
use mlcore::model::Model;
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spawn `n` in-process loopback shard workers over the classifier's
/// reference set and return a `remote:` backend configuration for them.
/// The accept threads live for the rest of the process.
fn loopback_remote(trained: &fhc::serving::TrainedClassifier, n: usize) -> BackendConfig {
    let endpoints: Vec<Endpoint> = (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let worker = Arc::new(ShardWorker::all_classes(trained.reference_shared()));
            std::thread::spawn(move || serve_tcp(worker, listener));
            endpoint
        })
        .collect();
    BackendConfig::remote(endpoints)
}

/// Spawn `n` loopback shard workers with explicit round-robin partitions
/// (no over-the-wire assignment needed) and return their endpoints.
fn loopback_partitioned(trained: &fhc::serving::TrainedClassifier, n: usize) -> Vec<Endpoint> {
    let reference = trained.reference_shared();
    round_robin_partition(reference.n_classes(), n)
        .into_iter()
        .map(|classes| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let worker = Arc::new(
                ShardWorker::new(Arc::clone(&reference), classes).expect("valid partition"),
            );
            std::thread::spawn(move || serve_tcp(worker, listener));
            endpoint
        })
        .collect()
}

/// A crude WAN simulator: a TCP relay that store-and-forwards each burst
/// of bytes after a 500us one-way delay, so every round trip through it
/// pays ~1ms of latency — the regime a distributed shard fleet actually
/// serves in. Benching over raw loopback would hide exactly the cost the
/// connection multiplexer and the batched wire frames exist to amortize:
/// a lock-held round trip per query pays the link once *per query*, a
/// batched frame pays it once *per chunk*.
fn delayed_link(upstream: Endpoint, delay: std::time::Duration) -> Endpoint {
    use std::io::{Read, Write};
    let upstream = match upstream {
        Endpoint::Tcp(addr) => addr,
        other => panic!("delayed_link fronts TCP endpoints, got {other}"),
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind relay");
    let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(down) = stream else { return };
            let Ok(up) = std::net::TcpStream::connect(&upstream) else {
                return;
            };
            down.set_nodelay(true).ok();
            up.set_nodelay(true).ok();
            let pump = |mut from: std::net::TcpStream, mut to: std::net::TcpStream| {
                move || {
                    let mut buf = vec![0u8; 256 << 10];
                    loop {
                        match from.read(&mut buf) {
                            Ok(0) | Err(_) => {
                                let _ = to.shutdown(std::net::Shutdown::Write);
                                return;
                            }
                            Ok(n) => {
                                std::thread::sleep(delay);
                                if to.write_all(&buf[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
            };
            let (down2, up2) = (down.try_clone().unwrap(), up.try_clone().unwrap());
            std::thread::spawn(pump(down, up));
            std::thread::spawn(pump(up2, down2));
        }
    });
    endpoint
}

/// The pre-mux remote client, kept bench-local as the pipelining baseline:
/// one connection per worker guarded by a mutex that is **held across the
/// whole round trip**, workers visited serially per query. This is exactly
/// how `RemoteBackend` serialized concurrent callers before it moved to a
/// connection multiplexer, so the `serving/gateway` group measures what
/// the mux + gateway batching actually buy at N concurrent clients.
struct MutexedRemote {
    workers: Vec<Mutex<Box<dyn Transport>>>,
    next_id: AtomicU64,
}

impl MutexedRemote {
    fn connect(endpoints: &[Endpoint]) -> Self {
        let workers = endpoints
            .iter()
            .map(|endpoint| {
                let mut conn = endpoint.connect().expect("dial loopback worker");
                match Frame::read_from(&mut conn, "bench").expect("handshake") {
                    Frame::Hello(_) => {}
                    other => panic!("expected Hello, got {other:?}"),
                }
                Mutex::new(conn)
            })
            .collect();
        Self {
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    fn score_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        out.fill(0.0);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = wire::score_request_bytes(id, query);
        for conn in &self.workers {
            let mut conn = conn.lock().expect("bench worker lock");
            wire::write_raw_frame(&mut **conn, &bytes, "bench").expect("write request");
            match Frame::read_from(&mut **conn, "bench").expect("read response") {
                Frame::ScoreResponse(response) => {
                    for (column, score) in response.cells {
                        let column = column as usize;
                        out[column] = out[column].max(score);
                    }
                }
                other => panic!("expected ScoreResponse, got {other:?}"),
            }
        }
    }
}

/// Score every probe once, split across `clients` concurrent frontends —
/// each client thread hands its whole chunk to `serve` (a backend's batch
/// row path), the access pattern of N serving processes each classifying
/// a batch. The interesting difference is what `serve` does with a chunk:
/// the mutexed baseline can only play lock-held ping-pong per query; the
/// mux pipelines and batches the chunk onto the wire.
fn concurrent_rows<F>(probes: &[PreparedSampleFeatures], clients: usize, serve: F)
where
    F: Fn(&[PreparedSampleFeatures]) + Sync,
{
    let chunk = probes.len().div_ceil(clients);
    let serve = &serve;
    std::thread::scope(|scope| {
        for part in probes.chunks(chunk) {
            scope.spawn(move || serve(part));
        }
    });
}

fn bench_classify_batch(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 42);
    let trained = FuzzyHashClassifier::with_config(bench_config(42))
        .fit(&corpus)
        .expect("training succeeds");

    // Serve every corpus sample as if it were new traffic.
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let features: Vec<SampleFeatures> = batch
        .iter()
        .map(|(_, bytes)| SampleFeatures::extract(bytes))
        .collect();

    // The pre-index serving path, mirroring the old `classify_batch` 1:1:
    // per sample — inside the parallel region, with the formerly hardcoded
    // parallelism — extract features, scan every reference hash with plain
    // `ssdeep::compare` (re-eliminating and re-packing signatures per
    // comparison), vote, threshold, and build the full `Prediction`.
    let classify_batch_unprepared = |samples: &[(String, Vec<u8>)]| -> Vec<(String, Prediction)> {
        par_map_indexed(
            samples.len(),
            ParallelConfig {
                threads: 0,
                chunk: 2,
            },
            |i| {
                let (name, bytes) = &samples[i];
                let extracted = SampleFeatures::extract(bytes);
                let row = trained.reference().feature_vector_scan(&extracted);
                let proba = Model::predict_proba(trained.forest(), &row);
                let eval_label = apply_threshold(&proba, trained.confidence_threshold());
                let confidence = proba.iter().cloned().fold(0.0f64, f64::max);
                let label = if eval_label == UNKNOWN_LABEL {
                    "-1".to_string()
                } else {
                    trained.known_class_names()[eval_label - 1].clone()
                };
                (
                    name.clone(),
                    Prediction {
                        label,
                        eval_label,
                        confidence,
                        proba,
                    },
                )
            },
        )
    };

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("classify_batch_from_bytes", |b| {
        b.iter(|| trained.classify_batch(black_box(&batch)))
    });
    group.bench_function("classify_batch_unprepared_scan", |b| {
        b.iter(|| classify_batch_unprepared(black_box(&batch)))
    });
    group.bench_function("classify_batch_prehashed", |b| {
        b.iter(|| trained.classify_features_batch(black_box(&features)))
    });
    group.finish();

    // The similarity rows in isolation (no extraction, no forest): the
    // purest view of what the prepared index buys per comparison.
    let mut group = c.benchmark_group("serving/feature_rows");
    group.sample_size(10);
    group.throughput(Throughput::Elements(features.len() as u64));
    group.bench_function("prepared_index", |b| {
        b.iter(|| trained.reference().feature_matrix(black_box(&features)))
    });
    group.bench_function("unprepared_scan", |b| {
        b.iter(|| {
            trained
                .reference()
                .feature_matrix_scan(black_box(&features))
        })
    });
    group.finish();

    // Sharded (persistent worker pool) vs indexed vs scan vs loopback
    // remote: the same classify_batch traffic under each similarity
    // backend (backend choice is runtime-only and score-identical, so this
    // group measures pure scheduling/transport overhead — what per-query
    // class sharding costs or buys, and what putting the shards behind a
    // socket adds on top).
    let mut group = c.benchmark_group("serving/backends");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for (label, backend) in [
        ("classify_batch_indexed", BackendConfig::Indexed),
        (
            "classify_batch_sharded_pooled_2",
            BackendConfig::Sharded { shards: 2 },
        ),
        (
            "classify_batch_sharded_pooled_4",
            BackendConfig::Sharded { shards: 4 },
        ),
        (
            "classify_batch_sharded_pooled_auto",
            BackendConfig::Sharded { shards: 0 },
        ),
        (
            "classify_batch_remote_loopback_2",
            loopback_remote(&trained, 2),
        ),
        ("classify_batch_scan", BackendConfig::Scan),
    ] {
        let swapped = trained.clone().with_backend(backend);
        group.bench_function(label, |b| {
            b.iter(|| swapped.classify_batch(black_box(&batch)))
        });
    }
    group.finish();

    // Single-query latency per backend: where per-query fan-out is meant
    // to shine (one query split across shard workers). The pooled sharded
    // backend replaces PR 3's per-query scoped-thread spawns; the loopback
    // remote number is the wire tax on the same partition/max-merge
    // contract.
    let mut group = c.benchmark_group("serving/single");
    group.throughput(Throughput::Elements(1));
    group.bench_function("classify_one", |b| {
        b.iter(|| trained.classify(black_box(&batch[0].1)))
    });
    let sharded = trained
        .clone()
        .with_backend(BackendConfig::Sharded { shards: 0 });
    group.bench_function("classify_one_sharded_pooled_auto", |b| {
        b.iter(|| sharded.classify(black_box(&batch[0].1)))
    });
    group.finish();

    // Remote serving in isolation: loopback-remote vs pooled-sharded vs
    // indexed on identical single-query traffic. Everything above the
    // indexed number is scheduling (sharded) or scheduling + framing +
    // syscalls (remote).
    let mut group = c.benchmark_group("serving/remote");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("classify_one_indexed", |b| {
        b.iter(|| trained.classify(black_box(&batch[0].1)))
    });
    let sharded2 = trained
        .clone()
        .with_backend(BackendConfig::Sharded { shards: 2 });
    group.bench_function("classify_one_sharded_pooled_2", |b| {
        b.iter(|| sharded2.classify(black_box(&batch[0].1)))
    });
    for workers in [1usize, 2, 4] {
        let remote = trained
            .clone()
            .with_backend(loopback_remote(&trained, workers));
        group.bench_function(format!("classify_one_remote_loopback_{workers}"), |b| {
            b.iter(|| remote.classify(black_box(&batch[0].1)))
        });
    }
    group.finish();

    // The gateway tier vs the pre-mux baseline: identical probes, identical
    // two-worker fleets, scored concurrently by 1/2/4 client threads. The
    // mutexed baseline serializes callers behind per-connection locks held
    // across round trips; the pipelined RemoteBackend multiplexes them over
    // the same sockets; the gateway additionally coalesces the concurrent
    // queries into batched wire frames per shard. Raw rows (no extraction,
    // no forest) so the transport difference is what is measured.
    let reference = trained.reference_shared();
    let n_columns = reference.n_columns();
    let probes: Vec<PreparedSampleFeatures> = features
        .iter()
        .take(48)
        .map(PreparedSampleFeatures::prepare)
        .collect();

    // Every client crosses exactly one simulated 500us link: the direct
    // backends dial their two workers through it; the gateway clients dial
    // the gateway through it, and the gateway reaches its fleet over
    // loopback (it fronts the cluster the workers live in).
    let wan = std::time::Duration::from_micros(500);
    let mutexed = MutexedRemote::connect(
        &loopback_partitioned(&trained, 2)
            .into_iter()
            .map(|ep| delayed_link(ep, wan))
            .collect::<Vec<_>>(),
    );
    let batched_endpoints: Vec<Endpoint> = loopback_partitioned(&trained, 2)
        .into_iter()
        .map(|ep| delayed_link(ep, wan))
        .collect();
    let pipelined = RemoteBackend::connect(reference.clone(), &batched_endpoints)
        .expect("pipelined remote connects");
    let front = {
        let gw = Gateway::connect(
            reference.clone(),
            &loopback_partitioned(&trained, 2),
            GatewayOptions::default(),
        )
        .expect("gateway connects its fleet");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback gateway");
        let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
        let gw = Arc::new(gw);
        std::thread::spawn(move || gateway::serve_tcp(gw, listener));
        delayed_link(endpoint, wan)
    };
    let through_gateway =
        GatewayBackend::connect(reference.clone(), &front).expect("gateway backend connects");

    let mut group = c.benchmark_group("serving/gateway");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probes.len() as u64));
    for clients in [1usize, 2, 4] {
        group.bench_function(format!("rows_mutexed_remote_{clients}_clients"), |b| {
            b.iter(|| {
                concurrent_rows(&probes, clients, |part| {
                    let mut out = vec![0.0f64; n_columns];
                    for query in part {
                        mutexed.score_into(query, &mut out);
                        black_box(&mut out);
                    }
                })
            })
        });
        group.bench_function(format!("rows_batched_remote_{clients}_clients"), |b| {
            b.iter(|| {
                concurrent_rows(&probes, clients, |part| {
                    black_box(
                        pipelined
                            .try_feature_rows_prepared(part)
                            .expect("workers alive"),
                    );
                })
            })
        });
        group.bench_function(format!("rows_pipelined_gateway_{clients}_clients"), |b| {
            b.iter(|| {
                concurrent_rows(&probes, clients, |part| {
                    black_box(
                        through_gateway
                            .try_feature_rows_prepared(part)
                            .expect("fleet alive"),
                    );
                })
            })
        });
    }
    group.finish();

    // The fleet tier's hedged requests vs a plain fleet, with one slow
    // worker in both: shard 0's primary sits behind a simulated 10ms slow
    // link, shard 1 is healthy. The unhedged fleet pays the slow link on
    // every batch; the hedged fleet fires shard 0's loopback replica after
    // the rolling-percentile deadline, so the slow primary stops defining
    // the tail after the first few requests.
    let slow = std::time::Duration::from_millis(10);
    let parts = round_robin_partition(reference.n_classes(), 2);
    let spawn_part = |classes: Vec<usize>| -> Endpoint {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
        let worker =
            Arc::new(ShardWorker::new(reference.clone(), classes).expect("valid partition"));
        std::thread::spawn(move || serve_tcp(worker, listener));
        endpoint
    };
    let slow_primary = delayed_link(spawn_part(parts[0].clone()), slow);
    let fast_replica = spawn_part(parts[0].clone());
    let steady = spawn_part(parts[1].clone());
    let hedged = FleetBackend::connect(
        reference.clone(),
        FleetTopology::new(vec![
            FleetShard {
                primary: slow_primary.clone(),
                replicas: vec![fast_replica],
            },
            FleetShard::solo(steady.clone()),
        ]),
    )
    .expect("hedged fleet connects");
    let unhedged = FleetBackend::connect(
        reference.clone(),
        FleetTopology::new(vec![
            FleetShard::solo(slow_primary),
            FleetShard::solo(steady),
        ]),
    )
    .expect("unhedged fleet connects");
    let fleet_probes = &probes[..8];

    let mut group = c.benchmark_group("serving/fleet");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fleet_probes.len() as u64));
    group.bench_function("rows_unhedged_slow_primary", |b| {
        b.iter(|| {
            black_box(
                unhedged
                    .try_feature_rows_prepared(fleet_probes)
                    .expect("fleet alive"),
            )
        })
    });
    group.bench_function("rows_hedged_slow_primary", |b| {
        b.iter(|| {
            black_box(
                hedged
                    .try_feature_rows_prepared(fleet_probes)
                    .expect("fleet alive"),
            )
        })
    });
    group.finish();

    // Multi-tenant serving: tenant selection happens once per connection
    // at handshake time, so a daemon hosting several reference sets must
    // serve per-query traffic at the same speed as a single-tenant one —
    // this pair of labels keeps that a recorded number, not an assumption.
    let spawn_host = |host: TenantHost| -> Endpoint {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
        let host = Arc::new(host);
        std::thread::spawn(move || serve_host_tcp(host, listener));
        endpoint
    };
    let single_ep = spawn_host(TenantHost::single(Some(ShardWorker::all_classes(
        reference.clone(),
    ))));
    let multi_ep = {
        let mut host = TenantHost::new();
        for name in ["acme", "beta", "gamma", "delta"] {
            host.register(name, Some(ShardWorker::all_classes(reference.clone())))
                .expect("register tenant");
        }
        spawn_host(host)
    };
    let one_tenant = RemoteBackend::connect(reference.clone(), std::slice::from_ref(&single_ep))
        .expect("single-tenant daemon serves the default tenant");
    let four_tenants = RemoteBackend::connect_tenant(
        reference.clone(),
        std::slice::from_ref(&multi_ep),
        Some("gamma"),
    )
    .expect("multi-tenant daemon routes the connection");

    // Rolling upgrades: evolve the last reference class by one sample, so
    // the delta carries a single class slice. Each iteration resets the
    // push-capable worker to the base set (identical cost in both
    // variants), then upgrades it to the target through an admit — by a
    // full per-class re-seed, or by the registered delta. The gap between
    // the two medians is what shipping a delta instead of every class
    // slice buys on the wire.
    let mut evolved = (*reference).clone();
    let last = reference.n_classes() - 1;
    evolved
        .add_samples(
            last,
            vec![PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                b"a freshly observed variant of the final reference class",
            ))],
        )
        .expect("extend the last class");
    let target = Arc::new(evolved);
    let delta = ArtifactDelta::between(&reference, &target).expect("diff the evolution");
    let upgradeable = spawn_host(TenantHost::single(None)); // diskless, push-capable
    let healthy = {
        // Already holds the target set, so connecting never re-pushes it.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
        let worker = Arc::new(ShardWorker::all_classes(target.clone()));
        std::thread::spawn(move || serve_tcp(worker, listener));
        endpoint
    };
    let upgrade = |with_delta: bool| {
        FleetView::connect(
            reference.clone(),
            FleetTopology::new(vec![FleetShard::solo(upgradeable.clone())]),
        )
        .expect("reset the worker to the base set by full push");
        let view = FleetView::connect(
            target.clone(),
            FleetTopology::new(vec![FleetShard::solo(healthy.clone())]),
        )
        .expect("target fleet connects");
        if with_delta {
            view.register_delta(delta.clone()).expect("register delta");
        }
        view.admit(FleetShard::solo(upgradeable.clone()))
            .expect("admit upgrades the stale worker");
    };

    let mut group = c.benchmark_group("serving/tenant");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("rows_1_tenant_daemon", |b| {
        b.iter(|| {
            black_box(
                one_tenant
                    .try_feature_rows_prepared(&probes)
                    .expect("daemon alive"),
            )
        })
    });
    group.bench_function("rows_4_tenant_daemon", |b| {
        b.iter(|| {
            black_box(
                four_tenants
                    .try_feature_rows_prepared(&probes)
                    .expect("daemon alive"),
            )
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("upgrade_full_push", |b| b.iter(|| upgrade(false)));
    group.bench_function("upgrade_delta_patch", |b| b.iter(|| upgrade(true)));
    group.finish();

    // Artifact round trip: the cost of loading a model into a new process.
    let bytes = trained.to_bytes();
    let mut group = c.benchmark_group("serving/artifact");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("to_bytes", |b| b.iter(|| trained.to_bytes()));
    group.bench_function("from_bytes", |b| {
        b.iter(|| fhc::serving::TrainedClassifier::from_bytes(black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classify_batch
}
criterion_main!(benches);
