//! Serving throughput: samples/second through a trained classifier.
//!
//! This is the number the ROADMAP's serving trajectory cares about: once
//! `fit` has paid the training cost, how fast can `classify_batch` score a
//! stream of new executables? Measured end-to-end (feature extraction +
//! similarity row + forest vote) and for the pre-hashed hot path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fhc::features::SampleFeatures;
use fhc::pipeline::FuzzyHashClassifier;
use fhc_bench::{bench_config, bench_corpus};
use std::hint::black_box;

fn bench_classify_batch(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 42);
    let trained = FuzzyHashClassifier::new(bench_config(42))
        .fit(&corpus)
        .expect("training succeeds");

    // Serve every corpus sample as if it were new traffic.
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let features: Vec<SampleFeatures> = batch
        .iter()
        .map(|(_, bytes)| SampleFeatures::extract(bytes))
        .collect();

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("classify_batch_from_bytes", |b| {
        b.iter(|| trained.classify_batch(black_box(&batch)))
    });
    group.bench_function("classify_batch_prehashed", |b| {
        b.iter(|| trained.classify_features_batch(black_box(&features)))
    });
    group.finish();

    let mut group = c.benchmark_group("serving/single");
    group.throughput(Throughput::Elements(1));
    group.bench_function("classify_one", |b| {
        b.iter(|| trained.classify(black_box(&batch[0].1)))
    });
    group.finish();

    // Artifact round trip: the cost of loading a model into a new process.
    let bytes = trained.to_bytes();
    let mut group = c.benchmark_group("serving/artifact");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("to_bytes", |b| b.iter(|| trained.to_bytes()));
    group.bench_function("from_bytes", |b| {
        b.iter(|| fhc::serving::TrainedClassifier::from_bytes(black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classify_batch
}
criterion_main!(benches);
