//! Serving throughput: samples/second through a trained classifier.
//!
//! This is the number the ROADMAP's serving trajectory cares about: once
//! `fit` has paid the training cost, how fast can `classify_batch` score a
//! stream of new executables? Measured end-to-end (feature extraction +
//! similarity row + forest vote), for the pre-hashed hot path, and —
//! crucially — **prepared vs unprepared**: the same batch pushed through the
//! precomputed similarity index versus the pre-index scan that re-normalized
//! every reference signature on every comparison (the serving path before
//! the index existed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fhc::backend::BackendConfig;
use fhc::features::SampleFeatures;
use fhc::pipeline::FuzzyHashClassifier;
use fhc::serving::Prediction;
use fhc::shardnet::worker::serve_tcp;
use fhc::shardnet::{Endpoint, ShardWorker};
use fhc::threshold::{apply_threshold, UNKNOWN_LABEL};
use fhc_bench::{bench_config, bench_corpus};
use hpcutil::{par_map_indexed, ParallelConfig};
use mlcore::model::Model;
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::Arc;

/// Spawn `n` in-process loopback shard workers over the classifier's
/// reference set and return a `remote:` backend configuration for them.
/// The accept threads live for the rest of the process.
fn loopback_remote(trained: &fhc::serving::TrainedClassifier, n: usize) -> BackendConfig {
    let endpoints: Vec<Endpoint> = (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
            let worker = Arc::new(ShardWorker::all_classes(trained.reference_shared()));
            std::thread::spawn(move || serve_tcp(worker, listener));
            endpoint
        })
        .collect();
    BackendConfig::remote(endpoints)
}

fn bench_classify_batch(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 42);
    let trained = FuzzyHashClassifier::with_config(bench_config(42))
        .fit(&corpus)
        .expect("training succeeds");

    // Serve every corpus sample as if it were new traffic.
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    let features: Vec<SampleFeatures> = batch
        .iter()
        .map(|(_, bytes)| SampleFeatures::extract(bytes))
        .collect();

    // The pre-index serving path, mirroring the old `classify_batch` 1:1:
    // per sample — inside the parallel region, with the formerly hardcoded
    // parallelism — extract features, scan every reference hash with plain
    // `ssdeep::compare` (re-eliminating and re-packing signatures per
    // comparison), vote, threshold, and build the full `Prediction`.
    let classify_batch_unprepared = |samples: &[(String, Vec<u8>)]| -> Vec<(String, Prediction)> {
        par_map_indexed(
            samples.len(),
            ParallelConfig {
                threads: 0,
                chunk: 2,
            },
            |i| {
                let (name, bytes) = &samples[i];
                let extracted = SampleFeatures::extract(bytes);
                let row = trained.reference().feature_vector_scan(&extracted);
                let proba = Model::predict_proba(trained.forest(), &row);
                let eval_label = apply_threshold(&proba, trained.confidence_threshold());
                let confidence = proba.iter().cloned().fold(0.0f64, f64::max);
                let label = if eval_label == UNKNOWN_LABEL {
                    "-1".to_string()
                } else {
                    trained.known_class_names()[eval_label - 1].clone()
                };
                (
                    name.clone(),
                    Prediction {
                        label,
                        eval_label,
                        confidence,
                        proba,
                    },
                )
            },
        )
    };

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("classify_batch_from_bytes", |b| {
        b.iter(|| trained.classify_batch(black_box(&batch)))
    });
    group.bench_function("classify_batch_unprepared_scan", |b| {
        b.iter(|| classify_batch_unprepared(black_box(&batch)))
    });
    group.bench_function("classify_batch_prehashed", |b| {
        b.iter(|| trained.classify_features_batch(black_box(&features)))
    });
    group.finish();

    // The similarity rows in isolation (no extraction, no forest): the
    // purest view of what the prepared index buys per comparison.
    let mut group = c.benchmark_group("serving/feature_rows");
    group.sample_size(10);
    group.throughput(Throughput::Elements(features.len() as u64));
    group.bench_function("prepared_index", |b| {
        b.iter(|| trained.reference().feature_matrix(black_box(&features)))
    });
    group.bench_function("unprepared_scan", |b| {
        b.iter(|| {
            trained
                .reference()
                .feature_matrix_scan(black_box(&features))
        })
    });
    group.finish();

    // Sharded (persistent worker pool) vs indexed vs scan vs loopback
    // remote: the same classify_batch traffic under each similarity
    // backend (backend choice is runtime-only and score-identical, so this
    // group measures pure scheduling/transport overhead — what per-query
    // class sharding costs or buys, and what putting the shards behind a
    // socket adds on top).
    let mut group = c.benchmark_group("serving/backends");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for (label, backend) in [
        ("classify_batch_indexed", BackendConfig::Indexed),
        (
            "classify_batch_sharded_pooled_2",
            BackendConfig::Sharded { shards: 2 },
        ),
        (
            "classify_batch_sharded_pooled_4",
            BackendConfig::Sharded { shards: 4 },
        ),
        (
            "classify_batch_sharded_pooled_auto",
            BackendConfig::Sharded { shards: 0 },
        ),
        (
            "classify_batch_remote_loopback_2",
            loopback_remote(&trained, 2),
        ),
        ("classify_batch_scan", BackendConfig::Scan),
    ] {
        let swapped = trained.clone().with_backend(backend);
        group.bench_function(label, |b| {
            b.iter(|| swapped.classify_batch(black_box(&batch)))
        });
    }
    group.finish();

    // Single-query latency per backend: where per-query fan-out is meant
    // to shine (one query split across shard workers). The pooled sharded
    // backend replaces PR 3's per-query scoped-thread spawns; the loopback
    // remote number is the wire tax on the same partition/max-merge
    // contract.
    let mut group = c.benchmark_group("serving/single");
    group.throughput(Throughput::Elements(1));
    group.bench_function("classify_one", |b| {
        b.iter(|| trained.classify(black_box(&batch[0].1)))
    });
    let sharded = trained
        .clone()
        .with_backend(BackendConfig::Sharded { shards: 0 });
    group.bench_function("classify_one_sharded_pooled_auto", |b| {
        b.iter(|| sharded.classify(black_box(&batch[0].1)))
    });
    group.finish();

    // Remote serving in isolation: loopback-remote vs pooled-sharded vs
    // indexed on identical single-query traffic. Everything above the
    // indexed number is scheduling (sharded) or scheduling + framing +
    // syscalls (remote).
    let mut group = c.benchmark_group("serving/remote");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("classify_one_indexed", |b| {
        b.iter(|| trained.classify(black_box(&batch[0].1)))
    });
    let sharded2 = trained
        .clone()
        .with_backend(BackendConfig::Sharded { shards: 2 });
    group.bench_function("classify_one_sharded_pooled_2", |b| {
        b.iter(|| sharded2.classify(black_box(&batch[0].1)))
    });
    for workers in [1usize, 2, 4] {
        let remote = trained
            .clone()
            .with_backend(loopback_remote(&trained, workers));
        group.bench_function(format!("classify_one_remote_loopback_{workers}"), |b| {
            b.iter(|| remote.classify(black_box(&batch[0].1)))
        });
    }
    group.finish();

    // Artifact round trip: the cost of loading a model into a new process.
    let bytes = trained.to_bytes();
    let mut group = c.benchmark_group("serving/artifact");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("to_bytes", |b| b.iter(|| trained.to_bytes()));
    group.bench_function("from_bytes", |b| {
        b.iter(|| fhc::serving::TrainedClassifier::from_bytes(black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classify_batch
}
criterion_main!(benches);
