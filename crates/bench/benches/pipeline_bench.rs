//! B5 — the end-to-end pipeline behind Tables 3–5 and Figure 3: feature
//! extraction plus the full split / threshold-tuning / training / prediction
//! run, measured on a small corpus so a single iteration stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use fhc::pipeline::FuzzyHashClassifier;
use fhc_bench::{bench_config, bench_corpus, extract_all};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 42);
    let config = bench_config(42);
    let classifier = FuzzyHashClassifier::with_config(config.clone());
    let features = extract_all(&corpus, &config);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("extract_features_full_corpus", |b| {
        b.iter(|| extract_all(black_box(&corpus), &config))
    });
    group.bench_function("split_train_threshold_predict", |b| {
        b.iter(|| {
            classifier
                .run_with_features(black_box(&corpus), black_box(&features))
                .expect("pipeline runs")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
