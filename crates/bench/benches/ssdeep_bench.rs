//! B1 — fuzzy-hash generation and comparison throughput.
//!
//! Underpins Table 2 (hash similarity example) and every similarity-matrix
//! experiment: the cost of `fuzzy_hash_bytes` scales with executable size,
//! the cost of `compare` is bounded by the 64-character signature length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fhc_bench::synthetic_bytes;
use ssdeep::{
    compare, damerau_levenshtein, damerau_levenshtein_bitparallel, fuzzy_hash_bytes,
    weighted_edit_distance, weighted_edit_distance_bounded,
};
use std::hint::black_box;

fn bench_hash_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssdeep/hash_bytes");
    for size in [4_096usize, 65_536, 1_048_576] {
        let data = synthetic_bytes(size, 7);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| fuzzy_hash_bytes(black_box(data)))
        });
    }
    group.finish();
}

fn bench_comparison(c: &mut Criterion) {
    let base = synthetic_bytes(262_144, 11);
    let mut variant = base.clone();
    for byte in variant.iter_mut().skip(100_000).take(4_000) {
        *byte ^= 0x77;
    }
    let unrelated = synthetic_bytes(262_144, 997);
    let ha = fuzzy_hash_bytes(&base);
    let hb = fuzzy_hash_bytes(&variant);
    let hc = fuzzy_hash_bytes(&unrelated);

    let mut group = c.benchmark_group("ssdeep/compare");
    group.bench_function("similar_pair", |b| {
        b.iter(|| compare(black_box(&ha), black_box(&hb)))
    });
    group.bench_function("unrelated_pair", |b| {
        b.iter(|| compare(black_box(&ha), black_box(&hc)))
    });
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let a = "lnkVZEyLhOQGxkVZEyLhOQGAbCdEfGhIjKlMnOpQrStUvWxYz0123456789abcd";
    let b = "lnkVZEyLhOQGklVZEyLhOQGAbCdEfGhIjKlMnOpQrStUvWxYz9876543210abcd";
    let mut group = c.benchmark_group("ssdeep/edit_distance");
    group.bench_function("damerau_levenshtein_64", |bch| {
        bch.iter(|| damerau_levenshtein(black_box(a), black_box(b)))
    });
    group.bench_function("weighted_64", |bch| {
        bch.iter(|| weighted_edit_distance(black_box(a), black_box(b)))
    });
    group.finish();
}

/// The three tiers of the `fastdist` kernel on realistic signatures: the
/// full-table oracle scan, the banded DP with a loose limit (no pruning
/// possible — measures the band/scratch machinery itself), the banded DP
/// under a tight budget (the max-merge serving case, where the cutoff and
/// the bit-parallel lower bound reject mid- or pre-table), and the
/// bit-parallel lower bound alone.
fn bench_distance_kernel(c: &mut Criterion) {
    // Realistic 64-char signatures from generated hashes: a similar pair
    // (localized edit -> small distance) and an unrelated pair (large
    // distance, where tight budgets reject hardest).
    let base = synthetic_bytes(262_144, 11);
    let mut variant = base.clone();
    for byte in variant.iter_mut().skip(100_000).take(4_000) {
        *byte ^= 0x77;
    }
    // `synthetic_bytes` with a different salt is the *same* stream shifted
    // (the salt only offsets the index), which fuzzy-hashes to a nearly
    // identical signature — remap the bytes so the pair is genuinely
    // unrelated at the signature level.
    let unrelated: Vec<u8> = synthetic_bytes(262_144, 997)
        .into_iter()
        .map(|b| b.wrapping_mul(167).wrapping_add(13))
        .collect();
    let sig_a = fuzzy_hash_bytes(&base).signature().to_string();
    let sig_b = fuzzy_hash_bytes(&variant).signature().to_string();
    let sig_c = fuzzy_hash_bytes(&unrelated).signature().to_string();
    assert!(
        sig_a.len() >= 48 && sig_c.len() >= 32,
        "benchmark needs realistic signatures"
    );
    let loose = sig_a.len() + sig_c.len();

    let mut group = c.benchmark_group("ssdeep/distance");
    for (pair, a, b) in [("similar", &sig_a, &sig_b), ("unrelated", &sig_a, &sig_c)] {
        group.bench_function(format!("scan_oracle_{pair}"), |bch| {
            bch.iter(|| weighted_edit_distance(black_box(a), black_box(b)))
        });
        group.bench_function(format!("banded_loose_limit_{pair}"), |bch| {
            bch.iter(|| weighted_edit_distance_bounded(black_box(a), black_box(b), loose))
        });
        group.bench_function(format!("bounded_tight_budget_{pair}"), |bch| {
            bch.iter(|| weighted_edit_distance_bounded(black_box(a), black_box(b), 12))
        });
        group.bench_function(format!("bitparallel_lower_bound_{pair}"), |bch| {
            bch.iter(|| damerau_levenshtein_bitparallel(black_box(a), black_box(b)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hash_generation, bench_comparison, bench_edit_distance, bench_distance_kernel
}
criterion_main!(benches);
