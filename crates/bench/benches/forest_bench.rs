//! B3 — random-forest training and prediction cost on similarity-style
//! feature matrices (the model behind Tables 4 and 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcore::dataset::Dataset;
use mlcore::forest::{RandomForest, RandomForestParams};
use mlcore::knn::{KNearestNeighbors, Metric};
use mlcore::naive_bayes::GaussianNaiveBayes;
use std::hint::black_box;

/// A dataset shaped like the classifier's feature matrix: `n` samples over
/// `classes * 3` similarity columns in 0..=100, where each sample's own-class
/// columns carry high values.
fn similarity_like_dataset(n: usize, classes: usize) -> Dataset {
    let n_cols = classes * 3;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let mut row = vec![0.0f64; n_cols];
        for (j, value) in row.iter_mut().enumerate() {
            let col_class = j % classes;
            let noise = ((i * 31 + j * 17) % 23) as f64;
            *value = if col_class == class {
                70.0 + noise
            } else {
                noise
            };
        }
        rows.push(row);
        labels.push(class);
    }
    let class_names = (0..classes).map(|c| format!("class{c}")).collect();
    Dataset::from_rows(rows, labels, vec![], class_names).unwrap()
}

fn bench_forest_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlcore/forest_fit");
    group.sample_size(10);
    for (n, classes) in [(300usize, 20usize), (600, 40)] {
        let ds = similarity_like_dataset(n, classes);
        let params = RandomForestParams {
            n_estimators: 30,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{}", classes * 3)),
            &ds,
            |b, ds| b.iter(|| RandomForest::fit(black_box(ds), &params, 7).unwrap()),
        );
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let ds = similarity_like_dataset(400, 30);
    let params = RandomForestParams {
        n_estimators: 30,
        ..Default::default()
    };
    let forest = RandomForest::fit(&ds, &params, 3).unwrap();
    let knn = KNearestNeighbors::fit(&ds, 5, Metric::Euclidean).unwrap();
    let nb = GaussianNaiveBayes::fit(&ds).unwrap();
    let query: Vec<f64> = ds.features().row(11).to_vec();

    let mut group = c.benchmark_group("mlcore/predict_proba");
    group.bench_function("random_forest", |b| {
        b.iter(|| forest.predict_proba(black_box(&query)))
    });
    group.bench_function("knn5", |b| b.iter(|| knn.predict_proba(black_box(&query))));
    group.bench_function("gaussian_nb", |b| {
        b.iter(|| nb.predict_proba(black_box(&query)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_forest_fit, bench_predict
}
criterion_main!(benches);
