//! B4 — similarity-feature-matrix construction: the dominant cost of the
//! whole pipeline (`n_samples x n_train x 3` fuzzy-hash comparisons), and the
//! corpus generation + feature extraction that feeds it.

use criterion::{criterion_group, criterion_main, Criterion};
use fhc::features::FeatureKind;
use fhc::similarity::ReferenceSet;
use fhc_bench::{bench_config, bench_corpus, extract_all};
use std::hint::black_box;

fn bench_corpus_generation(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 5);
    let spec = corpus.samples()[0].clone();
    let mut group = c.benchmark_group("corpus");
    group.sample_size(20);
    group.bench_function("generate_one_executable", |b| {
        b.iter(|| corpus.generate_bytes(black_box(&spec)))
    });
    group.finish();
}

fn bench_feature_matrix(c: &mut Criterion) {
    let corpus = bench_corpus(0.02, 5);
    let config = bench_config(5);
    let features = extract_all(&corpus, &config);

    // Use the first 200 samples as the reference ("training") set and score a
    // single query sample against it, per feature kind and for all three.
    let n_ref = features.len().min(200);
    let labels: Vec<usize> = (0..n_ref)
        .map(|i| corpus.samples()[i].class_index)
        .collect();
    let class_names: Vec<String> = corpus.class_names().to_vec();
    let query = features[features.len() - 1].clone();

    let mut group = c.benchmark_group("similarity/feature_vector");
    group.sample_size(10);
    for kinds in [FeatureKind::ALL.to_vec(), vec![FeatureKind::Symbols]] {
        let reference = ReferenceSet::new(class_names.clone(), &features[..n_ref], &labels, &kinds);
        let label = if kinds.len() == 3 {
            "all_views_vs_200_train"
        } else {
            "symbols_only_vs_200_train"
        };
        group.bench_function(label, |b| {
            b.iter(|| reference.feature_vector(black_box(&query)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus_generation, bench_feature_matrix
}
criterion_main!(benches);
