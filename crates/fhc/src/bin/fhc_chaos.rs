//! `fhc-chaos` — the seeded chaos soak, as a command.
//!
//! Runs the same harness as the `chaos_soak` integration test: in-process
//! serving stacks (remote fan-out, replicated fleet, batching gateway,
//! named tenant) hammered with deterministic failpoint schedules, checking
//! that every query returns rows byte-identical to the scan oracle or a
//! typed net error — and that the stacks converge once the schedule
//! clears.
//!
//! ```text
//! cargo run -p fhc --features failpoints --bin fhc-chaos -- --seed 42
//! fhc-chaos --seed 42 --rounds 500 --queries 8 --verbose
//! ```
//!
//! Every round derives from `--seed`, so a violation printed by one run
//! replays exactly by passing the same seed back. Without the
//! `failpoints` feature the binary still builds, but only to tell you the
//! registry is compiled out (exit code 2).

use std::process::ExitCode;

// Without the feature, `soak` never reads the parsed values — but the
// flags must still parse, so the CLI surface is identical either way.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
struct Args {
    seed: u64,
    rounds: u64,
    queries: usize,
    verbose: bool,
}

const USAGE: &str = "usage: fhc-chaos [--seed N] [--rounds N] [--queries N] [--verbose]";

fn parse_args() -> Result<Args, String> {
    let mut seed = 0xC4A05u64;
    let mut rounds = 200u64;
    let mut queries = 5usize;
    let mut verbose = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a number")?;
                seed = value
                    .parse()
                    .map_err(|e| format!("invalid --seed {value:?}: {e}"))?;
            }
            "--rounds" => {
                let value = iter.next().ok_or("--rounds needs a count")?;
                rounds = value
                    .parse()
                    .map_err(|e| format!("invalid --rounds {value:?}: {e}"))?;
            }
            "--queries" => {
                let value = iter.next().ok_or("--queries needs a count")?;
                queries = value
                    .parse()
                    .map_err(|e| format!("invalid --queries {value:?}: {e}"))?;
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        seed,
        rounds,
        queries,
        verbose,
    })
}

#[cfg(feature = "failpoints")]
fn soak(args: &Args) -> ExitCode {
    let config = fhc::chaos::ChaosConfig {
        seed: args.seed,
        rounds: args.rounds,
        queries: args.queries,
        verbose: args.verbose,
    };
    println!(
        "fhc-chaos: {} rounds from seed {} ({} queries per round)",
        config.rounds, config.seed, config.queries
    );
    match fhc::chaos::run(&config) {
        Ok(report) => {
            println!(
                "fhc-chaos: clean — {} rounds, {} byte-identical rows, \
                 {} typed errors, {} refused connects (replay with --seed {})",
                report.rounds,
                report.clean_rows,
                report.typed_errors,
                report.refused_connects,
                config.seed
            );
            ExitCode::SUCCESS
        }
        Err(violation) => {
            eprintln!("fhc-chaos: {violation}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(feature = "failpoints"))]
fn soak(_args: &Args) -> ExitCode {
    eprintln!(
        "fhc-chaos: failpoints are compiled out of this build; nothing to inject.\n\
         rebuild with: cargo run -p fhc --features failpoints --bin fhc-chaos"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    soak(&args)
}
