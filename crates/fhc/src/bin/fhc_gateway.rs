//! `fhc-gateway` — a pipelined, batching front door for a shard fleet.
//!
//! Loads a trained-classifier artifact, connects to the `fhc-shardd`
//! workers that serve the same artifact, and listens for serving clients
//! on TCP or a Unix-domain socket. Queries arriving concurrently — from
//! any number of client connections — are coalesced into batched wire
//! frames per shard, so the fleet pays per-frame overhead once per burst
//! instead of once per query. Clients connect with
//! `BackendConfig::Gateway` (`--backend gateway:EP` on the command line)
//! and see one worker serving every class.
//!
//! ```text
//! fhc-gateway --artifact model.fhc --listen 127.0.0.1:7000 \
//!     --workers 127.0.0.1:9000,127.0.0.1:9001
//! fhc-gateway --artifact model.fhc --uds /run/fhc/gateway.sock \
//!     --workers unix:/run/fhc/shard0.sock,unix:/run/fhc/shard1.sock
//! ```
//!
//! The worker handshake is the same as `RemoteBackend`'s: every worker
//! must serve the same artifact (fingerprint, geometry, protocol
//! version), and their class partitions must cover every class exactly
//! once — unpartitioned workers are assigned a round-robin partition over
//! the wire. With `--listen` port `0` the chosen port is printed on the
//! `listening on` line, so scripts (and the integration tests) can scrape
//! it.
//!
//! Batch sizing is **adaptive**: each shard's batcher grows its pack
//! target while its queue keeps filling packs and shrinks it back when
//! the burst passes, so an idle gateway answers lone queries without
//! batching delay while a loaded one amortizes framing across big packs.
//! `--max-batch N` caps the adaptive target (it no longer fixes it).

use fhc::serving::TrainedClassifier;
use fhc::shardnet::gateway::{serve_tcp, serve_unix};
use fhc::shardnet::{Endpoint, Gateway, GatewayOptions};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    artifact: String,
    listen: Option<String>,
    uds: Option<String>,
    workers: Vec<Endpoint>,
    max_batch: usize,
    tenant: Option<String>,
    quotas: Vec<(String, u32)>,
    max_inflight: Option<usize>,
    failpoints: Option<String>,
}

const USAGE: &str = "usage: fhc-gateway --artifact PATH \
     (--listen HOST:PORT | --uds PATH) \
     --workers EP[,EP...] [--max-batch N] [--tenant NAME] \
     [--quota TENANT=RPS ...] [--max-inflight N] [--failpoints SPEC]";

/// Arm the failpoint registry from `--failpoints` (or the
/// `FHC_FAILPOINTS` environment variable; the flag wins). A bad spec is a
/// usage error; a spec handed to a build compiled without the
/// `failpoints` feature warns and serves normally, since the registry is
/// compiled out and nothing could ever fire.
fn arm_failpoints(flag: Option<&str>) -> Result<(), String> {
    let env = std::env::var("FHC_FAILPOINTS").ok();
    let Some(spec) = flag.or(env.as_deref()) else {
        return Ok(());
    };
    if !hpcutil::failpoint::compiled() {
        eprintln!(
            "fhc-gateway: failpoints are compiled out; {spec:?} cannot take effect \
             (rebuild with --features failpoints)"
        );
        return Ok(());
    }
    hpcutil::failpoint::configure(spec).map_err(|e| format!("invalid failpoint spec {spec:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut artifact = None;
    let mut listen = None;
    let mut uds = None;
    let mut workers = None;
    let mut max_batch = GatewayOptions::default().max_batch;
    let mut tenant = None;
    let mut quotas: Vec<(String, u32)> = Vec::new();
    let mut max_inflight = None;
    let mut failpoints = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifact" => artifact = Some(iter.next().ok_or("--artifact needs a path")?),
            "--listen" => listen = Some(iter.next().ok_or("--listen needs HOST:PORT")?),
            "--uds" => uds = Some(iter.next().ok_or("--uds needs a socket path")?),
            "--tenant" => tenant = Some(iter.next().ok_or("--tenant needs a tenant name")?),
            "--workers" => {
                let list = iter
                    .next()
                    .ok_or("--workers needs a comma-separated endpoint list")?;
                let parsed = list
                    .split(',')
                    .map(|e| e.trim().parse::<Endpoint>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("invalid --workers {list:?}: {e}"))?;
                workers = Some(parsed);
            }
            "--max-batch" => {
                let value = iter.next().ok_or("--max-batch needs a count")?;
                max_batch = value
                    .parse::<usize>()
                    .map_err(|e| format!("invalid --max-batch {value:?}: {e}"))?;
                if max_batch == 0 {
                    return Err("--max-batch must be at least 1".to_string());
                }
            }
            "--quota" => {
                let spec = iter.next().ok_or("--quota needs TENANT=RPS")?;
                let (tenant, rps) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --quota {spec:?}: expected TENANT=RPS"))?;
                let rps = rps
                    .parse::<u32>()
                    .map_err(|e| format!("invalid --quota rate {rps:?}: {e}"))?;
                if rps == 0 {
                    return Err("--quota must allow at least 1 request per second".to_string());
                }
                quotas.push((tenant.to_string(), rps));
            }
            "--max-inflight" => {
                let value = iter.next().ok_or("--max-inflight needs a count")?;
                let limit = value
                    .parse::<usize>()
                    .map_err(|e| format!("invalid --max-inflight {value:?}: {e}"))?;
                if limit == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
                max_inflight = Some(limit);
            }
            "--failpoints" => {
                failpoints = Some(iter.next().ok_or("--failpoints needs a spec string")?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    let artifact = artifact.ok_or(USAGE)?;
    let workers = workers.ok_or(USAGE)?;
    if workers.is_empty() {
        return Err("--workers needs at least one endpoint".to_string());
    }
    if listen.is_some() == uds.is_some() {
        return Err(format!(
            "exactly one of --listen / --uds is required\n{USAGE}"
        ));
    }
    Ok(Args {
        artifact,
        listen,
        uds,
        workers,
        max_batch,
        tenant,
        quotas,
        max_inflight,
        failpoints,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(msg) = arm_failpoints(args.failpoints.as_deref()) {
        eprintln!("fhc-gateway: {msg}");
        return ExitCode::from(2);
    }

    let classifier = match TrainedClassifier::load(&args.artifact) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fhc-gateway: cannot load artifact {}: {e}", args.artifact);
            return ExitCode::FAILURE;
        }
    };
    let reference = classifier.reference_shared();
    let fingerprint = reference.fingerprint();
    let n_classes = reference.n_classes();

    let gateway = match Gateway::connect(
        reference,
        &args.workers,
        GatewayOptions {
            max_batch: args.max_batch,
            tenant: args.tenant.clone(),
            quotas: args.quotas.clone(),
            max_inflight: args.max_inflight,
        },
    ) {
        Ok(gateway) => Arc::new(gateway),
        Err(e) => {
            eprintln!("fhc-gateway: cannot connect the shard fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    use std::io::Write as _;
    let n_workers = gateway.n_shards();
    let tenant = gateway.tenant().to_string();
    let announce = |addr: &str| {
        // Scraped by scripts and the integration tests: keep the shape
        // "fhc-gateway listening on ADDR fronting K workers ..." — new
        // fields are appended so the word positions stay stable.
        println!(
            "fhc-gateway listening on {addr} fronting {n_workers} workers \
             over {n_classes} classes (fingerprint {fingerprint:#018x}) tenant {tenant}",
        );
        let _ = std::io::stdout().flush();
    };

    if let Some(addr) = &args.listen {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-gateway: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match listener.local_addr() {
            Ok(local) => announce(&local.to_string()),
            Err(_) => announce(addr),
        }
        serve_tcp(gateway, listener);
    } else if let Some(path) = &args.uds {
        // A stale socket file from a previous run would fail the bind —
        // but only ever unlink an actual socket, so a mistyped `--uds
        // model.fhc` cannot delete a regular file.
        {
            use std::os::unix::fs::FileTypeExt;
            if std::fs::symlink_metadata(path).is_ok_and(|m| m.file_type().is_socket()) {
                let _ = std::fs::remove_file(path);
            }
        }
        let listener = match UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-gateway: cannot bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        announce(&format!("unix:{path}"));
        serve_unix(gateway, listener);
    }
    // The accept loops only return when the listener fails.
    eprintln!("fhc-gateway: listener closed, exiting");
    ExitCode::FAILURE
}
