//! `fhc-artifact` — offline delta tooling for trained artifacts.
//!
//! `diff` compares two trained artifacts and writes the checksummed
//! [`ArtifactDelta`] that patches the base's reference set into the
//! target's; `apply` patches a base artifact with such a delta and writes
//! the evolved artifact. Together they make a reference-set update a
//! small file to ship instead of a full artifact — the offline
//! counterpart of the fleet's `PushDelta` wire path.
//!
//! ```text
//! fhc-artifact diff --base v1.fhc --target v2.fhc --out v1-to-v2.fhcd
//! fhc-artifact apply --base v1.fhc --delta v1-to-v2.fhcd --out v2.fhc
//! ```
//!
//! `apply` refuses a delta whose base fingerprint does not match the
//! given artifact (the stale-base rejection), and refuses a delta that
//! adds, retires, or reorders classes: that changes the geometry the
//! forest was fitted against, so the evolved corpus needs a refit, not a
//! patch. Sample-only evolution (`ReferenceSet::add_samples`) patches
//! cleanly; the written artifact serves byte-identical rows to one
//! rebuilt from the evolved corpus.

use fhc::artifact::ArtifactDelta;
use fhc::serving::TrainedClassifier;
use std::process::ExitCode;

const USAGE: &str = "usage: fhc-artifact diff --base PATH --target PATH --out PATH\n\
       fhc-artifact apply --base PATH --delta PATH --out PATH";

struct Flags {
    base: String,
    second: String,
    out: String,
}

/// Parse `--base`, `--out`, and the subcommand's second input flag
/// (`--target` for diff, `--delta` for apply).
fn parse_flags(second_flag: &str, args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut base = None;
    let mut second = None;
    let mut out = None;
    let mut iter = args;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--base" => base = Some(iter.next().ok_or("--base needs a path")?),
            "--out" => out = Some(iter.next().ok_or("--out needs a path")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag == second_flag => {
                second = Some(iter.next().ok_or(format!("{second_flag} needs a path"))?)
            }
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(Flags {
        base: base.ok_or(USAGE)?,
        second: second.ok_or(USAGE)?,
        out: out.ok_or(USAGE)?,
    })
}

fn load(path: &str) -> Result<TrainedClassifier, String> {
    TrainedClassifier::load(path).map_err(|e| format!("cannot load artifact {path}: {e}"))
}

fn diff(flags: Flags) -> Result<(), String> {
    let base = load(&flags.base)?;
    let target = load(&flags.second)?;
    let delta = ArtifactDelta::between(base.reference(), target.reference())
        .map_err(|e| format!("cannot diff: {e}"))?;
    let encoded = delta.encode();
    std::fs::write(&flags.out, &encoded)
        .map_err(|e| format!("cannot write delta {}: {e}", flags.out))?;
    println!(
        "fhc-artifact diff {:#018x} -> {:#018x}: {} classes retired, {} slices added, \
         {} bytes written to {}",
        delta.base_fingerprint,
        delta.target_fingerprint,
        delta.retire_classes.len(),
        delta.add_slices.len(),
        encoded.len(),
        flags.out
    );
    Ok(())
}

fn apply(flags: Flags) -> Result<(), String> {
    let mut base = load(&flags.base)?;
    let bytes = std::fs::read(&flags.second)
        .map_err(|e| format!("cannot read delta {}: {e}", flags.second))?;
    let delta = ArtifactDelta::decode(&bytes)
        .map_err(|e| format!("cannot decode delta {}: {e}", flags.second))?;
    let declared = base.reference().fingerprint();
    let (evolved, fingerprint) = delta
        .apply(base.reference(), declared)
        .map_err(|e| format!("cannot apply delta: {e}"))?;
    debug_assert_eq!(fingerprint, delta.target_fingerprint);
    base.try_set_reference(std::sync::Arc::new(evolved))
        .map_err(|e| format!("cannot serve the evolved reference set: {e}"))?;
    base.save(&flags.out)
        .map_err(|e| format!("cannot write artifact {}: {e}", flags.out))?;
    println!(
        "fhc-artifact apply {:#018x} -> {:#018x}: evolved artifact written to {}",
        delta.base_fingerprint, fingerprint, flags.out
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let outcome = match args.next().as_deref() {
        Some("diff") => parse_flags("--target", args).and_then(diff),
        Some("apply") => parse_flags("--delta", args).and_then(apply),
        Some("--help") | Some("-h") => Err(USAGE.to_string()),
        Some(other) => Err(format!("unknown subcommand: {other}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
