//! Reproduce the paper's tables and figures.
//!
//! ```text
//! experiments [--scale 0.25] [--seed 42] [--trees 80] [--grid] [--only <name>]
//!             [--backend scan|indexed|sharded[:N]] [--threads N]
//! ```
//!
//! `--scale` shrinks the corpus (1.0 = the paper's ≈5333 samples; the
//! similarity matrix is quadratic in corpus size, so small machines should
//! use 0.1–0.3). `--only` runs a single experiment: one of `table1`,
//! `figure2`, `table2`, `table3`, `table4`, `table5`, `figure3`, `ablation`,
//! `baselines`.
//!
//! The runtime layers of [`FhcConfig`] are reachable from the command line:
//! `--backend` selects the similarity backend that scores every feature
//! matrix (`scan`, `indexed`, `sharded`, or `sharded:N`), and `--threads`
//! pins the training-batch *and* serving parallelism to N worker threads
//! (default: all hardware threads). Neither changes a single score — only
//! how fast the identical numbers are produced.
//!
//! `remote:EP[,EP...]` and `gateway:EP` parse but are rejected here: the
//! experiments driver *trains* from scratch, and training builds backends
//! over intermediate reference sets (the threshold-tuning inner fits use
//! subsets) that can never match a running `fhc-shardd`'s or
//! `fhc-gateway`'s artifact fingerprint. Both are serving-time topologies —
//! save an artifact and open it with `TrainedClassifier::load_with`.

use corpus::{Catalog, CorpusBuilder};
use fhc::ablation::run_ablation;
use fhc::backend::BackendConfig;
use fhc::baselines::run_baselines;
use fhc::config::FhcConfig;
use fhc::experiments as exp;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::ServingConfig;
use hpcutil::SectionTimer;
use mlcore::gridsearch::ParamGrid;
use mlcore::tree::MaxFeatures;
use std::process::ExitCode;

struct Args {
    scale: f64,
    seed: u64,
    trees: usize,
    grid: bool,
    only: Option<String>,
    backend: BackendConfig,
    threads: usize,
}

const USAGE: &str = "usage: experiments [--scale F] [--seed N] [--trees N] [--grid] \
     [--only NAME] [--backend scan|indexed|sharded[:N]] [--threads N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 0.25,
        seed: 42,
        trees: 80,
        grid: false,
        only: None,
        backend: BackendConfig::default(),
        threads: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = iter
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?;
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--trees" => {
                args.trees = iter
                    .next()
                    .ok_or("--trees needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --trees: {e}"))?;
            }
            "--grid" => args.grid = true,
            "--only" => args.only = Some(iter.next().ok_or("--only needs a value")?),
            "--backend" => {
                args.backend = iter
                    .next()
                    .ok_or("--backend needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --backend: {e}"))?;
                if matches!(
                    args.backend,
                    BackendConfig::Remote { .. } | BackendConfig::Gateway { .. }
                ) {
                    return Err("--backend remote:... and gateway:... are serving-time \
                         topologies: the experiments driver trains from scratch, and \
                         training builds backends over intermediate reference sets \
                         (threshold-tuning inner fits use subsets) that cannot match \
                         a running fhc-shardd's or fhc-gateway's artifact \
                         fingerprint. Train and save an artifact, start the daemons \
                         on it, then open it with TrainedClassifier::load_with. Use \
                         scan, indexed, or sharded[:N] here."
                        .to_string());
                }
            }
            "--threads" => {
                args.threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn wants(only: &Option<String>, name: &str) -> bool {
    only.as_deref().map(|o| o == name).unwrap_or(true)
}

fn heading(title: &str) -> String {
    format!("\n==================== {title} ====================\n")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut timer = SectionTimer::new();
    println!(
        "Fuzzy Hash Classifier experiments (scale={}, seed={}, trees={}, grid={}, \
         backend={}, threads={})",
        args.scale,
        args.seed,
        args.trees,
        args.grid,
        args.backend,
        if args.threads == 0 {
            "auto".to_string()
        } else {
            args.threads.to_string()
        }
    );

    timer.start("corpus generation");
    let catalog = Catalog::paper().scaled(args.scale);
    let corpus = CorpusBuilder::new(args.seed).build(&catalog);
    println!(
        "corpus: {} classes, {} samples (paper: 92 classes, 5333 samples)",
        corpus.n_classes(),
        corpus.n_samples()
    );

    // Static corpus experiments first: they need no training.
    if wants(&args.only, "table1") {
        println!(
            "{}",
            heading("Table 1: Versions and Executables for the Velvet Application")
        );
        println!("{}", exp::table1_velvet_versions(&corpus));
    }
    if wants(&args.only, "figure2") {
        println!(
            "{}",
            heading("Figure 2: Number of samples per application class")
        );
        println!("{}", exp::figure2_sample_distribution(&corpus));
    }

    let mut config = FhcConfig::new()
        .pipeline(PipelineConfig {
            seed: args.seed,
            ..Default::default()
        })
        .backend(args.backend.clone());
    config.pipeline.forest.n_estimators = args.trees;
    // --threads pins both runtime parallelism layers; 0 keeps the defaults
    // (all hardware threads with the layers' preferred chunking).
    if args.threads > 0 {
        config.parallel.threads = args.threads;
        config.serving = ServingConfig {
            threads: args.threads,
            ..config.serving
        };
    }
    if args.grid {
        config.pipeline.grid = Some(ParamGrid {
            n_estimators: vec![args.trees / 2, args.trees],
            max_depth: vec![None, Some(24)],
            min_samples_leaf: vec![1, 2],
            max_features: vec![MaxFeatures::Sqrt],
            ..Default::default()
        });
    }

    timer.start("feature extraction");
    let classifier = FuzzyHashClassifier::with_config(config.clone());
    let features = classifier.extract_features(&corpus);

    if wants(&args.only, "table2") {
        println!("{}", heading("Table 2: Hash Similarity Example"));
        println!(
            "{}",
            exp::table2_hash_similarity_example(&corpus, &features, "OpenMalaria")
        );
    }

    timer.start("pipeline (split, grid search, threshold tuning, training, prediction)");
    let outcome = match classifier.run_with_features(&corpus, &features) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", heading("Headline results"));
    println!("{}", exp::headline_summary(&outcome));

    if wants(&args.only, "table3") {
        println!("{}", heading("Table 3: Class of Unknown Samples"));
        println!("{}", exp::table3_unknown_classes(&corpus, &outcome));
    }
    if wants(&args.only, "table4") {
        println!("{}", heading("Table 4: Classification Report"));
        println!("{}", exp::table4_classification_report(&outcome));
    }
    if wants(&args.only, "table5") {
        println!("{}", heading("Table 5: Feature Importance (normalized)"));
        println!("{}", exp::table5_feature_importance(&outcome));
    }
    if wants(&args.only, "figure3") {
        println!(
            "{}",
            heading("Figure 3: f1-score over confidence threshold (training-set grid search)")
        );
        println!("{}", exp::figure3_threshold_curve(&outcome));
    }

    if wants(&args.only, "baselines") {
        timer.start("baselines");
        println!(
            "{}",
            heading("Baselines: exact SHA-256 match, k-NN, Gaussian naive Bayes")
        );
        match run_baselines(&corpus, &features, &config, outcome.confidence_threshold) {
            Ok(results) => println!("{}", exp::baseline_table(&results, &outcome)),
            Err(e) => eprintln!("baselines failed: {e}"),
        }
    }

    if wants(&args.only, "ablation") {
        timer.start("ablation");
        println!("{}", heading("Ablation: feature subsets"));
        match run_ablation(&corpus, &features, &config) {
            Ok(results) => println!("{}", exp::ablation_table(&results)),
            Err(e) => eprintln!("ablation failed: {e}"),
        }
    }

    timer.stop();
    println!("{}", heading("Timing"));
    println!("{}", timer.summary());
    ExitCode::SUCCESS
}
