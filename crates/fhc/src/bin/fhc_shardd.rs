//! `fhc-shardd` — a shard worker daemon for distributed similarity serving.
//!
//! Loads a trained-classifier artifact, builds the prepared similarity
//! index over its reference set, and answers score requests for a class
//! partition over TCP or a Unix-domain socket. A serving frontend opens the
//! same artifact with `BackendConfig::Remote { endpoints }` (or
//! `--backend remote:...` on the command line) and fans every query out
//! across the running daemons.
//!
//! ```text
//! fhc-shardd --artifact model.fhc --listen 127.0.0.1:0
//! fhc-shardd --artifact model.fhc --listen 127.0.0.1:9000 --shard 0/2
//! fhc-shardd --artifact model.fhc --uds /run/fhc/shard0.sock --classes 0,3,7
//! fhc-shardd --diskless --listen 127.0.0.1:9000
//! ```
//!
//! `--shard i/n` serves shard `i` of the same round-robin partition the
//! in-process `ShardedBackend` uses; `--classes` names explicit class ids;
//! with neither, the daemon serves every class and lets the client assign a
//! partition over the wire. With `--listen` port `0` the chosen port is
//! printed on the `listening on` line, so scripts (and the integration
//! tests) can scrape it.
//!
//! `--diskless` starts with **no artifact at all**: the daemon advertises
//! fingerprint `0` and waits for a fleet client to seed it over the wire
//! with per-class reference slices (`PushSlice` frames). It then holds only
//! its partition's samples in memory — the deployment mode for workers with
//! no shared filesystem. Artifact-loaded daemons accept pushes too, which
//! is how a fleet rolls a worker forward to a new artifact in place.
//!
//! **Multi-tenant serving**: `--tenant NAME=PATH` registers an extra
//! artifact under the tenant id `NAME`, and `--tenant NAME` (no path)
//! registers a diskless tenant slot, each repeatable:
//!
//! ```text
//! fhc-shardd --artifact shared.fhc --tenant acme=acme.fhc --tenant beta \
//!     --listen 127.0.0.1:9000
//! ```
//!
//! `--artifact` / `--diskless` name the **default** tenant. A client
//! selects its tenant in the handshake (`tenant=NAME` in the backend
//! spec); one selecting an unregistered tenant is refused with a typed
//! error naming the tenants this daemon serves. Each tenant's reference
//! set evolves independently — a push (full or delta) to one tenant never
//! disturbs another.

use fhc::backend::round_robin_partition;
use fhc::serving::TrainedClassifier;
use fhc::shardnet::worker::{serve_host_tcp, serve_host_unix};
use fhc::shardnet::{ShardWorker, TenantHost};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    artifact: Option<String>,
    diskless: bool,
    /// Extra `(tenant, artifact path)` slots; `None` paths are diskless.
    tenants: Vec<(String, Option<String>)>,
    listen: Option<String>,
    uds: Option<String>,
    classes: Option<Vec<usize>>,
    shard: Option<(usize, usize)>,
    failpoints: Option<String>,
}

const USAGE: &str = "usage: fhc-shardd (--artifact PATH | --diskless | --tenant NAME[=PATH]) \
     (--listen HOST:PORT | --uds PATH) \
     [--classes A,B,... | --shard I/N] [--tenant NAME[=PATH] ...] [--failpoints SPEC]";

/// Arm the failpoint registry from `--failpoints` (or the
/// `FHC_FAILPOINTS` environment variable; the flag wins). A bad spec is a
/// usage error; a spec handed to a build compiled without the
/// `failpoints` feature warns and serves normally, since the registry is
/// compiled out and nothing could ever fire.
fn arm_failpoints(flag: Option<&str>) -> Result<(), String> {
    let env = std::env::var("FHC_FAILPOINTS").ok();
    let Some(spec) = flag.or(env.as_deref()) else {
        return Ok(());
    };
    if !hpcutil::failpoint::compiled() {
        eprintln!(
            "fhc-shardd: failpoints are compiled out; {spec:?} cannot take effect \
             (rebuild with --features failpoints)"
        );
        return Ok(());
    }
    hpcutil::failpoint::configure(spec).map_err(|e| format!("invalid failpoint spec {spec:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut artifact = None;
    let mut diskless = false;
    let mut tenants: Vec<(String, Option<String>)> = Vec::new();
    let mut listen = None;
    let mut uds = None;
    let mut classes = None;
    let mut shard = None;
    let mut failpoints = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifact" => artifact = Some(iter.next().ok_or("--artifact needs a path")?),
            "--diskless" => diskless = true,
            "--tenant" => {
                let spec = iter.next().ok_or("--tenant needs NAME or NAME=PATH")?;
                let (name, path) = match spec.split_once('=') {
                    Some((name, path)) => (name.to_string(), Some(path.to_string())),
                    None => (spec, None),
                };
                tenants.push((name, path));
            }
            "--listen" => listen = Some(iter.next().ok_or("--listen needs HOST:PORT")?),
            "--uds" => uds = Some(iter.next().ok_or("--uds needs a socket path")?),
            "--classes" => {
                let list = iter
                    .next()
                    .ok_or("--classes needs a comma-separated list")?;
                let parsed = list
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("invalid --classes {list:?}: {e}"))?;
                classes = Some(parsed);
            }
            "--shard" => {
                let spec = iter.next().ok_or("--shard needs I/N")?;
                let (i, n) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("invalid --shard {spec:?}: expected I/N"))?;
                let i = i
                    .parse::<usize>()
                    .map_err(|e| format!("invalid shard index: {e}"))?;
                let n = n
                    .parse::<usize>()
                    .map_err(|e| format!("invalid shard count: {e}"))?;
                if n == 0 || i >= n {
                    return Err(format!("shard index {i} out of range for {n} shards"));
                }
                shard = Some((i, n));
            }
            "--failpoints" => {
                failpoints = Some(iter.next().ok_or("--failpoints needs a spec string")?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if diskless && artifact.is_some() {
        return Err(format!(
            "--artifact and --diskless are mutually exclusive\n{USAGE}"
        ));
    }
    if !diskless && artifact.is_none() && tenants.is_empty() {
        return Err(format!(
            "one of --artifact / --diskless / --tenant is required\n{USAGE}"
        ));
    }
    if classes.is_some() || shard.is_some() {
        if diskless {
            return Err("--diskless serves whatever partition is pushed to it; \
                 --classes / --shard do not apply"
                .to_string());
        }
        if artifact.is_none() {
            return Err(
                "--classes / --shard partition the default tenant's --artifact only".to_string(),
            );
        }
    }
    if listen.is_some() == uds.is_some() {
        return Err(format!(
            "exactly one of --listen / --uds is required\n{USAGE}"
        ));
    }
    if classes.is_some() && shard.is_some() {
        return Err("--classes and --shard are mutually exclusive".to_string());
    }
    Ok(Args {
        artifact,
        diskless,
        tenants,
        listen,
        uds,
        classes,
        shard,
        failpoints,
    })
}

/// Load an artifact and build its serving worker, optionally restricted
/// to a class partition (`--classes` / `--shard`).
fn load_worker(
    path: &str,
    classes: &Option<Vec<usize>>,
    shard: Option<(usize, usize)>,
) -> Result<ShardWorker, String> {
    let classifier =
        TrainedClassifier::load(path).map_err(|e| format!("cannot load artifact {path}: {e}"))?;
    let reference = classifier.reference_shared();
    let n_classes = reference.n_classes();
    let classes = match (classes, shard) {
        (Some(list), _) => list.clone(),
        (None, Some((i, n))) => round_robin_partition(n_classes, n).swap_remove(i),
        (None, None) => (0..n_classes).collect(),
    };
    ShardWorker::new(reference, classes).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(msg) = arm_failpoints(args.failpoints.as_deref()) {
        eprintln!("fhc-shardd: {msg}");
        return ExitCode::from(2);
    }

    // The default tenant comes from --artifact / --diskless; every
    // --tenant NAME[=PATH] adds an independent slot. A diskless slot has
    // no reference until a fleet client pushes one: it announces 0/0
    // classes under fingerprint 0 and waits.
    let mut host = TenantHost::new();
    let default_worker = if args.diskless {
        Some(None)
    } else if let Some(path) = &args.artifact {
        match load_worker(path, &args.classes, args.shard) {
            Ok(worker) => Some(Some(worker)),
            Err(e) => {
                eprintln!("fhc-shardd: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if let Some(initial) = default_worker {
        if let Err(e) = host.register(fhc::shardnet::wire::DEFAULT_TENANT, initial) {
            eprintln!("fhc-shardd: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (name, path) in &args.tenants {
        let initial = match path {
            // Tenant artifacts always serve all their classes; --classes /
            // --shard partition the default tenant only.
            Some(path) => match load_worker(path, &None, None) {
                Ok(worker) => Some(worker),
                Err(e) => {
                    eprintln!("fhc-shardd: tenant {name}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        if let Err(e) = host.register(name, initial) {
            eprintln!("fhc-shardd: {e}");
            return ExitCode::FAILURE;
        }
    }
    let tenant_list = host.served_list();
    // The announce line reports the slot a tenant-unaware client would be
    // greeted with (the default tenant when registered, else the first).
    let (served, n_classes, fingerprint) = host
        .initial_slot()
        .and_then(|(_, slot)| {
            slot.worker().map(|w| {
                (
                    w.classes().len(),
                    w.reference().n_classes(),
                    w.reference().fingerprint(),
                )
            })
        })
        .unwrap_or_default();
    let host = Arc::new(host);

    use std::io::Write as _;
    let announce = |addr: &str| {
        // Scraped by scripts and the integration tests: keep the shape
        // "fhc-shardd listening on ADDR serving K/N classes ..." — new
        // fields are appended so the word positions stay stable.
        println!(
            "fhc-shardd listening on {addr} serving {served}/{n_classes} classes \
             (fingerprint {fingerprint:#018x}) tenants [{tenant_list}]",
        );
        let _ = std::io::stdout().flush();
    };

    if let Some(addr) = &args.listen {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-shardd: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match listener.local_addr() {
            Ok(local) => announce(&local.to_string()),
            Err(_) => announce(addr),
        }
        serve_host_tcp(host, listener);
    } else if let Some(path) = &args.uds {
        // A stale socket file from a previous run would fail the bind —
        // but only ever unlink an actual socket, so a mistyped `--uds
        // model.fhc` cannot delete a regular file. (A *live* socket is
        // also unlinked; the OS cannot distinguish stale from live, and
        // the operator explicitly asked for this path.)
        {
            use std::os::unix::fs::FileTypeExt;
            if std::fs::symlink_metadata(path).is_ok_and(|m| m.file_type().is_socket()) {
                let _ = std::fs::remove_file(path);
            }
        }
        let listener = match UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-shardd: cannot bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        announce(&format!("unix:{path}"));
        serve_host_unix(host, listener);
    }
    // The accept loops only return when the listener fails.
    eprintln!("fhc-shardd: listener closed, exiting");
    ExitCode::FAILURE
}
