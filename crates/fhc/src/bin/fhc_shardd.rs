//! `fhc-shardd` — a shard worker daemon for distributed similarity serving.
//!
//! Loads a trained-classifier artifact, builds the prepared similarity
//! index over its reference set, and answers score requests for a class
//! partition over TCP or a Unix-domain socket. A serving frontend opens the
//! same artifact with `BackendConfig::Remote { endpoints }` (or
//! `--backend remote:...` on the command line) and fans every query out
//! across the running daemons.
//!
//! ```text
//! fhc-shardd --artifact model.fhc --listen 127.0.0.1:0
//! fhc-shardd --artifact model.fhc --listen 127.0.0.1:9000 --shard 0/2
//! fhc-shardd --artifact model.fhc --uds /run/fhc/shard0.sock --classes 0,3,7
//! fhc-shardd --diskless --listen 127.0.0.1:9000
//! ```
//!
//! `--shard i/n` serves shard `i` of the same round-robin partition the
//! in-process `ShardedBackend` uses; `--classes` names explicit class ids;
//! with neither, the daemon serves every class and lets the client assign a
//! partition over the wire. With `--listen` port `0` the chosen port is
//! printed on the `listening on` line, so scripts (and the integration
//! tests) can scrape it.
//!
//! `--diskless` starts with **no artifact at all**: the daemon advertises
//! fingerprint `0` and waits for a fleet client to seed it over the wire
//! with per-class reference slices (`PushSlice` frames). It then holds only
//! its partition's samples in memory — the deployment mode for workers with
//! no shared filesystem. Artifact-loaded daemons accept pushes too, which
//! is how a fleet rolls a worker forward to a new artifact in place.

use fhc::backend::round_robin_partition;
use fhc::serving::TrainedClassifier;
use fhc::shardnet::worker::{serve_host_tcp, serve_host_unix};
use fhc::shardnet::{ShardWorker, WorkerHost};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    artifact: Option<String>,
    diskless: bool,
    listen: Option<String>,
    uds: Option<String>,
    classes: Option<Vec<usize>>,
    shard: Option<(usize, usize)>,
}

const USAGE: &str = "usage: fhc-shardd (--artifact PATH | --diskless) \
     (--listen HOST:PORT | --uds PATH) \
     [--classes A,B,... | --shard I/N]";

fn parse_args() -> Result<Args, String> {
    let mut artifact = None;
    let mut diskless = false;
    let mut listen = None;
    let mut uds = None;
    let mut classes = None;
    let mut shard = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifact" => artifact = Some(iter.next().ok_or("--artifact needs a path")?),
            "--diskless" => diskless = true,
            "--listen" => listen = Some(iter.next().ok_or("--listen needs HOST:PORT")?),
            "--uds" => uds = Some(iter.next().ok_or("--uds needs a socket path")?),
            "--classes" => {
                let list = iter
                    .next()
                    .ok_or("--classes needs a comma-separated list")?;
                let parsed = list
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("invalid --classes {list:?}: {e}"))?;
                classes = Some(parsed);
            }
            "--shard" => {
                let spec = iter.next().ok_or("--shard needs I/N")?;
                let (i, n) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("invalid --shard {spec:?}: expected I/N"))?;
                let i = i
                    .parse::<usize>()
                    .map_err(|e| format!("invalid shard index: {e}"))?;
                let n = n
                    .parse::<usize>()
                    .map_err(|e| format!("invalid shard count: {e}"))?;
                if n == 0 || i >= n {
                    return Err(format!("shard index {i} out of range for {n} shards"));
                }
                shard = Some((i, n));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if diskless == artifact.is_some() {
        return Err(format!(
            "exactly one of --artifact / --diskless is required\n{USAGE}"
        ));
    }
    if diskless && (classes.is_some() || shard.is_some()) {
        return Err("--diskless serves whatever partition is pushed to it; \
             --classes / --shard do not apply"
            .to_string());
    }
    if listen.is_some() == uds.is_some() {
        return Err(format!(
            "exactly one of --listen / --uds is required\n{USAGE}"
        ));
    }
    if classes.is_some() && shard.is_some() {
        return Err("--classes and --shard are mutually exclusive".to_string());
    }
    Ok(Args {
        artifact,
        diskless,
        listen,
        uds,
        classes,
        shard,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // A diskless daemon has no reference until a fleet client pushes one:
    // it announces 0/0 classes under fingerprint 0 and waits.
    let (host, served, n_classes, fingerprint) = if args.diskless {
        (Arc::new(WorkerHost::new(None)), 0, 0, 0)
    } else {
        let path = args.artifact.as_deref().unwrap_or_default();
        let classifier = match TrainedClassifier::load(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fhc-shardd: cannot load artifact {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reference = classifier.reference_shared();
        let n_classes = reference.n_classes();
        let classes = match (&args.classes, args.shard) {
            (Some(list), _) => list.clone(),
            (None, Some((i, n))) => round_robin_partition(n_classes, n).swap_remove(i),
            (None, None) => (0..n_classes).collect(),
        };
        let worker = match ShardWorker::new(reference.clone(), classes) {
            Ok(worker) => worker,
            Err(e) => {
                eprintln!("fhc-shardd: {e}");
                return ExitCode::FAILURE;
            }
        };
        let served = worker.classes().len();
        let fingerprint = reference.fingerprint();
        (
            Arc::new(WorkerHost::new(Some(worker))),
            served,
            n_classes,
            fingerprint,
        )
    };

    use std::io::Write as _;
    let announce = |addr: &str| {
        // Scraped by scripts and the integration tests: keep the shape
        // "fhc-shardd listening on ADDR serving K/N classes ...".
        println!(
            "fhc-shardd listening on {addr} serving {served}/{n_classes} classes \
             (fingerprint {fingerprint:#018x})",
        );
        let _ = std::io::stdout().flush();
    };

    if let Some(addr) = &args.listen {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-shardd: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match listener.local_addr() {
            Ok(local) => announce(&local.to_string()),
            Err(_) => announce(addr),
        }
        serve_host_tcp(host, listener);
    } else if let Some(path) = &args.uds {
        // A stale socket file from a previous run would fail the bind —
        // but only ever unlink an actual socket, so a mistyped `--uds
        // model.fhc` cannot delete a regular file. (A *live* socket is
        // also unlinked; the OS cannot distinguish stale from live, and
        // the operator explicitly asked for this path.)
        {
            use std::os::unix::fs::FileTypeExt;
            if std::fs::symlink_metadata(path).is_ok_and(|m| m.file_type().is_socket()) {
                let _ = std::fs::remove_file(path);
            }
        }
        let listener = match UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fhc-shardd: cannot bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        announce(&format!("unix:{path}"));
        serve_host_unix(host, listener);
    }
    // The accept loops only return when the listener fails.
    eprintln!("fhc-shardd: listener closed, exiting");
    ExitCode::FAILURE
}
