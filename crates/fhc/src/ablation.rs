//! Feature ablations.
//!
//! The paper's Table 5 shows that the symbols view dominates the forest's
//! feature importance. The ablation study makes that concrete by re-running
//! the full pipeline with subsets of the three fuzzy-hash views and
//! comparing the resulting F1 scores — the experiment DESIGN.md lists as E8.

use crate::config::FhcConfig;
use crate::error::FhcError;
use crate::features::{FeatureKind, SampleFeatures};
use crate::pipeline::FuzzyHashClassifier;
use corpus::Corpus;

/// Result of one ablation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Human-readable name of the configuration (e.g. `symbols-only`).
    pub name: String,
    /// The feature kinds used.
    pub kinds: Vec<FeatureKind>,
    /// Macro-averaged F1 on the test set.
    pub macro_f1: f64,
    /// Micro-averaged F1 on the test set.
    pub micro_f1: f64,
    /// Support-weighted F1 on the test set.
    pub weighted_f1: f64,
}

/// The ablation configurations: all features, each view alone, and each view
/// dropped.
pub fn ablation_configurations() -> Vec<(String, Vec<FeatureKind>)> {
    use FeatureKind::{File, Strings, Symbols};
    vec![
        ("all-features".to_string(), vec![File, Strings, Symbols]),
        ("file-only".to_string(), vec![File]),
        ("strings-only".to_string(), vec![Strings]),
        ("symbols-only".to_string(), vec![Symbols]),
        ("drop-file".to_string(), vec![Strings, Symbols]),
        ("drop-strings".to_string(), vec![File, Symbols]),
        ("drop-symbols".to_string(), vec![File, Strings]),
    ]
}

/// Run the pipeline once per ablation configuration, reusing the extracted
/// features (the expensive part) across runs.
pub fn run_ablation(
    corpus: &Corpus,
    features: &[SampleFeatures],
    base_config: &FhcConfig,
) -> Result<Vec<AblationResult>, FhcError> {
    let mut results = Vec::new();
    for (name, kinds) in ablation_configurations() {
        let mut config = base_config.clone();
        config.pipeline.feature_kinds = kinds.clone();
        let outcome =
            FuzzyHashClassifier::with_config(config).run_with_features(corpus, features)?;
        results.push(AblationResult {
            name,
            kinds,
            macro_f1: outcome.report.macro_avg().f1,
            micro_f1: outcome.report.micro().f1,
            weighted_f1: outcome.report.weighted_avg().f1,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_all_and_singletons_and_drops() {
        let configs = ablation_configurations();
        assert_eq!(configs.len(), 7);
        assert_eq!(configs[0].1.len(), 3);
        assert!(configs
            .iter()
            .any(|(n, k)| n == "symbols-only" && k == &[FeatureKind::Symbols]));
        assert!(configs
            .iter()
            .any(|(n, k)| n == "drop-symbols" && !k.contains(&FeatureKind::Symbols)));
        // Every configuration is non-empty.
        assert!(configs.iter().all(|(_, k)| !k.is_empty()));
    }
}
