//! `fhc-gateway` — a pipelined, batching front door for the shard fleet.
//!
//! A [`Gateway`] sits between many serving clients and the `fhc-shardd`
//! workers. It speaks the same wire protocol on both sides: to its clients
//! it looks like a single worker serving *every* class (so
//! [`RemoteBackend`] — and therefore [`GatewayBackend`] — connects to it
//! unchanged), while behind it the fleet's real partitions stay hidden.
//! What the extra hop buys is **coalescing**: queries arriving concurrently
//! from any number of client connections are packed into
//! [`ScoreBatchRequest`](wire::ScoreBatchRequest) frames — one checksummed
//! frame, many queries — so the per-frame wire and syscall overhead is paid
//! once per burst instead of once per query.
//!
//! ```text
//!  clients                     gateway                        workers
//!  ────────                    ───────────────────────────    ─────────
//!  conn A ──┐                  per-conn reader ─┐  ┌─ batcher ═ shard 0
//!  conn B ──┼── TCP/UDS ──►    (submit to every ├──┤  ┌ distributor
//!  conn C ──┘                  shard queue)     ─┘  └─ batcher ═ shard 1
//!                              per-conn writer ◄───────┘ (rows, in order)
//! ```
//!
//! Internally each shard connection is driven by one **batcher** thread
//! (drains that shard's job queue, packs up to
//! [`GatewayOptions::max_batch`] queries into one batch frame, submits it
//! to the shard's [`hpcutil::Mux`]) and one **distributor** thread (awaits
//! the replies in submission order and hands each partial row back to the
//! query that asked for it). Because submission never waits for a reply,
//! a batch is on the wire while the previous one is still being scored —
//! the shard sockets stay full.
//!
//! Client connections are served pipelined the same way: a reader thread
//! submits every incoming query to the shard queues the moment it is
//! decoded, and the connection's writer answers in request order as the
//! merged rows complete. A worker advertising no batch support (see
//! [`wire::FEATURE_SCORE_BATCH`]) degrades to pipelined single-query
//! frames on that one connection; everything else is unaffected.
//!
//! Failure keeps the same contract as [`RemoteBackend`]: a lost worker
//! surfaces as a typed error frame to every affected client query — never
//! a wrong or partial row — and the shard connection is re-dialed on the
//! next query (see `RemoteWorker::submit`), so an idle-reaped or restarted
//! worker heals without a gateway restart.

use crate::backend::SimilarityBackend;
use crate::error::FhcError;
use crate::features::PreparedSampleFeatures;
use crate::shardnet::remote::{connect_workers, RemoteBackend, RemoteWorker};
use crate::shardnet::wire::{self, ClientReply, Frame, Hello, ScoreBatchResponse, ScoreResponse};
use crate::shardnet::worker::IDLE_TIMEOUT;
use crate::shardnet::{Endpoint, NetError, IO_TIMEOUT};
use crate::similarity::ReferenceSet;
use hpcutil::PendingReply;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Most responses a client connection may have outstanding before its
/// reader stops decoding new requests. The bound is what creates
/// backpressure: once the writer falls this far behind — a client that
/// keeps sending but never reads its responses — the reader blocks, the
/// connection's receive buffer fills, and the client's own sends stall,
/// instead of the gateway buffering an unbounded queue of merged rows for
/// a peer that takes none. Far above any sane pipelining depth, so a
/// well-behaved client never feels it.
const CLIENT_PIPELINE_LIMIT: usize = 128;

/// Bound on each shard's job queue. Several clients bursting at
/// [`CLIENT_PIPELINE_LIMIT`] fit comfortably; past that, submitting blocks
/// the client readers — backpressure all the way to the client sockets —
/// instead of queueing unboundedly in front of a slow shard.
const SHARD_QUEUE_DEPTH: usize = 1024;

/// Bound on the in-flight record queue between one shard's batcher and its
/// distributor. A distributor stuck waiting on a slow shard eventually
/// blocks its batcher, which stops draining the shard queue — the same
/// backpressure chain, one stage earlier.
const INFLIGHT_DEPTH: usize = 256;

/// Tunables for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayOptions {
    /// **Cap** on the adaptive batch target: the most queries ever packed
    /// into one batch frame per shard. The actual target floats between
    /// `MIN_BATCH_TARGET` and this cap with load (see
    /// `next_batch_target`), so an idle gateway keeps head-of-line
    /// latency low while a loaded one amortizes framing across large
    /// packs. Clamped per shard by [`wire::max_batch_rows_for`] over the
    /// shard's partition width, so the dense batch *response* can never
    /// exceed [`wire::MAX_FRAME_PAYLOAD`].
    pub max_batch: usize,
    /// The tenant this gateway serves, on both sides of the hop: it is
    /// selected on every worker handshake and advertised in the gateway's
    /// own client [`Hello`]. `None` means the default tenant
    /// ([`wire::DEFAULT_TENANT`]). A gateway fronts exactly one tenant;
    /// run one gateway per tenant to multiplex.
    pub tenant: Option<String>,
    /// Per-tenant request-rate quotas, `(tenant, requests_per_second)`.
    /// A gateway fronts exactly one tenant, so only the entry naming its
    /// own tenant arms a `TokenBucket`; entries for other tenants are
    /// inert here, which lets a fleet of per-tenant gateways share one
    /// flag set. Each admitted query costs one token (a batch of `k`
    /// costs `k`); an empty bucket answers with a wire
    /// [`Overload`](wire::Overload) frame instead of scoring.
    pub quotas: Vec<(String, u32)>,
    /// Global ceiling on queries admitted but not yet answered, across
    /// every client connection. `None` means unlimited. At the ceiling
    /// the gateway sheds — again as a typed `Overload` frame — rather
    /// than queueing without bound in front of a saturated fleet.
    pub max_inflight: Option<usize>,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        Self {
            max_batch: 256,
            tenant: None,
            quotas: Vec::new(),
            max_inflight: None,
        }
    }
}

/// Floor of the adaptive batch target: even a freshly idle shard packs up
/// to this many queued queries into one frame, since a pack this small
/// costs no measurable head-of-line latency.
const MIN_BATCH_TARGET: usize = 8;

/// The load-adaptive batch target, advanced after every pack.
///
/// `drained` is how many queries the last pack actually took (bounded by
/// the `current` target). A pack that *filled* its target means the queue
/// had more waiting — the target doubles toward `cap` so the next frame
/// amortizes better. A pack under half the target means the burst has
/// passed — the target halves toward the floor so a lone query stops
/// waiting on a big-batch drain. In between, the target holds. Pure and
/// deterministic, so the growth/shrink schedule is unit-testable without a
/// gateway.
fn next_batch_target(current: usize, drained: usize, cap: usize) -> usize {
    let cap = cap.max(1);
    let floor = MIN_BATCH_TARGET.min(cap);
    if drained >= current {
        current.saturating_mul(2).clamp(floor, cap)
    } else if drained < current / 2 {
        (current / 2).clamp(floor, cap)
    } else {
        current.clamp(floor, cap)
    }
}

/// What a shed request is told to wait when the rejection has no natural
/// deadline (the inflight ceiling, unlike an empty token bucket, gives no
/// refill schedule to quote). Queries complete in milliseconds, so a short
/// backoff is honest.
const INFLIGHT_RETRY_MS: u32 = 25;

/// A token-bucket rate limiter: `capacity` tokens, refilled continuously
/// at `refill_per_sec`. Admission takes one token per query; an empty
/// bucket reports how long until enough tokens will have dripped back in,
/// which becomes the `retry_after_ms` the client is told on the wire.
struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    state: Mutex<BucketState>,
}

struct BucketState {
    tokens: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    fn new(rps: u32, now: Instant) -> Self {
        Self {
            capacity: f64::from(rps),
            refill_per_sec: f64::from(rps),
            state: Mutex::new(BucketState {
                tokens: f64::from(rps),
                refilled_at: now,
            }),
        }
    }

    /// Take `n` tokens, or report how many milliseconds until they will be
    /// available. A request wider than the whole bucket is charged a full
    /// bucket instead of being unadmittable forever.
    fn try_take(&self, n: usize, now: Instant) -> Result<(), u32> {
        let cost = (n as f64).min(self.capacity);
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let elapsed = now.saturating_duration_since(state.refilled_at);
        state.tokens =
            (state.tokens + elapsed.as_secs_f64() * self.refill_per_sec).min(self.capacity);
        state.refilled_at = now;
        if state.tokens >= cost {
            state.tokens -= cost;
            return Ok(());
        }
        let deficit = cost - state.tokens;
        let wait_ms = (deficit / self.refill_per_sec * 1000.0).ceil();
        Err((wait_ms as u32).max(1))
    }
}

/// The gateway-wide count of admitted-but-unanswered queries, checked
/// against [`GatewayOptions::max_inflight`].
struct InflightGauge {
    current: AtomicUsize,
    limit: usize,
}

impl InflightGauge {
    /// Reserve `n` slots, or refuse without touching the gauge. The CAS
    /// loop keeps concurrent reader threads from conspiring past the
    /// limit.
    fn try_admit(self: &Arc<Self>, n: usize) -> Option<InflightGuard> {
        let mut current = self.current.load(Ordering::Relaxed);
        loop {
            if current.saturating_add(n) > self.limit {
                return None;
            }
            match self.current.compare_exchange_weak(
                current,
                current + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InflightGuard {
                        gauge: Arc::clone(self),
                        n,
                    })
                }
                Err(actual) => current = actual,
            }
        }
    }
}

/// Releases its reservation on drop, so every exit path — merged rows
/// written, shard fault, client hangup with work still queued — returns
/// the slots.
struct InflightGuard {
    gauge: Arc<InflightGauge>,
    n: usize,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gauge.current.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// The gateway's armed admission controls; both `None` when unconfigured,
/// which keeps the admit check on the hot path to two `Option` tests.
struct Admission {
    bucket: Option<TokenBucket>,
    inflight: Option<Arc<InflightGauge>>,
}

impl Admission {
    fn from_options(options: &GatewayOptions, tenant: &str, now: Instant) -> Self {
        let bucket = options
            .quotas
            .iter()
            .find(|(quota_tenant, _)| quota_tenant == tenant)
            .map(|&(_, rps)| TokenBucket::new(rps, now));
        let inflight = options.max_inflight.map(|limit| {
            Arc::new(InflightGauge {
                current: AtomicUsize::new(0),
                limit,
            })
        });
        Self { bucket, inflight }
    }

    /// Admit `n` queries or say how long the client should wait. The
    /// bucket is charged before the gauge is consulted: a shed request
    /// still spends its quota, so a client hammering an overloaded
    /// gateway drains its own allowance, not its neighbours' service.
    fn try_admit(&self, n: usize) -> Result<Option<InflightGuard>, u32> {
        if let Some(bucket) = &self.bucket {
            bucket.try_take(n, Instant::now())?;
        }
        match &self.inflight {
            None => Ok(None),
            Some(gauge) => gauge.try_admit(n).map(Some).ok_or(INFLIGHT_RETRY_MS),
        }
    }
}

/// Why a shard could not answer a query. One fault fans out to every query
/// that was in the failed batch, hence `Clone`.
#[derive(Debug, Clone)]
struct ShardFault {
    peer: String,
    detail: String,
}

/// One query's partial row from one shard, or the fault that lost it.
type RowResult = Result<Vec<(u32, f64)>, ShardFault>;

/// One query enqueued to one shard's batcher.
struct ShardJob {
    query: Arc<PreparedSampleFeatures>,
    reply: SyncSender<RowResult>,
}

/// The gateway's handle on one shard: where to enqueue jobs, and the
/// partition the shard's rows are validated against.
struct ShardHandle {
    peer: String,
    classes: Vec<usize>,
    queue: SyncSender<ShardJob>,
}

/// A batch (or single request) submitted to a shard's mux, paired with the
/// jobs its rows answer. The distributor consumes these in submission
/// order.
enum InFlight {
    Batch {
        pending: PendingReply<ClientReply>,
        jobs: Vec<ShardJob>,
    },
    Single {
        pending: PendingReply<ClientReply>,
        job: ShardJob,
    },
}

/// The batching front door itself: validated connections to the whole
/// shard fleet, one batcher/distributor thread pair per shard.
///
/// Built with [`Gateway::connect`] (the same handshake, fingerprint, and
/// exact-cover validation as [`RemoteBackend::connect`]) and served with
/// [`serve_tcp`] / [`serve_unix`] — or driven in process through
/// [`serve_client`]. Dropping the gateway closes the shard queues; the
/// batcher and distributor threads drain what is in flight and exit on
/// their own.
pub struct Gateway {
    reference: Arc<ReferenceSet>,
    /// Computed once: a full reference walk, served on every client
    /// handshake.
    fingerprint: u64,
    /// The tenant this gateway serves (see [`GatewayOptions::tenant`]).
    tenant: String,
    /// Armed admission controls (quota bucket, inflight gauge); shared
    /// with every connection's reader thread.
    admission: Arc<Admission>,
    shards: Vec<ShardHandle>,
    /// One batcher thread per shard; each batcher joins its own
    /// distributor on exit. Reaped in [`Drop`] after the shard queues
    /// close.
    batchers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("n_shards", &self.shards.len())
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Connect to the shard fleet at `endpoints` and spawn the per-shard
    /// batching pipelines. Handshake validation and partition assignment
    /// are exactly [`RemoteBackend::connect`]'s.
    pub fn connect(
        reference: Arc<ReferenceSet>,
        endpoints: &[Endpoint],
        options: GatewayOptions,
    ) -> Result<Self, NetError> {
        if options.max_batch == 0 {
            return Err(NetError::Partition(
                "gateway max_batch must be at least 1".into(),
            ));
        }
        if let Some((tenant, _)) = options.quotas.iter().find(|&&(_, rps)| rps == 0) {
            return Err(NetError::Partition(format!(
                "quota for tenant {tenant:?} must be at least 1 request per second"
            )));
        }
        if options.max_inflight == Some(0) {
            return Err(NetError::Partition(
                "gateway max_inflight must be at least 1".into(),
            ));
        }
        let tenant = options
            .tenant
            .clone()
            .unwrap_or_else(|| wire::DEFAULT_TENANT.to_string());
        if !wire::valid_tenant(&tenant) {
            return Err(NetError::Tenant {
                peer: "gateway".into(),
                tenant,
                detail: format!(
                    "not a valid tenant id (want 1..={} characters of [A-Za-z0-9._-])",
                    wire::MAX_TENANT_LEN
                ),
            });
        }
        let admission = Arc::new(Admission::from_options(&options, &tenant, Instant::now()));
        let workers = connect_workers(&reference, endpoints, options.tenant.as_deref())?;
        let fingerprint = reference.fingerprint();
        // Columns per class across the active views; a shard's dense
        // partial row carries classes * kinds cells.
        let n_kinds = match reference.n_classes() {
            0 => 0,
            n => reference.n_columns() / n,
        };
        let mut shards = Vec::with_capacity(workers.len());
        let mut batchers = Vec::with_capacity(workers.len());
        for worker in workers {
            let peer = worker.endpoint.to_string();
            let classes = worker.classes.clone();
            let (queue, jobs) = mpsc::sync_channel::<ShardJob>(SHARD_QUEUE_DEPTH);
            // Clamp the batch per shard so its worst-case dense batch
            // response stays under the frame budget even on wide
            // geometries.
            let max_batch = options
                .max_batch
                .min(wire::max_batch_rows_for(classes.len() * n_kinds));
            let batcher = std::thread::Builder::new()
                .name("gw-batcher".into())
                .spawn(move || batcher_loop(worker, jobs, max_batch))
                .map_err(|e| NetError::Io {
                    peer: peer.clone(),
                    source: e,
                })?;
            // On an early return the half-built Gateway drops: shard queues
            // close, the already-spawned batchers exit and are joined.
            batchers.push(batcher);
            shards.push(ShardHandle {
                peer,
                classes,
                queue,
            });
        }
        Ok(Self {
            reference,
            fingerprint,
            tenant,
            admission,
            shards,
            batchers,
        })
    }

    /// The reference set the fleet serves.
    pub fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// The tenant this gateway serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Number of shard workers behind this gateway.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The handshake the gateway answers clients with: it presents as one
    /// worker serving every class, so the real fleet partition never
    /// leaks past the gateway. [`wire::FEATURE_OVERLOAD`] is advertised
    /// because the gateway may answer any request with a wire
    /// [`Overload`](wire::Overload) frame when admission sheds it.
    fn hello(&self) -> Hello {
        Hello {
            protocol: wire::PROTOCOL_VERSION,
            features: wire::FEATURE_SCORE_BATCH | wire::FEATURE_OVERLOAD,
            fingerprint: self.fingerprint,
            n_classes: self.reference.n_classes(),
            n_columns: self.reference.n_columns(),
            classes: (0..self.reference.n_classes()).collect(),
            tenant: self.tenant.clone(),
        }
    }

    /// Await one query's partial rows from every shard and max-merge them
    /// into the full dense row, validated cell by cell against each
    /// shard's partition (a buggy or malicious worker cannot write columns
    /// it does not own).
    fn collect_full_row(
        &self,
        replies: Vec<Receiver<RowResult>>,
    ) -> Result<Vec<(u32, f64)>, NetError> {
        let n_columns = self.reference.n_columns();
        let n_classes = self.reference.n_classes();
        let mut row = vec![0.0f64; n_columns];
        for (shard, reply) in self.shards.iter().zip(replies) {
            let cells = match reply.recv() {
                Ok(Ok(cells)) => cells,
                Ok(Err(fault)) => {
                    return Err(NetError::WorkerLost {
                        peer: fault.peer,
                        detail: fault.detail,
                    });
                }
                Err(_) => {
                    return Err(NetError::WorkerLost {
                        peer: shard.peer.clone(),
                        detail: "shard pipeline closed".into(),
                    });
                }
            };
            for (column, score) in cells {
                let column = column as usize;
                if column >= n_columns
                    || shard.classes.binary_search(&(column % n_classes)).is_err()
                {
                    return Err(NetError::Protocol {
                        peer: shard.peer.clone(),
                        detail: format!("response cell for column {column} outside its partition"),
                    });
                }
                row[column] = row[column].max(score);
            }
        }
        Ok(row
            .into_iter()
            .enumerate()
            .map(|(column, score)| (column as u32, score))
            .collect())
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // Close every shard queue first so the batchers (and through them,
        // their distributors) run dry and exit, then reap the threads.
        self.shards.clear();
        for batcher in self.batchers.drain(..) {
            let _ = batcher.join();
        }
    }
}

/// Enqueue one query to every shard, returning the reply receivers in
/// shard order. Sending never waits on the network — the batcher threads
/// do that — though a shard queue at [`SHARD_QUEUE_DEPTH`] blocks here
/// until its batcher drains a slot, which is the backpressure that keeps a
/// slow shard from buffering an unbounded backlog. A send to a dead
/// batcher is deliberately ignored: the dropped reply sender surfaces the
/// loss at collect time, attributed to the right peer.
fn submit_to_shards(
    queues: &[SyncSender<ShardJob>],
    query: &Arc<PreparedSampleFeatures>,
) -> Vec<Receiver<RowResult>> {
    queues
        .iter()
        .map(|queue| {
            // Oneshot: each job is answered exactly once (row or fault), so
            // capacity 1 means the sender can never block.
            let (reply, rx) = mpsc::sync_channel(1);
            let _ = queue.send(ShardJob {
                query: Arc::clone(query),
                reply,
            });
            rx
        })
        .collect()
}

/// Drain one shard's job queue, packing waiting queries into batch frames
/// and submitting them to the shard's mux without awaiting replies. Exits
/// when every [`ShardHandle`] clone of the queue sender is gone.
fn batcher_loop(worker: RemoteWorker, jobs: Receiver<ShardJob>, max_batch: usize) {
    let peer = worker.endpoint.to_string();
    let (inflight_tx, inflight_rx) = mpsc::sync_channel::<InFlight>(INFLIGHT_DEPTH);
    let spawned = std::thread::Builder::new()
        .name("gw-distributor".into())
        .spawn({
            let peer = peer.clone();
            move || distributor_loop(inflight_rx, &peer)
        });
    let distributor = match spawned {
        Ok(handle) => handle,
        Err(e) => {
            // Without a distributor no reply can ever route; fault every
            // job as it arrives until the shard queue closes.
            let detail = format!("could not spawn the shard's distributor thread: {e}");
            while let Ok(job) = jobs.recv() {
                fault_jobs(vec![job], &peer, detail.clone());
            }
            return;
        }
    };

    let mut next_id = 0u64;
    // The batch target adapts to load between MIN_BATCH_TARGET and
    // max_batch; an idle gateway sends small frames fast, a loaded one
    // packs big frames.
    let mut target = MIN_BATCH_TARGET.min(max_batch);
    'serve: while let Ok(first) = jobs.recv() {
        // The coalescing moment: everything already queued — from any
        // client connection — rides in this frame, up to the current
        // adaptive target.
        let mut pack = vec![first];
        while pack.len() < target {
            match jobs.try_recv() {
                Ok(job) => pack.push(job),
                Err(_) => break,
            }
        }
        target = next_batch_target(target, pack.len(), max_batch);
        // Failpoint: losing a pack at the coalescing moment must fault
        // exactly the queries it carried, never wedge the batcher.
        if let Err(e) = crate::shardnet::inject("gateway.coalesce", &peer) {
            fault_jobs(pack, &peer, e.to_string());
            continue;
        }
        if worker.supports_batch {
            let id = next_id;
            next_id += 1;
            let bytes = wire::score_batch_request_bytes(id, pack.iter().map(|j| j.query.as_ref()));
            let pending = worker.submit(id, bytes);
            if inflight_tx
                .send(InFlight::Batch {
                    pending,
                    jobs: pack,
                })
                .is_err()
            {
                break 'serve;
            }
        } else {
            // A batch-less worker still gets the pipelining: every request
            // is on the wire before any reply is awaited.
            for job in pack {
                let id = next_id;
                next_id += 1;
                let pending = worker.submit(id, wire::score_request_bytes(id, &job.query));
                if inflight_tx.send(InFlight::Single { pending, job }).is_err() {
                    break 'serve;
                }
            }
        }
    }
    drop(inflight_tx);
    let _ = distributor.join();
    // `worker` drops here: the mux joins its threads and closes the socket.
}

/// Await one shard's replies in submission order and route each row back
/// to the query that asked for it. A failed batch faults every query it
/// carried — with the peer named — and the batcher's next submit re-dials
/// the poisoned connection (see `RemoteWorker::submit`), so one lost
/// worker connection never wedges the gateway into answering every future
/// query with `WorkerLost`.
fn distributor_loop(inflight: Receiver<InFlight>, peer: &str) {
    for entry in inflight {
        // Failpoint: a distributor that cannot route a reply faults the
        // batch it was for; the abandoned `pending` is simply dropped.
        if let Err(e) = crate::shardnet::inject("gateway.distribute", peer) {
            match entry {
                InFlight::Batch { jobs, .. } => fault_jobs(jobs, peer, e.to_string()),
                InFlight::Single { job, .. } => fault_jobs(vec![job], peer, e.to_string()),
            }
            continue;
        }
        match entry {
            InFlight::Batch { pending, jobs } => match pending.wait() {
                Ok(ClientReply::Batch(response)) if response.rows.len() == jobs.len() => {
                    for (job, row) in jobs.into_iter().zip(response.rows) {
                        let _ = job.reply.send(Ok(row));
                    }
                }
                Ok(ClientReply::Batch(response)) => {
                    let detail = format!(
                        "batch reply carried {} rows for {} queries",
                        response.rows.len(),
                        jobs.len()
                    );
                    fault_jobs(jobs, peer, detail);
                }
                Ok(ClientReply::Score(_)) => {
                    fault_jobs(
                        jobs,
                        peer,
                        "single-row reply answering a batch request".into(),
                    );
                }
                Ok(ClientReply::Overload(o)) => {
                    // A worker shedding load behind the gateway is a shard
                    // fault for the queries in flight, not something to
                    // propagate as the gateway's own overload.
                    let detail =
                        format!("shard shed the batch: retry after {}ms", o.retry_after_ms);
                    fault_jobs(jobs, peer, detail);
                }
                Err(e) => {
                    let detail = e.to_string();
                    fault_jobs(jobs, peer, detail);
                }
            },
            InFlight::Single { pending, job } => match pending.wait() {
                Ok(ClientReply::Score(response)) => {
                    let _ = job.reply.send(Ok(response.cells));
                }
                Ok(ClientReply::Batch(_)) => {
                    fault_jobs(
                        vec![job],
                        peer,
                        "batch reply answering a single-query request".into(),
                    );
                }
                Ok(ClientReply::Overload(o)) => {
                    let detail =
                        format!("shard shed the query: retry after {}ms", o.retry_after_ms);
                    fault_jobs(vec![job], peer, detail);
                }
                Err(e) => {
                    let detail = e.to_string();
                    fault_jobs(vec![job], peer, detail);
                }
            },
        }
    }
}

fn fault_jobs(jobs: Vec<ShardJob>, peer: &str, detail: String) {
    let fault = ShardFault {
        peer: peer.to_string(),
        detail,
    };
    for job in jobs {
        let _ = job.reply.send(Err(fault.clone()));
    }
}

/// Work items handed from a client connection's reader thread to its
/// writer: each one's shard replies were already submitted, so the writer
/// only collects, merges, and answers — in request order.
enum ClientWork {
    Row {
        id: u64,
        replies: Vec<Receiver<RowResult>>,
        /// Inflight reservation, released when the row is answered (or
        /// the connection dies with the work still queued).
        guard: Option<InflightGuard>,
    },
    Batch {
        id: u64,
        queries: Vec<Vec<Receiver<RowResult>>>,
        guard: Option<InflightGuard>,
    },
    /// Admission shed this request: answer it with a wire
    /// [`Overload`](wire::Overload) frame — the connection stays open and
    /// later requests are admitted on their own merits.
    Reject {
        id: u64,
        retry_after_ms: u32,
    },
    /// A tenant-select [`Hello`] from the client: confirmed with the
    /// gateway's own greeting when the tenant matches, refused with a
    /// typed error otherwise (a gateway fronts exactly one tenant).
    Greet {
        tenant: String,
    },
    Fail {
        detail: String,
    },
}

/// Serve one client connection: handshake, then answer score requests
/// until the client says goodbye (a `Shutdown` frame, a clean EOF, or the
/// idle read deadline).
///
/// The connection is **pipelined**: `reader` moves to a dedicated thread
/// that decodes frames and submits every query to the shard queues the
/// moment it arrives, while this thread writes the merged responses back
/// in request order. A client that keeps several requests in flight
/// therefore overlaps its round trips end to end — through the gateway
/// *and* through the shard sockets behind it.
///
/// A shard failure or a protocol violation answers the client with a
/// best-effort `Error` frame, then returns the typed error; the caller
/// owns closing the transport (which also unblocks the reader thread).
pub fn serve_client<R, W>(
    gateway: &Gateway,
    reader: R,
    mut writer: W,
    peer: &str,
) -> Result<(), NetError>
where
    R: Read + Send + 'static,
    W: Write,
{
    Frame::Hello(gateway.hello()).write_to(&mut writer, peer)?;
    let queues: Vec<SyncSender<ShardJob>> =
        gateway.shards.iter().map(|s| s.queue.clone()).collect();
    // Bounded on purpose (see [`CLIENT_PIPELINE_LIMIT`]): a client that
    // stops reading responses eventually blocks its own reader instead of
    // growing this queue without limit.
    let (work_tx, work_rx) = mpsc::sync_channel::<ClientWork>(CLIENT_PIPELINE_LIMIT);
    // The gateway answers every class, so a client batch's response rows
    // are dense over the full geometry; batches whose response could not
    // fit in one frame are rejected up front.
    let max_client_batch = wire::max_batch_rows_for(gateway.reference.n_columns());
    let reader_peer = peer.to_string();
    let admission = Arc::clone(&gateway.admission);
    // Detached on purpose: the reader is connection-scoped and exits when
    // the caller closes the transport. If the spawn itself fails, the moved
    // `work_tx` drops and the writer below sees a clean close immediately.
    super::spawn_detached("gw-client-reader", move || {
        client_reader_loop(
            reader,
            &queues,
            &work_tx,
            &admission,
            max_client_batch,
            &reader_peer,
        )
    });

    let mut answer = || -> Result<(), NetError> {
        // When the reader hangs up, buffered work still drains: every
        // already-submitted request is answered before the clean close.
        for work in &work_rx {
            match work {
                ClientWork::Row { id, replies, guard } => {
                    let cells = gateway.collect_full_row(replies)?;
                    Frame::ScoreResponse(ScoreResponse { id, cells })
                        .write_to(&mut writer, peer)?;
                    drop(guard);
                }
                ClientWork::Batch { id, queries, guard } => {
                    let rows = queries
                        .into_iter()
                        .map(|replies| gateway.collect_full_row(replies))
                        .collect::<Result<Vec<_>, _>>()?;
                    Frame::ScoreBatchResponse(ScoreBatchResponse { id, rows })
                        .write_to(&mut writer, peer)?;
                    drop(guard);
                }
                ClientWork::Reject { id, retry_after_ms } => {
                    Frame::Overload(wire::Overload { id, retry_after_ms })
                        .write_to(&mut writer, peer)?;
                }
                ClientWork::Greet { tenant } => {
                    if tenant == gateway.tenant {
                        Frame::Hello(gateway.hello()).write_to(&mut writer, peer)?;
                    } else {
                        return Err(NetError::Tenant {
                            peer: peer.to_string(),
                            tenant,
                            detail: format!("this gateway serves only tenant {:?}", gateway.tenant),
                        });
                    }
                }
                ClientWork::Fail { detail } => {
                    return Err(NetError::Protocol {
                        peer: peer.to_string(),
                        detail,
                    });
                }
            }
        }
        Ok(())
    };
    let result = answer();
    if let Err(e) = &result {
        let _ = Frame::Error(e.to_string()).write_to(&mut writer, peer);
    }
    result
}

/// The reader half of [`serve_client`]: decode client frames and submit
/// each query to every shard queue immediately. The writer learns of each
/// request through the work channel; dropping the channel's sender is the
/// reader's clean-goodbye signal.
fn client_reader_loop<R: Read>(
    mut reader: R,
    queues: &[SyncSender<ShardJob>],
    work: &SyncSender<ClientWork>,
    admission: &Admission,
    max_client_batch: usize,
    peer: &str,
) {
    loop {
        match Frame::read_from(&mut reader, peer) {
            Ok(Frame::ScoreRequest(request)) => {
                let wire::ScoreRequest { id, query } = *request;
                let guard = match admission.try_admit(1) {
                    Ok(guard) => guard,
                    Err(retry_after_ms) => {
                        // Shed before submitting anything; the connection
                        // stays open for the retry.
                        if work
                            .send(ClientWork::Reject { id, retry_after_ms })
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                let replies = submit_to_shards(queues, &Arc::new(query));
                if work.send(ClientWork::Row { id, replies, guard }).is_err() {
                    return;
                }
            }
            Ok(Frame::ScoreBatchRequest(batch)) if batch.queries.len() > max_client_batch => {
                // The dense response to this batch could not fit in one
                // frame; reject it before scoring anything.
                let _ = work.send(ClientWork::Fail {
                    detail: format!(
                        "batch of {} queries would overflow the response frame \
                         (at most {max_client_batch} for this geometry)",
                        batch.queries.len()
                    ),
                });
                return;
            }
            Ok(Frame::ScoreBatchRequest(batch)) => {
                // A batch of k queries costs k admission tokens and k
                // inflight slots: quota cannot be dodged by batching.
                let guard = match admission.try_admit(batch.queries.len().max(1)) {
                    Ok(guard) => guard,
                    Err(retry_after_ms) => {
                        let rejected = ClientWork::Reject {
                            id: batch.id,
                            retry_after_ms,
                        };
                        if work.send(rejected).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                // Submit the whole batch before handing it to the writer:
                // the shard batchers see the burst at once and pack it
                // into few wire frames.
                let queries = batch
                    .queries
                    .into_iter()
                    .map(|query| submit_to_shards(queues, &Arc::new(query)))
                    .collect();
                if work
                    .send(ClientWork::Batch {
                        id: batch.id,
                        queries,
                        guard,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Frame::Hello(request)) => {
                // A tenant-select exchange; the writer half confirms or
                // refuses it in request order.
                if work
                    .send(ClientWork::Greet {
                        tenant: request.tenant,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Frame::Shutdown) => return,
            Ok(unexpected) => {
                // Assign included: the gateway's advertised partition is
                // the whole class set and is not negotiable per client.
                let _ = work.send(ClientWork::Fail {
                    detail: format!("unexpected frame {unexpected:?} from client"),
                });
                return;
            }
            // A clean EOF between frames is a client hangup, not an error.
            Err(NetError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                return;
            }
            // The idle deadline fired: the client is likely gone — close
            // quietly, mirroring the worker's serving loop.
            Err(NetError::Io { ref source, .. })
                if matches!(
                    source.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(e) => {
                let _ = work.send(ClientWork::Fail {
                    detail: format!("could not read client frame: {e}"),
                });
                return;
            }
        }
    }
}

/// Accept-loop over a TCP listener: one pipelined [`serve_client`] per
/// connection, reads bounded by [`IDLE_TIMEOUT`] and writes by
/// [`IO_TIMEOUT`]. Returns when the listener itself fails.
pub fn serve_tcp(gateway: Arc<Gateway>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "tcp client".to_string());
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                // A client that stops reading must not pin this
                // connection's writer in write_all forever.
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let gateway = Arc::clone(&gateway);
                super::spawn_detached("gateway-conn", move || {
                    let reader = match stream.try_clone() {
                        Ok(reader) => reader,
                        Err(e) => {
                            eprintln!("fhc-gateway: cannot split connection with {peer}: {e}");
                            return;
                        }
                    };
                    let result = serve_client(&gateway, reader, &stream, &peer);
                    // Unblocks the reader thread if the writer bailed first.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    if let Err(e) = result {
                        eprintln!("fhc-gateway: connection with {peer} failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

/// Accept-loop over a Unix-domain listener; see [`serve_tcp`].
pub fn serve_unix(gateway: Arc<Gateway>, listener: UnixListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let gateway = Arc::clone(&gateway);
                super::spawn_detached("gateway-conn", move || {
                    let reader = match stream.try_clone() {
                        Ok(reader) => reader,
                        Err(e) => {
                            eprintln!("fhc-gateway: cannot split unix connection: {e}");
                            return;
                        }
                    };
                    let result = serve_client(&gateway, reader, &stream, "unix client");
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    if let Err(e) = result {
                        eprintln!("fhc-gateway: unix connection failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

/// A [`SimilarityBackend`] that scores through an `fhc-gateway` front
/// door.
///
/// On the wire this *is* a [`RemoteBackend`] with one endpoint — the
/// gateway answers the same handshake as a worker serving every class —
/// so every serving guarantee (typed errors, byte-identical rows) carries
/// over unchanged. The type exists so a topology's configuration
/// round-trips faithfully: `gateway:EP` names a front door, not a bare
/// worker.
#[derive(Debug, Clone)]
pub struct GatewayBackend {
    inner: RemoteBackend,
    endpoint: Endpoint,
}

impl GatewayBackend {
    /// Connect to the gateway at `endpoint` and validate its handshake
    /// against `reference` (fingerprint, geometry, protocol version).
    pub fn connect(reference: Arc<ReferenceSet>, endpoint: &Endpoint) -> Result<Self, NetError> {
        Self::connect_tenant(reference, endpoint, None)
    }

    /// [`GatewayBackend::connect`] against a named tenant: the handshake
    /// selects (and then enforces) `tenant` on the gateway, which must
    /// have been started to serve it. `None` means the default tenant.
    pub fn connect_tenant(
        reference: Arc<ReferenceSet>,
        endpoint: &Endpoint,
        tenant: Option<&str>,
    ) -> Result<Self, NetError> {
        let inner =
            RemoteBackend::connect_tenant(reference, std::slice::from_ref(endpoint), tenant)?;
        Ok(Self {
            inner,
            endpoint: endpoint.clone(),
        })
    }

    /// The gateway endpoint this backend scores through.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The tenant selected at connect time, or `None` for the default
    /// tenant.
    pub fn tenant(&self) -> Option<&str> {
        self.inner.tenant()
    }

    /// Batch row scoring through the gateway: the whole slice rides as
    /// [`wire::ScoreBatchRequest`] frames, which is exactly the shape the gateway coalesces best —
    /// each chunk is split across the shard fleet as one batched frame per
    /// shard. See [`RemoteBackend::try_feature_rows_prepared`].
    pub fn try_feature_rows_prepared(
        &self,
        queries: &[PreparedSampleFeatures],
    ) -> Result<Vec<Vec<f64>>, NetError> {
        self.inner.try_feature_rows_prepared(queries)
    }
}

impl SimilarityBackend for GatewayBackend {
    fn reference(&self) -> &ReferenceSet {
        self.inner.reference()
    }

    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        self.inner.max_scores_into(query, out);
    }

    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.inner.try_max_scores_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use crate::features::{FeatureKind, SampleFeatures};
    use crate::shardnet::worker::{self, ShardWorker};

    fn reference() -> Arc<ReferenceSet> {
        let train = vec![
            SampleFeatures::extract(b"the velvet assembler executable body one"),
            SampleFeatures::extract(b"the velvet assembler executable body two"),
            SampleFeatures::extract(b"an openmalaria simulation binary payload"),
        ];
        Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1],
            &FeatureKind::ALL,
        ))
    }

    fn spawn_worker(reference: Arc<ReferenceSet>) -> Endpoint {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
        let addr = listener.local_addr().unwrap().to_string();
        let shard = Arc::new(ShardWorker::all_classes(reference));
        std::thread::spawn(move || worker::serve_tcp(shard, listener));
        Endpoint::Tcp(addr)
    }

    fn spawn_gateway(gateway: Gateway) -> Endpoint {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback gateway");
        let addr = listener.local_addr().unwrap().to_string();
        let gateway = Arc::new(gateway);
        std::thread::spawn(move || serve_tcp(gateway, listener));
        Endpoint::Tcp(addr)
    }

    #[test]
    fn gateway_rows_are_byte_identical_to_the_indexed_backend() {
        let rs = reference();
        let endpoints = vec![spawn_worker(rs.clone()), spawn_worker(rs.clone())];
        let gateway =
            Gateway::connect(rs.clone(), &endpoints, GatewayOptions::default()).expect("connect");
        assert_eq!(gateway.n_shards(), 2);
        let front = spawn_gateway(gateway);

        let backend = GatewayBackend::connect(rs.clone(), &front).expect("dial gateway");
        let indexed = BackendConfig::Indexed.build(rs.clone());
        for body in [
            b"the velvet assembler executable body five".as_slice(),
            b"an openmalaria simulation binary probe".as_slice(),
            b"entirely unrelated probe bytes".as_slice(),
        ] {
            let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(body));
            let mut via_gateway = vec![0.0f64; rs.n_columns()];
            backend
                .try_max_scores_into(&query, &mut via_gateway)
                .expect("gateway scoring");
            let mut direct = vec![0.0f64; rs.n_columns()];
            indexed.max_scores_into(&query, &mut direct);
            let gw_bits: Vec<u64> = via_gateway.iter().map(|s| s.to_bits()).collect();
            let direct_bits: Vec<u64> = direct.iter().map(|s| s.to_bits()).collect();
            assert_eq!(gw_bits, direct_bits, "row diverged for {body:?}");
        }
    }

    #[test]
    fn a_lost_shard_connection_heals_behind_the_gateway() {
        let rs = reference();
        // A worker whose every accepted connection answers exactly one
        // request and then drops without a goodbye — each query costs the
        // gateway its shard connection.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
        let addr = listener.local_addr().unwrap().to_string();
        let shard = Arc::new(ShardWorker::all_classes(rs.clone()));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let _ = shard.serve_requests(stream, "one-shot", Some(1));
                });
            }
        });

        let gateway = Gateway::connect(
            rs.clone(),
            &[Endpoint::Tcp(addr)],
            GatewayOptions::default(),
        )
        .expect("connect");
        let front = spawn_gateway(gateway);
        let backend = GatewayBackend::connect(rs.clone(), &front).expect("dial gateway");

        let indexed = crate::backend::BackendConfig::Indexed.build(rs.clone());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler executable heal probe",
        ));
        let mut expected = vec![0.0f64; rs.n_columns()];
        indexed.max_scores_into(&query, &mut expected);

        // Individual queries may still fail while a poison is settling
        // (always as a typed error, never a wrong row), but the stack must
        // keep healing: multiple successes require the gateway to re-dial
        // the shard, and the client to re-dial the gateway, repeatedly.
        let mut successes = 0;
        for _ in 0..200 {
            let mut row = vec![0.0f64; rs.n_columns()];
            match backend.try_max_scores_into(&query, &mut row) {
                Ok(()) => {
                    assert_eq!(row, expected, "healed path must stay byte-identical");
                    successes += 1;
                    if successes >= 3 {
                        break;
                    }
                }
                Err(crate::error::FhcError::Net(_)) => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(other) => panic!("expected a typed net error, got {other}"),
            }
        }
        assert!(
            successes >= 3,
            "gateway never recovered from the dropped shard connection \
             ({successes} successes)"
        );
    }

    #[test]
    fn an_oversized_client_batch_is_rejected_before_scoring() {
        // Drive the reader loop directly with a batch one query over the
        // response budget: it must emit a Fail work item (which the writer
        // half answers with an Error frame) without submitting anything.
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"overflow probe"));
        let frame_bytes = wire::score_batch_request_bytes(7, vec![&query; 3]);
        let queues: Vec<SyncSender<ShardJob>> = Vec::new();
        let (work_tx, work_rx) = mpsc::sync_channel::<ClientWork>(8);
        client_reader_loop(
            std::io::Cursor::new(frame_bytes),
            &queues,
            &work_tx,
            &open_admission(),
            2,
            "test client",
        );
        drop(work_tx);
        match work_rx.recv().expect("a work item") {
            ClientWork::Fail { detail } => assert!(
                detail.contains("overflow the response frame"),
                "error names the violation: {detail}"
            ),
            other => panic!("expected a Fail work item, got a {}", work_name(&other)),
        }
        assert!(work_rx.recv().is_err(), "reader stops after the rejection");
    }

    fn open_admission() -> Admission {
        Admission {
            bucket: None,
            inflight: None,
        }
    }

    fn work_name(work: &ClientWork) -> &'static str {
        match work {
            ClientWork::Row { .. } => "Row",
            ClientWork::Batch { .. } => "Batch",
            ClientWork::Greet { .. } => "Greet",
            ClientWork::Fail { .. } => "Fail",
            ClientWork::Reject { .. } => "Reject",
        }
    }

    #[test]
    fn the_token_bucket_refills_on_schedule() {
        let start = Instant::now();
        let bucket = TokenBucket::new(10, start);
        // A full bucket admits its capacity immediately...
        assert_eq!(bucket.try_take(10, start), Ok(()));
        // ...then an empty one quotes the refill schedule: 1 token at 10
        // rps is 100ms away.
        assert_eq!(bucket.try_take(1, start), Err(100));
        // 5 tokens would take 500ms.
        assert_eq!(bucket.try_take(5, start), Err(500));
        // After 250ms, 2.5 tokens dripped back: 2 admits, 3 does not.
        let later = start + std::time::Duration::from_millis(250);
        assert_eq!(bucket.try_take(2, later), Ok(()));
        assert!(bucket.try_take(3, later).is_err());
        // A request wider than the bucket is charged a full bucket, never
        // left unadmittable.
        let refilled = start + std::time::Duration::from_secs(10);
        assert_eq!(bucket.try_take(500, refilled), Ok(()));
        // The quoted wait is never zero.
        assert!(bucket.try_take(1, refilled).unwrap_err() >= 1);
    }

    #[test]
    fn an_exhausted_quota_sheds_with_a_typed_rejection() {
        // Quota of 2 rps, three single queries in one burst: the first two
        // are admitted, the third is shed — and the reader keeps going
        // (the connection is not torn down by a rejection).
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"quota probe"));
        let mut frames = Vec::new();
        for id in 0..3u64 {
            frames.extend_from_slice(&wire::score_request_bytes(id, &query));
        }
        let admission = Admission {
            bucket: Some(TokenBucket::new(2, Instant::now())),
            inflight: None,
        };
        let queues: Vec<SyncSender<ShardJob>> = Vec::new();
        let (work_tx, work_rx) = mpsc::sync_channel::<ClientWork>(8);
        client_reader_loop(
            std::io::Cursor::new(frames),
            &queues,
            &work_tx,
            &admission,
            64,
            "test client",
        );
        drop(work_tx);
        let work: Vec<ClientWork> = work_rx.into_iter().collect();
        assert_eq!(work.len(), 3, "every request is answered, shed or not");
        assert!(matches!(work[0], ClientWork::Row { id: 0, .. }));
        assert!(matches!(work[1], ClientWork::Row { id: 1, .. }));
        match &work[2] {
            ClientWork::Reject { id, retry_after_ms } => {
                assert_eq!(*id, 2);
                assert!(*retry_after_ms >= 1, "a rejection always quotes a wait");
            }
            other => panic!(
                "expected the third request shed, got a {}",
                work_name(other)
            ),
        }
    }

    #[test]
    fn the_inflight_ceiling_sheds_and_recovers() {
        // Ceiling of 2; a batch of 2 fills it, a following single query is
        // shed while the batch's guard is alive, and admitted again once
        // the guard drops.
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"inflight probe"));
        let mut frames = Vec::new();
        frames.extend_from_slice(&wire::score_batch_request_bytes(0, vec![&query; 2]));
        frames.extend_from_slice(&wire::score_request_bytes(1, &query));
        let gauge = Arc::new(InflightGauge {
            current: AtomicUsize::new(0),
            limit: 2,
        });
        let admission = Admission {
            bucket: None,
            inflight: Some(Arc::clone(&gauge)),
        };
        let queues: Vec<SyncSender<ShardJob>> = Vec::new();
        let (work_tx, work_rx) = mpsc::sync_channel::<ClientWork>(8);
        client_reader_loop(
            std::io::Cursor::new(frames),
            &queues,
            &work_tx,
            &admission,
            64,
            "test client",
        );
        drop(work_tx);
        let mut work = work_rx.into_iter();
        let batch = work.next().expect("the batch work item");
        assert!(matches!(batch, ClientWork::Batch { id: 0, .. }));
        assert_eq!(gauge.current.load(Ordering::Relaxed), 2, "ceiling reached");
        match work.next().expect("the shed single query") {
            ClientWork::Reject { id, retry_after_ms } => {
                assert_eq!(id, 1);
                assert_eq!(retry_after_ms, INFLIGHT_RETRY_MS);
            }
            other => panic!(
                "expected the single query shed, got a {}",
                work_name(&other)
            ),
        }
        // Answering (here: dropping) the batch releases its reservation.
        drop(batch);
        assert_eq!(gauge.current.load(Ordering::Relaxed), 0);
        assert!(gauge.try_admit(2).is_some(), "slots admit again");
    }

    #[test]
    fn a_shed_client_query_surfaces_as_a_typed_overload_error() {
        // End to end through real sockets: quota of 1 rps on the served
        // tenant, so a burst's first query scores byte-identically and a
        // follow-up is shed as NetError::Overload — never a wrong row,
        // and the connection survives to serve again after the refill.
        let rs = reference();
        let endpoints = vec![spawn_worker(rs.clone())];
        let options = GatewayOptions {
            quotas: vec![(wire::DEFAULT_TENANT.to_string(), 1)],
            ..GatewayOptions::default()
        };
        let gateway = Gateway::connect(rs.clone(), &endpoints, options).expect("connect");
        let front = spawn_gateway(gateway);
        let backend = GatewayBackend::connect(rs.clone(), &front).expect("dial gateway");

        let indexed = BackendConfig::Indexed.build(rs.clone());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler executable overload probe",
        ));
        let mut expected = vec![0.0f64; rs.n_columns()];
        indexed.max_scores_into(&query, &mut expected);

        let mut row = vec![0.0f64; rs.n_columns()];
        backend
            .try_max_scores_into(&query, &mut row)
            .expect("the in-quota query scores");
        assert_eq!(row, expected, "in-quota row stays byte-identical");

        let mut retry_after = None;
        for _ in 0..5 {
            let mut shed = vec![f64::NAN; rs.n_columns()];
            match backend.try_max_scores_into(&query, &mut shed) {
                Err(FhcError::Net(NetError::Overload { retry_after_ms, .. })) => {
                    retry_after = Some(retry_after_ms);
                    break;
                }
                // The bucket may have refilled between queries on a slow
                // machine; a success must still be byte-identical.
                Ok(()) => assert_eq!(shed, expected, "admitted row stays byte-identical"),
                Err(other) => panic!("expected a typed overload, got {other}"),
            }
        }
        let retry_after = retry_after.expect("a burst past 1 rps must be shed");
        assert!(retry_after >= 1, "the rejection quotes a wait");

        // The same connection heals once the bucket refills.
        std::thread::sleep(std::time::Duration::from_millis(1100));
        let mut healed = vec![0.0f64; rs.n_columns()];
        backend
            .try_max_scores_into(&query, &mut healed)
            .expect("the refilled bucket admits again");
        assert_eq!(healed, expected, "healed row stays byte-identical");
    }

    #[test]
    fn the_batch_target_grows_under_load_and_shrinks_when_idle() {
        let cap = 256;
        // Sustained load: a filled pack doubles the target until the cap.
        let mut target = MIN_BATCH_TARGET;
        let mut growth = vec![target];
        for _ in 0..8 {
            target = next_batch_target(target, target, cap);
            growth.push(target);
        }
        assert_eq!(growth, vec![8, 16, 32, 64, 128, 256, 256, 256, 256]);

        // Load passes: near-empty packs halve back down to the floor.
        let mut shrink = vec![target];
        for _ in 0..8 {
            target = next_batch_target(target, 1, cap);
            shrink.push(target);
        }
        assert_eq!(shrink, vec![256, 128, 64, 32, 16, 8, 8, 8, 8]);

        // A half-full pack holds steady.
        assert_eq!(next_batch_target(64, 40, cap), 64);

        // The target respects a cap below the floor (narrow geometries).
        assert_eq!(next_batch_target(3, 3, 3), 3);
        assert_eq!(next_batch_target(8, 8, 5), 5);
        // And never collapses to zero even with a degenerate cap.
        assert_eq!(next_batch_target(1, 0, 1), 1);
    }

    #[test]
    fn a_zero_max_batch_is_rejected_up_front() {
        let rs = reference();
        let err = Gateway::connect(
            rs,
            &[],
            GatewayOptions {
                max_batch: 0,
                ..GatewayOptions::default()
            },
        );
        assert!(matches!(err, Err(NetError::Partition(_))));
    }

    #[test]
    fn degenerate_admission_options_are_rejected_up_front() {
        let rs = reference();
        let err = Gateway::connect(
            rs.clone(),
            &[],
            GatewayOptions {
                quotas: vec![("acme".into(), 0)],
                ..GatewayOptions::default()
            },
        );
        assert!(matches!(err, Err(NetError::Partition(_))));
        let err = Gateway::connect(
            rs,
            &[],
            GatewayOptions {
                max_inflight: Some(0),
                ..GatewayOptions::default()
            },
        );
        assert!(matches!(err, Err(NetError::Partition(_))));
    }

    #[test]
    fn an_assign_from_a_client_is_a_typed_error() {
        let rs = reference();
        let endpoints = vec![spawn_worker(rs.clone())];
        let gateway =
            Gateway::connect(rs.clone(), &endpoints, GatewayOptions::default()).expect("connect");
        let front = spawn_gateway(gateway);

        let mut conn = front.connect().expect("dial gateway");
        let hello = match Frame::read_from(&mut conn, "gateway").unwrap() {
            Frame::Hello(h) => h,
            other => panic!("expected Hello, got {other:?}"),
        };
        assert!(hello.supports(wire::FEATURE_SCORE_BATCH));
        assert_eq!(hello.classes, vec![0, 1]);
        Frame::Assign(wire::Assign { classes: vec![0] })
            .write_to(&mut conn, "gateway")
            .unwrap();
        match Frame::read_from(&mut conn, "gateway").unwrap() {
            Frame::Error(message) => assert!(
                message.contains("unexpected frame"),
                "error names the violation: {message}"
            ),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
