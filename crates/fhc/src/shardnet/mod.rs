//! Distributed shard serving: reference-set shards behind a transport.
//!
//! [`ShardedBackend`](crate::backend::ShardedBackend) proved the
//! partition/max-merge contract in process: reference *classes* are
//! partitioned across shards, each shard scores its `(view, class)` cells,
//! and the partial rows max-merge into the full similarity row. This module
//! moves the shards behind a socket so the same contract scales across
//! processes and machines:
//!
//! * [`wire`] — the versioned, checksummed, length-prefixed protocol
//!   (built on [`hpcutil::frame`]): a [`Hello`](wire::Hello) handshake
//!   carrying the protocol version, the reference-set fingerprint and the
//!   worker's class partition; [`ScoreRequest`](wire::ScoreRequest) frames
//!   carrying prepared query hashes; [`ScoreResponse`](wire::ScoreResponse)
//!   frames carrying partial max-score rows.
//! * [`worker`] — [`ShardWorker`], the serving side:
//!   it owns a reference set (typically loaded from a classifier artifact),
//!   scores its class partition through the same block-size-bucketed index
//!   as [`IndexedBackend`](crate::backend::IndexedBackend), and answers
//!   score requests over any `Read + Write` stream. The `fhc-shardd` binary
//!   wraps it in a TCP / Unix-socket accept loop.
//! * [`remote`] — [`RemoteBackend`], the client
//!   side: a [`SimilarityBackend`](crate::backend::SimilarityBackend) whose
//!   `max_scores_into` fans out to N workers over persistent connections
//!   and max-merges their partial rows. Byte-identical to every in-process
//!   backend by the existing equivalence suites. Connections are driven by
//!   a [`hpcutil::Mux`], so concurrent callers pipeline over one socket
//!   per worker instead of serializing behind a connection lock.
//! * [`gateway`] — [`Gateway`], a batching front
//!   door: it accepts many client connections, coalesces concurrently
//!   arriving queries into [`ScoreBatchRequest`](wire::ScoreBatchRequest)
//!   frames per shard, and presents the whole fleet to its clients as one
//!   worker serving every class. The `fhc-gateway` binary wraps it in an
//!   accept loop; [`GatewayBackend`] (`gateway:EP`) is the client side.
//!
//! Failure is a first-class outcome: a worker that dies mid-batch surfaces
//! as a typed [`NetError`] through the `try_*` serving APIs — never as a
//! wrong or partial similarity row.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::str::FromStr;

pub mod deadlines;
pub mod fleet;
pub mod gateway;
pub mod remote;
pub mod wire;
pub mod worker;

pub use fleet::{BackoffPolicy, FleetBackend, FleetShard, FleetTopology, FleetTuning, FleetView};
pub use gateway::{Gateway, GatewayBackend, GatewayOptions};
pub use remote::RemoteBackend;
pub use worker::{ShardWorker, TenantHost, WorkerHost};

/// Where a shard worker listens.
///
/// Parses from (and displays back to) `tcp:HOST:PORT` or `unix:PATH`; a
/// bare `HOST:PORT` is accepted as TCP for convenience.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A TCP socket address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

pub use deadlines::IO_TIMEOUT;
pub(crate) use deadlines::MUX_POLL_INTERVAL;

/// Check a named failpoint and map an injected fault to the typed
/// [`NetError`] a real fault at that site would produce. Compiles to an
/// inlined `None` check (one relaxed atomic load when the `failpoints`
/// feature is on, nothing at all when it is off).
#[inline]
pub(crate) fn inject(site: &'static str, peer: &str) -> Result<(), NetError> {
    // fhc-lint: allow(failpoint_named) -- pass-through helper: every caller's site argument is a literal R7 checks at the call site
    match hpcutil::failpoint::hit(site) {
        None => Ok(()),
        Some(hpcutil::failpoint::Fault::CloseConn) => Err(NetError::WorkerLost {
            peer: peer.to_string(),
            detail: format!("failpoint {site}: injected connection loss"),
        }),
        Some(_) => Err(NetError::Io {
            peer: peer.to_string(),
            source: std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                format!("failpoint {site}: injected i/o failure"),
            ),
        }),
    }
}

/// Spawn a named, deliberately-detached serving thread.
///
/// This is the **single** sanctioned detach point in the serving tier;
/// everything else keeps its `JoinHandle`. It exists for per-connection
/// threads whose lifetime is bounded by the peer socket (both directions
/// carry deadlines, so the thread cannot outlive a dead peer by more than a
/// timeout) and whose accept loop never returns to a place that could join
/// them. Funneling every such spawn through here keeps the waiver count at
/// one and gives each thread a name for debuggers.
pub(crate) fn spawn_detached(name: &str, f: impl FnOnce() + Send + 'static) {
    let spawned = std::thread::Builder::new()
        .name(name.to_string())
        // fhc-lint: allow(join_or_detach) -- sole sanctioned detach point: connection-scoped threads bounded by socket deadlines; the accept loop that spawns them never returns
        .spawn(f);
    if let Err(e) = spawned {
        // Out of threads: shed this connection instead of crashing the
        // accept loop; the peer sees a dropped socket and may retry.
        eprintln!("shardnet: could not spawn {name}: {e}");
    }
}

impl Endpoint {
    /// Open a connection to this endpoint, with [`IO_TIMEOUT`] applied to
    /// every read and write (and to the TCP connect itself).
    pub fn connect(&self) -> std::io::Result<Box<dyn Transport>> {
        match self {
            Endpoint::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        format!("{addr} resolves to no address"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)?;
                // Score requests are small and latency-bound; never batch
                // them behind Nagle.
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(IO_TIMEOUT))?;
                stream.set_write_timeout(Some(IO_TIMEOUT))?;
                Ok(Box::new(stream))
            }
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(IO_TIMEOUT))?;
                stream.set_write_timeout(Some(IO_TIMEOUT))?;
                Ok(Box::new(stream))
            }
        }
    }

    /// Open a connection split into independently owned read/write halves
    /// (see [`SplitConn`]), with [`IO_TIMEOUT`] applied to reads, writes,
    /// and the TCP connect — the handshake runs under the same deadlines as
    /// [`Endpoint::connect`]. Once the handshake is done, narrow the read
    /// timeout to the mux's poll interval before spawning the mux.
    pub fn connect_split(&self) -> std::io::Result<SplitConn> {
        match self {
            Endpoint::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        format!("{addr} resolves to no address"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(IO_TIMEOUT))?;
                stream.set_write_timeout(Some(IO_TIMEOUT))?;
                Ok(SplitConn {
                    reader: Box::new(stream.try_clone()?),
                    writer: Box::new(stream.try_clone()?),
                    control: ConnControl::Tcp(stream),
                })
            }
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(IO_TIMEOUT))?;
                stream.set_write_timeout(Some(IO_TIMEOUT))?;
                Ok(SplitConn {
                    reader: Box::new(stream.try_clone()?),
                    writer: Box::new(stream.try_clone()?),
                    control: ConnControl::Unix(stream),
                })
            }
        }
    }
}

/// A connected stream split into independently owned halves, so a reader
/// thread and a writer thread (a [`hpcutil::Mux`]) can drive the same
/// socket concurrently.
///
/// The halves are OS-level duplicates of one socket: timeouts set through
/// [`SplitConn::set_read_timeout`] apply to both, and shutting the socket
/// down through the closer returned by [`SplitConn::into_mux_parts`]
/// unblocks whichever half is parked in a syscall.
pub struct SplitConn {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    control: ConnControl,
}

enum ConnControl {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SplitConn {
    /// The read half, for driving a handshake before the mux takes over.
    pub fn reader(&mut self) -> &mut (dyn Read + Send) {
        &mut *self.reader
    }

    /// The write half, for driving a handshake before the mux takes over.
    pub fn writer(&mut self) -> &mut (dyn Write + Send) {
        &mut *self.writer
    }

    /// Set the socket's read timeout (shared by both halves).
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        match &self.control {
            ConnControl::Tcp(stream) => stream.set_read_timeout(timeout),
            ConnControl::Unix(stream) => stream.set_read_timeout(timeout),
        }
    }

    /// Consume the split connection into the three parts a
    /// [`hpcutil::Mux`] spawns from: the read half, the write half, and a
    /// closer that shuts the socket down (idempotent, callable from any
    /// thread).
    #[allow(clippy::type_complexity)]
    pub fn into_mux_parts(
        self,
    ) -> (
        Box<dyn Read + Send>,
        Box<dyn Write + Send>,
        Box<dyn Fn() + Send + Sync>,
    ) {
        let control = self.control;
        let closer: Box<dyn Fn() + Send + Sync> = Box::new(move || match &control {
            ConnControl::Tcp(stream) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            ConnControl::Unix(stream) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        });
        (self.reader, self.writer, closer)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl FromStr for Endpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.rsplit_once(':').is_none_or(|(host, port)| {
            host.is_empty() || port.is_empty() || port.parse::<u16>().is_err()
        }) {
            return Err(format!(
                "invalid endpoint {s:?}: expected tcp:HOST:PORT, HOST:PORT, or unix:PATH"
            ));
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    }
}

/// A bidirectional byte stream a shard conversation runs over.
pub trait Transport: Read + Write + Send {}

impl<T: Read + Write + Send> Transport for T {}

/// Errors raised by the shard-serving subsystem.
///
/// Every variant names the peer it concerns, so a dead worker in an N-way
/// fan-out is diagnosable from the error alone.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed while talking to `peer`.
    Io {
        /// The peer the conversation was with.
        peer: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The stream bytes were not a valid frame (truncation, checksum
    /// mismatch, oversized length prefix).
    Frame {
        /// The peer the conversation was with.
        peer: String,
        /// The underlying framing error.
        source: hpcutil::FrameError,
    },
    /// A structurally valid frame carried an invalid or unexpected payload.
    Protocol {
        /// The peer the conversation was with.
        peer: String,
        /// What was wrong.
        detail: String,
    },
    /// The handshake failed: protocol version or reference-set fingerprint
    /// did not match.
    Handshake {
        /// The peer the conversation was with.
        peer: String,
        /// What did not match.
        detail: String,
    },
    /// The workers' class partitions do not cover every class exactly once.
    Partition(
        /// What is wrong with the ensemble of advertised partitions.
        String,
    ),
    /// A worker connection died mid-conversation (degraded mode): the query
    /// cannot be answered without inventing a wrong or partial row.
    WorkerLost {
        /// The worker that was lost.
        peer: String,
        /// What the transport reported.
        detail: String,
    },
    /// The remote side reported an error of its own.
    Remote {
        /// The peer that sent the error frame.
        peer: String,
        /// The error message it sent.
        message: String,
    },
    /// The peer is shedding load: a gateway's per-tenant quota or global
    /// in-flight ceiling rejected the request *before* any scoring ran.
    /// Deliberate and non-retried by the serving backends — the peer told
    /// us when to come back, and hammering it sooner defeats the point.
    Overload {
        /// The peer that shed the request.
        peer: String,
        /// How long the peer asked us to wait before retrying.
        retry_after_ms: u32,
    },
    /// A handshake named a tenant the other side does not serve, or a
    /// worker answered for a different tenant than the one selected. Never
    /// a generic decode error or a silent empty row: the offending tenant
    /// travels in the error.
    Tenant {
        /// The peer the conversation was with.
        peer: String,
        /// The tenant that was requested or wrongly answered for.
        tenant: String,
        /// What went wrong (unknown tenant, mismatched greeting, ...).
        detail: String,
    },
}

impl NetError {
    /// Whether this error means a worker is gone (as opposed to a local
    /// configuration or protocol problem).
    pub fn is_worker_lost(&self) -> bool {
        matches!(self, NetError::WorkerLost { .. })
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { peer, source } => write!(f, "i/o error with {peer}: {source}"),
            NetError::Frame { peer, source } => write!(f, "framing error with {peer}: {source}"),
            NetError::Protocol { peer, detail } => {
                write!(f, "protocol violation from {peer}: {detail}")
            }
            NetError::Handshake { peer, detail } => {
                write!(f, "handshake with {peer} failed: {detail}")
            }
            NetError::Partition(detail) => write!(f, "invalid shard partition: {detail}"),
            NetError::WorkerLost { peer, detail } => {
                write!(f, "shard worker {peer} lost: {detail}")
            }
            NetError::Remote { peer, message } => {
                write!(f, "remote error from {peer}: {message}")
            }
            NetError::Overload {
                peer,
                retry_after_ms,
            } => {
                write!(f, "{peer} is shedding load: retry after {retry_after_ms}ms")
            }
            NetError::Tenant {
                peer,
                tenant,
                detail,
            } => {
                write!(f, "tenant {tenant:?} rejected by {peer}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parses_and_roundtrips() {
        let tcp: Endpoint = "127.0.0.1:9000".parse().unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:9000".into()));
        let tagged: Endpoint = "tcp:10.0.0.1:80".parse().unwrap();
        assert_eq!(tagged, Endpoint::Tcp("10.0.0.1:80".into()));
        let unix: Endpoint = "unix:/tmp/fhc.sock".parse().unwrap();
        assert_eq!(unix, Endpoint::Unix(PathBuf::from("/tmp/fhc.sock")));

        for endpoint in [tcp, tagged, unix] {
            let display = endpoint.to_string();
            let reparsed: Endpoint = display.parse().expect("display form reparses");
            assert_eq!(reparsed, endpoint, "{display} must round-trip");
        }
    }

    #[test]
    fn bad_endpoints_are_rejected() {
        for bad in ["", "unix:", "localhost", "host:", ":80", "host:notaport"] {
            assert!(bad.parse::<Endpoint>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn net_error_display_names_the_peer() {
        let e = NetError::WorkerLost {
            peer: "tcp:10.1.2.3:9000".into(),
            detail: "connection reset".into(),
        };
        assert!(e.is_worker_lost());
        assert!(e.to_string().contains("10.1.2.3"));
        let e = NetError::Handshake {
            peer: "w0".into(),
            detail: "fingerprint mismatch".into(),
        };
        assert!(!e.is_worker_lost());
        assert!(e.to_string().contains("fingerprint"));
        let io = NetError::Io {
            peer: "w1".into(),
            source: std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"),
        };
        assert!(std::error::Error::source(&io).is_some());
    }
}
