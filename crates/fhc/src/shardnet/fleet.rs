//! The elastic, self-healing shard fleet.
//!
//! [`RemoteBackend`](crate::shardnet::RemoteBackend) treats its worker list
//! as a static, fully-healthy topology: every worker is a single point of
//! failure for its classes, a lost connection surfaces as a typed error
//! until the next query happens to redial, and the class partition is fixed
//! at connect time. This module turns that list into a *fleet*:
//!
//! - **Membership & health** ([`FleetView`]): every endpoint carries a
//!   health state. A failing node is marked down and its redials are gated
//!   by capped exponential backoff — deterministic and jitter-free, driven
//!   by an injected [`FleetClock`] so tests schedule it exactly.
//! - **Replicas & hedged requests** ([`FleetShard::replicas`]): a shard may
//!   list replica endpoints serving the same classes. A request goes to the
//!   preferred node first; if no reply lands within a rolling
//!   latency-percentile deadline, the same frame is *hedged* to the next
//!   replica and the first valid response wins. The loser's reply is
//!   drained through the mux's abandoned-id bookkeeping
//!   ([`hpcutil::Mux`]), so a late duplicate can never corrupt another
//!   request — and a node that fails outright fails over to its replicas
//!   immediately, without waiting for the hedge deadline.
//! - **Live re-partitioning** ([`FleetView::admit`] /
//!   [`FleetView::evict`]): joining or leaving workers re-deal the classes
//!   round-robin through the existing `Assign` frame. The exact-cover
//!   invariant is checked *before* cutover and the member list is swapped
//!   atomically: queries already in flight finish on the old view, new
//!   queries see the new one, and a failed repartition leaves the old
//!   fleet untouched.
//! - **Reference push** ([`wire::PushSlice`]): a diskless worker — started
//!   with no artifact — is seeded over the wire with per-class slices cut
//!   by [`ReferenceSet::encode_slice`], so it joins holding only its
//!   partition's samples. A worker advertising a stale fingerprint is
//!   re-seeded the same way: rolling artifact upgrades ride the existing
//!   fingerprint handshake.
//! - **Delta push** ([`wire::PushDelta`]): when an [`ArtifactDelta`] whose
//!   base matches a stale worker's advertised fingerprint has been
//!   registered ([`FleetView::register_delta`]), the upgrade ships only the
//!   delta — retired class names plus added slices — instead of the full
//!   set. Any delta failure (a sparse worker missing a retired class, an
//!   unexpected base) falls back to the full push on a fresh dial, so the
//!   delta path is strictly an optimization, never a new failure mode.
//! - **Tenants**: a fleet built over a non-default tenant selects it on
//!   every dial and redial ([`FleetView::connect_tenant`]); a worker
//!   answering for the wrong tenant surfaces as the typed
//!   [`NetError::Tenant`], never as a silent empty row.
//!
//! Scoring goes through [`FleetBackend`], whose rows are byte-identical to
//! every other backend: the winning node scores through the same prepared
//! index, and `merge_partial_row` rejects any cell outside the member's
//! partition.

use crate::artifact::ArtifactDelta;
use crate::backend::{round_robin_partition, SimilarityBackend};
use crate::error::FhcError;
use crate::features::PreparedSampleFeatures;
use crate::shardnet::remote::{
    assign_partition, is_exact_cover, merge_partial_row, net_error_from_mux, read_hello,
    select_tenant, spawn_mux, validate_hello, HandshakeExpect, CLIENT_BATCH,
};
use crate::shardnet::wire::{self, ClientReply, Frame, Hello};
use crate::shardnet::{Endpoint, NetError, SplitConn};
use crate::similarity::ReferenceSet;
use hpcutil::{Mux, PendingReply};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How many latency samples each rolling window keeps. Small enough that
/// the fleet adapts to a slowdown within a few dozen requests, large
/// enough that one outlier cannot move a percentile on its own.
const LATENCY_WINDOW: usize = 32;

/// The rolling percentile a hedge deadline is derived from: a request
/// still unanswered past this point of the shard's recent latency
/// distribution is in the tail, and worth racing against a replica.
const HEDGE_PERCENTILE: f64 = 0.9;

/// Hedge deadline before any latency has been observed (a cold window).
const HEDGE_COLD_START: Duration = Duration::from_millis(25);

/// Lower clamp on the hedge deadline, so a microsecond-fast shard does not
/// hedge every single request onto its replicas.
const HEDGE_MIN: Duration = Duration::from_millis(1);

/// Upper clamp on the hedge deadline, well under the mux reply deadline —
/// a hedge that can never fire before the request is declared lost would
/// be no hedge at all.
const HEDGE_MAX: Duration = Duration::from_secs(1);

/// How long one reply-poll iteration waits before checking the other
/// in-flight hedges and the hedge deadline.
const POLL_QUANTUM: Duration = Duration::from_micros(500);

/// A source of monotonic time for the fleet's backoff scheduling.
///
/// Injected so reconnect gating is testable without real sleeps: tests
/// drive a manual clock forward and observe exactly when a down node
/// becomes dialable again. The serving default is [`SystemClock`].
/// (Hedge deadlines intentionally stay on [`Instant::now`] — they measure
/// real network waits, not scheduled ones.)
pub trait FleetClock: Send + Sync + std::fmt::Debug {
    /// The current monotonic instant.
    fn now(&self) -> Instant;
}

/// The production [`FleetClock`]: [`Instant::now`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl FleetClock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Capped exponential backoff for redialing a down node: the `n`-th
/// consecutive failure schedules the next attempt `base * 2^(n-1)` later,
/// clamped to `cap`. Deterministic on purpose — no jitter — so the redial
/// schedule is exactly reproducible under an injected [`FleetClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay after the first failure.
    pub base: Duration,
    /// Upper bound on any delay.
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
        }
    }
}

impl BackoffPolicy {
    /// The backoff deadline delay after `failures` consecutive failures
    /// (at least one).
    pub fn delay_for(&self, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(16);
        self.base
            .checked_mul(1u32 << doublings)
            .map_or(self.cap, |delay| delay.min(self.cap))
    }
}

/// Tunable timing knobs of a fleet, declared inline in the `fleet:` spec.
///
/// `;hedge_ms=COLD,MIN,MAX` sets the hedge deadline's cold-start value and
/// its lower/upper clamps; `;backoff_ms=BASE,CAP` sets the redial
/// [`BackoffPolicy`]. The defaults are the serving constants
/// (`HEDGE_COLD_START`, `HEDGE_MIN`, `HEDGE_MAX`,
/// [`BackoffPolicy::default`]), and [`FleetTopology`]'s `Display` emits a
/// tuning item only when it differs from the default — a spec written
/// without tunings round-trips unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTuning {
    /// Hedge deadline before any latency has been observed (a cold
    /// window).
    pub hedge_cold: Duration,
    /// Lower clamp on the hedge deadline.
    pub hedge_min: Duration,
    /// Upper clamp on the hedge deadline.
    pub hedge_max: Duration,
    /// Redial backoff for down nodes.
    pub backoff: BackoffPolicy,
}

impl Default for FleetTuning {
    fn default() -> Self {
        Self {
            hedge_cold: HEDGE_COLD_START,
            hedge_min: HEDGE_MIN,
            hedge_max: HEDGE_MAX,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// Parse `spec` as exactly `want` comma-separated millisecond values.
fn parse_ms_list(spec: &str, want: usize, item: &str) -> Result<Vec<u64>, String> {
    let values: Vec<u64> = spec
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("invalid {item} value {v:?}: expected whole milliseconds"))
        })
        .collect::<Result<_, _>>()?;
    if values.len() != want {
        return Err(format!(
            "{item} takes {want} comma-separated millisecond values, got {}",
            values.len()
        ));
    }
    Ok(values)
}

/// One shard of the fleet: the primary endpoint plus any replica
/// endpoints serving the same class partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetShard {
    /// The shard's first-choice endpoint.
    pub primary: Endpoint,
    /// Endpoints serving the same classes, raced via hedged requests and
    /// failed over to when the primary is down.
    pub replicas: Vec<Endpoint>,
}

impl FleetShard {
    /// A shard with no replicas.
    pub fn solo(primary: Endpoint) -> Self {
        Self {
            primary,
            replicas: Vec::new(),
        }
    }

    /// Every endpoint of this shard, primary first.
    pub fn endpoints(&self) -> impl Iterator<Item = &Endpoint> {
        std::iter::once(&self.primary).chain(self.replicas.iter())
    }
}

/// The declared shape of a fleet: one [`FleetShard`] per class partition.
///
/// Parsed from the `fleet:` backend spec
/// ([`BackendConfig`](crate::backend::BackendConfig)): shards are
/// `;`-separated endpoints, and a `replica=EP[,EP...]` item attaches
/// replicas to the shard declared before it — e.g.
/// `fleet:host1:9000;replica=host1:9100;host2:9000` is two shards, the
/// first with one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTopology {
    /// The shards, in declaration order. Classes are dealt round-robin
    /// across them ([`round_robin_partition`]).
    pub shards: Vec<FleetShard>,
    /// The fleet's timing knobs; [`FleetTuning::default`] unless the spec
    /// says otherwise. `hedge_ms=` and `backoff_ms=` items may appear
    /// anywhere in the `;`-separated list.
    pub tuning: FleetTuning,
}

impl FleetTopology {
    /// A topology over `shards` with default tuning.
    pub fn new(shards: Vec<FleetShard>) -> Self {
        Self {
            shards,
            tuning: FleetTuning::default(),
        }
    }
}

impl std::str::FromStr for FleetTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut shards: Vec<FleetShard> = Vec::new();
        let mut tuning = FleetTuning::default();
        for item in s.split(';') {
            let item = item.trim();
            if item.is_empty() {
                return Err("empty item in fleet topology (stray ';'?)".into());
            }
            if let Some(list) = item.strip_prefix("replica=") {
                let Some(shard) = shards.last_mut() else {
                    return Err("replica= must follow the shard endpoint it replicates".into());
                };
                for endpoint in list.split(',') {
                    shard.replicas.push(endpoint.trim().parse::<Endpoint>()?);
                }
            } else if let Some(spec) = item.strip_prefix("hedge_ms=") {
                let ms = parse_ms_list(spec, 3, "hedge_ms")?;
                tuning.hedge_cold = Duration::from_millis(ms[0]);
                tuning.hedge_min = Duration::from_millis(ms[1]);
                tuning.hedge_max = Duration::from_millis(ms[2]);
                if tuning.hedge_min > tuning.hedge_max {
                    return Err(format!(
                        "hedge_ms clamps are inverted: min {}ms > max {}ms",
                        ms[1], ms[2]
                    ));
                }
            } else if let Some(spec) = item.strip_prefix("backoff_ms=") {
                let ms = parse_ms_list(spec, 2, "backoff_ms")?;
                if ms[0] > ms[1] {
                    return Err(format!(
                        "backoff_ms is inverted: base {}ms > cap {}ms",
                        ms[0], ms[1]
                    ));
                }
                tuning.backoff = BackoffPolicy {
                    base: Duration::from_millis(ms[0]),
                    cap: Duration::from_millis(ms[1]),
                };
            } else {
                shards.push(FleetShard::solo(item.parse::<Endpoint>()?));
            }
        }
        if shards.is_empty() {
            return Err("a fleet needs at least one shard endpoint".into());
        }
        Ok(FleetTopology { shards, tuning })
    }
}

impl std::fmt::Display for FleetTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{}", shard.primary)?;
            for (j, replica) in shard.replicas.iter().enumerate() {
                f.write_str(if j == 0 { ";replica=" } else { "," })?;
                write!(f, "{replica}")?;
            }
        }
        let default = FleetTuning::default();
        if (
            self.tuning.hedge_cold,
            self.tuning.hedge_min,
            self.tuning.hedge_max,
        ) != (default.hedge_cold, default.hedge_min, default.hedge_max)
        {
            write!(
                f,
                ";hedge_ms={},{},{}",
                self.tuning.hedge_cold.as_millis(),
                self.tuning.hedge_min.as_millis(),
                self.tuning.hedge_max.as_millis()
            )?;
        }
        if self.tuning.backoff != default.backoff {
            write!(
                f,
                ";backoff_ms={},{}",
                self.tuning.backoff.base.as_millis(),
                self.tuning.backoff.cap.as_millis()
            )?;
        }
        Ok(())
    }
}

/// One node's availability, as last observed by the fleet.
#[derive(Debug, Clone, Copy)]
enum Health {
    /// Requests may be sent.
    Healthy,
    /// The node failed `failures` consecutive times; no redial before
    /// `retry_at` (per the fleet's [`BackoffPolicy`] and [`FleetClock`]).
    Down { failures: u32, retry_at: Instant },
}

/// A bounded rolling window of request latencies with percentile lookup —
/// the statistic behind hedge deadlines and replica preference order.
#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Mutex<VecDeque<Duration>>,
}

impl LatencyWindow {
    fn record(&self, sample: Duration) {
        let mut samples = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        if samples.len() == LATENCY_WINDOW {
            samples.pop_front();
        }
        samples.push_back(sample);
    }

    /// The `q`-quantile (`0.0..=1.0`) of the window, `None` while empty.
    fn percentile(&self, q: f64) -> Option<Duration> {
        let samples = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<Duration> = samples.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    fn median(&self) -> Option<Duration> {
        self.percentile(0.5)
    }
}

/// One connected (or reconnecting) endpoint of a fleet member.
#[derive(Debug)]
struct FleetNode {
    endpoint: Endpoint,
    /// The member's class partition, re-asserted on every redial.
    classes: Vec<usize>,
    /// Whether this node was (last) seeded by reference push — redials
    /// then push proactively instead of probing with an `Assign` first.
    pushed: AtomicBool,
    /// The live multiplexer; swapped for a fresh connection on redial.
    mux: Mutex<Mux<ClientReply>>,
    health: Mutex<Health>,
    /// This node's own recent latencies, ordering replica preference.
    window: LatencyWindow,
}

/// One shard of the live fleet: its class partition and its nodes
/// (primary first).
#[derive(Debug)]
pub struct FleetMember {
    classes: Vec<usize>,
    nodes: Vec<FleetNode>,
    /// Shard-level latencies of *winning* requests, setting the hedge
    /// deadline.
    window: LatencyWindow,
    /// The fleet's timing knobs, inherited from its topology.
    tuning: FleetTuning,
}

impl FleetMember {
    /// The classes this member scores.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Node indices in preference order: by rising recent median latency,
    /// untried nodes first in declaration order. The fleet therefore
    /// routes around a *consistently* slow primary (its replica wins the
    /// hedges, its median rises, it drops down the order) without any
    /// configuration.
    fn candidate_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| self.nodes[i].window.median().unwrap_or(Duration::ZERO));
        order
    }

    /// The deadline after which an unanswered request is hedged onto the
    /// next replica: twice the rolling [`HEDGE_PERCENTILE`] of this
    /// shard's winning latencies, clamped to the tuning's
    /// `hedge_min..=hedge_max`; its `hedge_cold` while the window is
    /// empty (the defaults are [`HEDGE_MIN`], [`HEDGE_MAX`],
    /// [`HEDGE_COLD_START`]).
    fn hedge_delay(&self) -> Duration {
        self.window
            .percentile(HEDGE_PERCENTILE)
            .map_or(self.tuning.hedge_cold, |p| {
                p.saturating_mul(2)
                    .clamp(self.tuning.hedge_min, self.tuning.hedge_max)
            })
    }
}

/// The fleet's membership and health registry: the control plane behind
/// [`FleetBackend`].
///
/// Holds the current member list (one [`FleetMember`] per shard, swapped
/// atomically on [`FleetView::admit`]/[`FleetView::evict`]), every node's
/// health and latency state, and the knobs that make failure handling
/// deterministic: the [`BackoffPolicy`] and the injected [`FleetClock`].
#[derive(Debug)]
pub struct FleetView {
    reference: Arc<ReferenceSet>,
    expect: HandshakeExpect,
    clock: Arc<dyn FleetClock>,
    backoff: BackoffPolicy,
    topology: Mutex<FleetTopology>,
    members: RwLock<Vec<Arc<FleetMember>>>,
    /// Registered artifact deltas, keyed by base fingerprint: a stale
    /// worker advertising a registered base is upgraded by delta push
    /// instead of a full re-seed.
    deltas: RwLock<BTreeMap<u64, Arc<ArtifactDelta>>>,
}

impl FleetView {
    /// Connect the whole topology under the default clock and backoff.
    ///
    /// Classes are dealt round-robin across the shards; every node of a
    /// shard (primary and replicas) is dialed, handshaken against
    /// `reference`'s fingerprint and geometry, assigned its partition —
    /// and, if it is a diskless or stale worker advertising
    /// [`wire::FEATURE_REFERENCE_PUSH`], seeded with its partition's
    /// slices first. Any unreachable node fails the connect; the fleet
    /// heals *after* it is up, it does not start degraded.
    pub fn connect(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
    ) -> Result<Self, NetError> {
        let backoff = topology.tuning.backoff;
        Self::connect_with(reference, topology, Arc::new(SystemClock), backoff)
    }

    /// [`FleetView::connect`] against a named tenant: every dial and
    /// redial selects `tenant` on the worker's
    /// [`TenantHost`](crate::shardnet::TenantHost) before handshaking.
    /// `None` expects the default tenant.
    pub fn connect_tenant(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
        tenant: Option<&str>,
    ) -> Result<Self, NetError> {
        let backoff = topology.tuning.backoff;
        Self::connect_with_tenant(reference, topology, Arc::new(SystemClock), backoff, tenant)
    }

    /// [`FleetView::connect`] with an explicit clock and backoff policy
    /// (tests inject a manual clock here to schedule redials exactly).
    pub fn connect_with(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
        clock: Arc<dyn FleetClock>,
        backoff: BackoffPolicy,
    ) -> Result<Self, NetError> {
        Self::connect_with_tenant(reference, topology, clock, backoff, None)
    }

    /// The fully-explicit constructor: clock, backoff, and tenant.
    pub fn connect_with_tenant(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
        clock: Arc<dyn FleetClock>,
        backoff: BackoffPolicy,
        tenant: Option<&str>,
    ) -> Result<Self, NetError> {
        let expect = HandshakeExpect {
            fingerprint: reference.fingerprint(),
            n_classes: reference.n_classes(),
            n_columns: reference.n_columns(),
            tenant: tenant.map(str::to_string),
        };
        let members = build_members(
            &reference,
            &expect,
            &topology.shards,
            &BTreeMap::new(),
            topology.tuning,
        )?;
        Ok(Self {
            reference,
            expect,
            clock,
            backoff,
            topology: Mutex::new(topology),
            members: RwLock::new(members),
            deltas: RwLock::new(BTreeMap::new()),
        })
    }

    /// Register an [`ArtifactDelta`] for stale-worker upgrades: a worker
    /// whose advertised fingerprint equals the delta's base is brought to
    /// the serving set by [`wire::PushDelta`] instead of a full re-seed.
    /// The delta must target the fleet's own reference set.
    pub fn register_delta(&self, delta: ArtifactDelta) -> Result<(), NetError> {
        if delta.target_fingerprint != self.reference.fingerprint() {
            return Err(NetError::Partition(format!(
                "delta targets fingerprint {:#018x}, but this fleet serves {:#018x}",
                delta.target_fingerprint,
                self.reference.fingerprint()
            )));
        }
        self.deltas
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(delta.base_fingerprint, Arc::new(delta));
        Ok(())
    }

    /// A snapshot of the registered deltas for a (re)connect attempt.
    fn deltas_snapshot(&self) -> BTreeMap<u64, Arc<ArtifactDelta>> {
        self.deltas
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The current member list. Queries operate on the snapshot they
    /// took: a concurrent repartition swaps the list without disturbing
    /// them.
    pub fn members(&self) -> Vec<Arc<FleetMember>> {
        self.members
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Number of shards currently serving.
    pub fn n_shards(&self) -> usize {
        self.members.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The declared topology currently in effect.
    pub fn topology(&self) -> FleetTopology {
        self.topology
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The tenant every dial selects on its worker, or `None` for the
    /// default tenant.
    pub fn tenant(&self) -> Option<&str> {
        self.expect.tenant.as_deref()
    }

    /// Admit `shard` into the fleet and re-partition: the classes are
    /// re-dealt over all shards (old and new), the exact-cover invariant
    /// is checked, every node is brought to its new partition — pushed
    /// nodes are re-seeded with their new slices — and only then is the
    /// member list cut over. On any failure the old fleet keeps serving
    /// unchanged.
    pub fn admit(&self, shard: FleetShard) -> Result<(), NetError> {
        let mut topology = self.topology.lock().unwrap_or_else(|p| p.into_inner());
        let mut proposed = topology.clone();
        proposed.shards.push(shard);
        let members = build_members(
            &self.reference,
            &self.expect,
            &proposed.shards,
            &self.deltas_snapshot(),
            proposed.tuning,
        )?;
        // Failpoint: a fault between validation and cutover must leave the
        // old fleet serving unchanged — the invariant the chaos soak
        // checks on this site.
        crate::shardnet::inject("fleet.cutover", "fleet")?;
        *self.members.write().unwrap_or_else(|p| p.into_inner()) = members;
        *topology = proposed;
        Ok(())
    }

    /// Remove shard `index` from the fleet and re-partition the remaining
    /// shards, with the same validate-then-cutover rule as
    /// [`FleetView::admit`]. The last shard cannot be evicted.
    pub fn evict(&self, index: usize) -> Result<(), NetError> {
        let mut topology = self.topology.lock().unwrap_or_else(|p| p.into_inner());
        if index >= topology.shards.len() {
            return Err(NetError::Partition(format!(
                "no shard {index} to evict: the fleet has {}",
                topology.shards.len()
            )));
        }
        if topology.shards.len() == 1 {
            return Err(NetError::Partition(
                "cannot evict the last shard of a fleet".into(),
            ));
        }
        let mut proposed = topology.clone();
        proposed.shards.remove(index);
        let members = build_members(
            &self.reference,
            &self.expect,
            &proposed.shards,
            &self.deltas_snapshot(),
            proposed.tuning,
        )?;
        crate::shardnet::inject("fleet.cutover", "fleet")?;
        *self.members.write().unwrap_or_else(|p| p.into_inner()) = members;
        *topology = proposed;
        Ok(())
    }

    /// Record a node failure: mark it down and schedule its next redial
    /// per the backoff policy.
    fn mark_down(&self, node: &FleetNode) {
        let mut health = node.health.lock().unwrap_or_else(|p| p.into_inner());
        let failures = match *health {
            Health::Down { failures, .. } => failures.saturating_add(1),
            Health::Healthy => 1,
        };
        *health = Health::Down {
            failures,
            retry_at: self.clock.now() + self.backoff.delay_for(failures),
        };
    }

    fn mark_up(&self, node: &FleetNode) {
        *node.health.lock().unwrap_or_else(|p| p.into_inner()) = Health::Healthy;
    }

    /// Queue `bytes` on `node`, redialing a poisoned connection first —
    /// unless the node is down and its backoff deadline has not passed,
    /// in which case the submit is refused without touching the network.
    fn node_submit(
        &self,
        node: &FleetNode,
        id: u64,
        bytes: &[u8],
    ) -> Result<PendingReply<ClientReply>, NetError> {
        // Failpoint: a refused submit exercises the hedge machinery — the
        // caller fails over to the next candidate node immediately.
        crate::shardnet::inject("fleet.hedge", &node.endpoint.to_string())?;
        {
            let health = node.health.lock().unwrap_or_else(|p| p.into_inner());
            if let Health::Down { failures, retry_at } = *health {
                if self.clock.now() < retry_at {
                    return Err(NetError::WorkerLost {
                        peer: node.endpoint.to_string(),
                        detail: format!(
                            "node is down ({failures} consecutive failures) and its \
                             backoff deadline has not passed"
                        ),
                    });
                }
            }
        }
        let mut mux = node.mux.lock().unwrap_or_else(|p| p.into_inner());
        if mux.is_poisoned() {
            match connect_node(
                &self.reference,
                &self.expect,
                &node.endpoint,
                &node.classes,
                node.pushed.load(Ordering::Relaxed),
                &self.deltas_snapshot(),
            ) {
                Ok((fresh, pushed)) => {
                    *mux = fresh;
                    node.pushed.store(pushed, Ordering::Relaxed);
                    self.mark_up(node);
                }
                Err(e) => {
                    drop(mux);
                    self.mark_down(node);
                    return Err(e);
                }
            }
        }
        Ok(mux.submit(id, bytes.to_vec()))
    }

    /// Race `bytes` across a member's nodes until one valid reply wins.
    ///
    /// The preferred node (see [`FleetMember::candidate_order`]) is tried
    /// first. Every [`FleetMember::hedge_delay`] without a reply, the same
    /// frame is fired at the next node — same id, distinct connection, so
    /// the mux correlation stays exact. A node that *fails* (submit
    /// refused, connection lost, remote error) is marked down and the next
    /// node is tried immediately. The first `Ok` reply wins: its latency
    /// feeds the windows and the losing replies are left to the abandoned-
    /// id drain. Only when every node has failed does the last error
    /// surface.
    fn hedged_request(
        &self,
        member: &FleetMember,
        id: u64,
        bytes: &[u8],
    ) -> Result<(String, ClientReply), NetError> {
        let hedge_delay = member.hedge_delay();
        let mut candidates = member.candidate_order().into_iter();
        let mut in_flight: Vec<(usize, PendingReply<ClientReply>, Instant)> = Vec::new();
        let mut last_err: Option<NetError> = None;
        let started = Instant::now();
        loop {
            let hedge_due = in_flight.is_empty()
                || started.elapsed() >= hedge_delay.saturating_mul(in_flight.len() as u32);
            if hedge_due {
                for node_index in candidates.by_ref() {
                    match self.node_submit(&member.nodes[node_index], id, bytes) {
                        Ok(pending) => {
                            in_flight.push((node_index, pending, Instant::now()));
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
            }
            if in_flight.is_empty() {
                return Err(last_err
                    .unwrap_or_else(|| NetError::Partition("shard has no reachable node".into())));
            }
            let mut i = 0;
            while i < in_flight.len() {
                let (node_index, pending, fired_at) = &mut in_flight[i];
                match pending.poll_timeout(POLL_QUANTUM) {
                    Some(Ok(reply)) => {
                        let node = &member.nodes[*node_index];
                        let elapsed = fired_at.elapsed();
                        node.window.record(elapsed);
                        member.window.record(elapsed);
                        self.mark_up(node);
                        return Ok((node.endpoint.to_string(), reply));
                    }
                    Some(Err(e)) => {
                        let node = &member.nodes[*node_index];
                        self.mark_down(node);
                        last_err = Some(net_error_from_mux(&node.endpoint.to_string(), e));
                        in_flight.swap_remove(i);
                    }
                    None => i += 1,
                }
            }
        }
    }
}

/// Dial, handshake, partition, and mux every node of every shard — the
/// shared machinery of [`FleetView::connect`] and the repartition paths.
/// The exact-cover invariant over the dealt partition is asserted before
/// any connection is made.
fn build_members(
    reference: &ReferenceSet,
    expect: &HandshakeExpect,
    shards: &[FleetShard],
    deltas: &BTreeMap<u64, Arc<ArtifactDelta>>,
    tuning: FleetTuning,
) -> Result<Vec<Arc<FleetMember>>, NetError> {
    if shards.is_empty() {
        return Err(NetError::Partition(
            "a fleet needs at least one shard".into(),
        ));
    }
    let partition = round_robin_partition(reference.n_classes(), shards.len());
    if !is_exact_cover(
        reference.n_classes(),
        partition.iter().map(|c| c.as_slice()),
    ) {
        return Err(NetError::Partition(format!(
            "fleet partition over {} shards does not cover every one of {} classes exactly once",
            shards.len(),
            reference.n_classes()
        )));
    }
    shards
        .iter()
        .zip(partition)
        .map(|(shard, classes)| {
            let nodes = shard
                .endpoints()
                .map(|endpoint| {
                    let (mux, pushed) =
                        connect_node_auto(reference, expect, endpoint, &classes, deltas)?;
                    Ok(FleetNode {
                        endpoint: endpoint.clone(),
                        classes: classes.clone(),
                        pushed: AtomicBool::new(pushed),
                        mux: Mutex::new(mux),
                        health: Mutex::new(Health::Healthy),
                        window: LatencyWindow::default(),
                    })
                })
                .collect::<Result<Vec<_>, NetError>>()?;
            Ok(Arc::new(FleetMember {
                classes,
                nodes,
                window: LatencyWindow::default(),
                tuning,
            }))
        })
        .collect()
}

/// [`connect_node`] with automatic push fallback: a worker whose
/// fingerprint already matches is first brought over with a plain
/// `Assign`; if it *rejects* the assignment — a previously seeded sparse
/// worker missing some of the new classes does — the node is redialed
/// once with a forced re-push.
fn connect_node_auto(
    reference: &ReferenceSet,
    expect: &HandshakeExpect,
    endpoint: &Endpoint,
    classes: &[usize],
    deltas: &BTreeMap<u64, Arc<ArtifactDelta>>,
) -> Result<(Mux<ClientReply>, bool), NetError> {
    match connect_node(reference, expect, endpoint, classes, false, deltas) {
        Err(NetError::Remote { .. } | NetError::Partition(_)) => {
            connect_node(reference, expect, endpoint, classes, true, deltas)
        }
        done => done,
    }
}

/// Dial `endpoint` and bring it to serving state for `classes`: validated
/// handshake (tenant selected first when the fleet serves a non-default
/// one), partition assigned, mux spawned. A worker advertising
/// [`wire::FEATURE_REFERENCE_PUSH`] whose fingerprint does not match (a
/// diskless worker advertises `0`; a stale one its old artifact's) is
/// seeded with `classes`' slices first — as is any push-capable worker
/// when `force_push` is set. When the stale fingerprint matches a
/// registered delta's base, the upgrade ships the delta instead
/// ([`wire::PushDelta`]); any delta failure falls back to the full push
/// on a fresh dial. Returns the mux and whether a push was performed.
fn connect_node(
    reference: &ReferenceSet,
    expect: &HandshakeExpect,
    endpoint: &Endpoint,
    classes: &[usize],
    force_push: bool,
    deltas: &BTreeMap<u64, Arc<ArtifactDelta>>,
) -> Result<(Mux<ClientReply>, bool), NetError> {
    let peer = endpoint.to_string();
    let mut conn = endpoint.connect_split().map_err(|source| NetError::Io {
        peer: peer.clone(),
        source,
    })?;
    let mut hello = read_hello(conn.reader(), &peer)?;
    if hello.tenant != expect.tenant_name() {
        hello = select_tenant(&mut conn, &peer, expect.tenant_name())?;
    }
    let must_push = force_push || hello.fingerprint != expect.fingerprint;
    let mut pushed = false;
    if must_push && !force_push && hello.supports(wire::FEATURE_DELTA_PUSH) {
        if let Some(delta) = deltas
            .get(&hello.fingerprint)
            .filter(|d| d.target_fingerprint == expect.fingerprint)
        {
            match push_delta(&mut conn, &peer, delta, expect) {
                Ok(fresh) => {
                    hello = fresh;
                    pushed = true;
                }
                // The worker refused or dropped the delta (a sparse
                // worker missing a retired class does); fall back to the
                // full push on a fresh dial.
                Err(_) => return connect_node(reference, expect, endpoint, classes, true, deltas),
            }
        }
    }
    if must_push && !pushed && hello.supports(wire::FEATURE_REFERENCE_PUSH) {
        hello = push_reference(&mut conn, &peer, reference, expect, classes)?;
        pushed = true;
    }
    validate_hello(expect, &peer, &hello)?;
    if hello.classes != classes {
        hello = assign_partition(&mut conn, &peer, classes.to_vec())?;
    }
    if !hello.supports(wire::FEATURE_SCORE_BATCH) {
        return Err(NetError::Handshake {
            peer,
            detail: "fleet serving requires batch scoring; the worker does not advertise it".into(),
        });
    }
    Ok((spawn_mux(conn, peer)?, pushed))
}

/// Ship `classes`' reference slices over `conn` — one
/// [`wire::PushSlice`] per class, cut by [`ReferenceSet::encode_slice`] —
/// and confirm the worker's [`wire::PushAck`]. Returns the refreshed
/// handshake that follows the ack.
fn push_reference(
    conn: &mut SplitConn,
    peer: &str,
    reference: &ReferenceSet,
    expect: &HandshakeExpect,
    classes: &[usize],
) -> Result<Hello, NetError> {
    if classes.is_empty() {
        return Err(NetError::Partition(format!(
            "shard {peer} would serve no classes; a diskless worker cannot be seeded \
             with an empty partition (use at most one shard per class)"
        )));
    }
    let total = u32::try_from(classes.len()).map_err(|_| {
        NetError::Partition(format!(
            "cannot push {} slices in one sequence",
            classes.len()
        ))
    })?;
    for (index, &class) in classes.iter().enumerate() {
        crate::shardnet::inject("fleet.push_slice", peer)?;
        let payload = reference
            .encode_slice(&[class])
            .map_err(|e| NetError::Protocol {
                peer: peer.to_string(),
                detail: format!("could not slice the reference set: {e}"),
            })?;
        if payload.len() > wire::MAX_FRAME_PAYLOAD - 64 {
            return Err(NetError::Protocol {
                peer: peer.to_string(),
                detail: format!(
                    "class {class}'s slice ({} bytes) exceeds the frame budget",
                    payload.len()
                ),
            });
        }
        Frame::PushSlice(wire::PushSlice {
            index: index as u32,
            total,
            payload,
        })
        .write_to(conn.writer(), peer)?;
    }
    match Frame::read_from(conn.reader(), peer)? {
        Frame::PushAck(ack) => {
            if ack.fingerprint != expect.fingerprint || ack.classes_loaded as usize != classes.len()
            {
                return Err(NetError::Handshake {
                    peer: peer.to_string(),
                    detail: format!(
                        "push acknowledged fingerprint {:#018x} over {} classes; \
                         expected {:#018x} over {}",
                        ack.fingerprint,
                        ack.classes_loaded,
                        expect.fingerprint,
                        classes.len()
                    ),
                });
            }
        }
        Frame::Error(message) => {
            return Err(NetError::Remote {
                peer: peer.to_string(),
                message,
            });
        }
        unexpected => {
            return Err(NetError::Protocol {
                peer: peer.to_string(),
                detail: format!("expected a push acknowledgement, got {unexpected:?}"),
            });
        }
    }
    read_hello(conn.reader(), peer)
}

/// Ship a registered [`ArtifactDelta`] over `conn` as a chunked
/// [`wire::PushDelta`] sequence and confirm the worker's
/// [`wire::DeltaAck`]. Returns the refreshed handshake that follows the
/// ack. Callers treat any error as "fall back to the full push".
fn push_delta(
    conn: &mut SplitConn,
    peer: &str,
    delta: &ArtifactDelta,
    expect: &HandshakeExpect,
) -> Result<Hello, NetError> {
    // Failpoint: any delta failure must fall back to the full push on a
    // fresh dial — the delta path is an optimization, never a new failure
    // mode.
    crate::shardnet::inject("fleet.delta_apply", peer)?;
    let encoded = delta.encode();
    let chunk_size = wire::MAX_FRAME_PAYLOAD - 64;
    let total = u32::try_from(encoded.len().div_ceil(chunk_size)).map_err(|_| {
        NetError::Partition(format!(
            "cannot push a {}-byte delta in one sequence",
            encoded.len()
        ))
    })?;
    for (index, chunk) in encoded.chunks(chunk_size).enumerate() {
        Frame::PushDelta(wire::PushDelta {
            index: index as u32,
            total,
            payload: chunk.to_vec(),
        })
        .write_to(conn.writer(), peer)?;
    }
    match Frame::read_from(conn.reader(), peer)? {
        Frame::DeltaAck(ack) => {
            if ack.fingerprint != expect.fingerprint {
                return Err(NetError::Handshake {
                    peer: peer.to_string(),
                    detail: format!(
                        "delta acknowledged fingerprint {:#018x}; expected {:#018x}",
                        ack.fingerprint, expect.fingerprint
                    ),
                });
            }
        }
        Frame::Error(message) => {
            return Err(NetError::Remote {
                peer: peer.to_string(),
                message,
            });
        }
        unexpected => {
            return Err(NetError::Protocol {
                peer: peer.to_string(),
                detail: format!("expected a delta acknowledgement, got {unexpected:?}"),
            });
        }
    }
    read_hello(conn.reader(), peer)
}

/// Run `view.hedged_request` for every member concurrently and collect the
/// per-member outcomes in member order. The scoped threads mean every
/// member's primary is in flight at once — the same pipelining rule as
/// [`RemoteBackend`](crate::shardnet::RemoteBackend), with per-member
/// hedging layered on top.
fn scatter(
    view: &FleetView,
    members: &[Arc<FleetMember>],
    id: u64,
    bytes: &[u8],
) -> Vec<Result<(String, ClientReply), NetError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .iter()
            .map(|member| scope.spawn(move || view.hedged_request(member, id, bytes)))
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| {
                    Err(NetError::Partition(
                        "a hedged request thread panicked".into(),
                    ))
                })
            })
            .collect()
    })
}

/// A [`SimilarityBackend`] scoring through a [`FleetView`]: the elastic,
/// replicated counterpart of
/// [`RemoteBackend`](crate::shardnet::RemoteBackend).
///
/// Built with [`FleetBackend::connect`] (or through the `fleet:` spec of
/// [`BackendConfig`](crate::backend::BackendConfig)). Cloning shares the
/// fleet. Rows are byte-identical to every in-process backend; use the
/// `try_*` serving APIs — the infallible
/// [`SimilarityBackend::max_scores_into`] panics on transport errors, and
/// those only surface once *every* node of a shard is unreachable.
#[derive(Debug, Clone)]
pub struct FleetBackend {
    reference: Arc<ReferenceSet>,
    view: Arc<FleetView>,
    next_id: Arc<AtomicU64>,
}

impl FleetBackend {
    /// Connect the fleet declared by `topology` over `reference`; see
    /// [`FleetView::connect`].
    pub fn connect(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
    ) -> Result<Self, NetError> {
        let view = FleetView::connect(Arc::clone(&reference), topology)?;
        Ok(Self::over(reference, Arc::new(view)))
    }

    /// [`FleetBackend::connect`] against a named tenant; see
    /// [`FleetView::connect_tenant`].
    pub fn connect_tenant(
        reference: Arc<ReferenceSet>,
        topology: FleetTopology,
        tenant: Option<&str>,
    ) -> Result<Self, NetError> {
        let view = FleetView::connect_tenant(Arc::clone(&reference), topology, tenant)?;
        Ok(Self::over(reference, Arc::new(view)))
    }

    /// A backend scoring through an existing (possibly shared) view.
    pub fn over(reference: Arc<ReferenceSet>, view: Arc<FleetView>) -> Self {
        Self {
            reference,
            view,
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The fleet control plane, for membership changes
    /// ([`FleetView::admit`] / [`FleetView::evict`]) and introspection.
    pub fn view(&self) -> &Arc<FleetView> {
        &self.view
    }

    /// The topology currently serving.
    pub fn topology(&self) -> FleetTopology {
        self.view.topology()
    }

    /// The tenant selected at connect time, or `None` for the default
    /// tenant; see [`FleetView::tenant`].
    pub fn tenant(&self) -> Option<&str> {
        self.view.tenant()
    }

    /// Fan one query out across the fleet — hedged per member — and
    /// max-merge the winning partial rows into `out`.
    fn fan_out(&self, query: &PreparedSampleFeatures, out: &mut [f64]) -> Result<(), NetError> {
        assert_eq!(out.len(), self.reference.n_columns(), "row width mismatch");
        out.fill(0.0);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request_bytes = wire::score_request_bytes(id, query);
        let members = self.view.members();
        let replies = scatter(&self.view, &members, id, &request_bytes);
        let n_classes = self.reference.n_classes();
        for (member, outcome) in members.iter().zip(replies) {
            let (peer, reply) = outcome?;
            let response = match reply {
                ClientReply::Score(response) => response,
                ClientReply::Overload(o) => {
                    return Err(NetError::Overload {
                        peer,
                        retry_after_ms: o.retry_after_ms,
                    });
                }
                ClientReply::Batch(_) => {
                    return Err(NetError::Protocol {
                        peer,
                        detail: "batch response answering a single-query request".into(),
                    });
                }
            };
            merge_partial_row(&peer, &member.classes, n_classes, response.cells, out)?;
        }
        Ok(())
    }

    /// Score a whole slice of prepared queries and return their dense,
    /// max-merged rows — the batch counterpart of
    /// [`try_max_scores_into`](SimilarityBackend::try_max_scores_into),
    /// riding [`wire::ScoreBatchRequest`] frames with per-member hedging
    /// and failover. Fleet workers always advertise batch scoring (it is
    /// required at connect), so there is no single-frame fallback path.
    pub fn try_feature_rows_prepared(
        &self,
        queries: &[PreparedSampleFeatures],
    ) -> Result<Vec<Vec<f64>>, NetError> {
        let n_columns = self.reference.n_columns();
        let n_classes = self.reference.n_classes();
        let client_batch = CLIENT_BATCH.min(wire::max_batch_rows_for(n_columns));
        let mut rows = vec![vec![0.0f64; n_columns]; queries.len()];
        let members = self.view.members();
        for (chunk_index, chunk) in queries.chunks(client_batch).enumerate() {
            let out = &mut rows[chunk_index * client_batch..][..chunk.len()];
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let bytes = wire::score_batch_request_bytes(id, chunk);
            let replies = scatter(&self.view, &members, id, &bytes);
            for (member, outcome) in members.iter().zip(replies) {
                let (peer, reply) = outcome?;
                let batch = match reply {
                    ClientReply::Batch(batch) => batch,
                    ClientReply::Overload(o) => {
                        return Err(NetError::Overload {
                            peer,
                            retry_after_ms: o.retry_after_ms,
                        });
                    }
                    ClientReply::Score(_) => {
                        return Err(NetError::Protocol {
                            peer,
                            detail: "single response answering a batch request".into(),
                        });
                    }
                };
                if batch.rows.len() != chunk.len() {
                    return Err(NetError::Protocol {
                        peer,
                        detail: format!(
                            "batch response carries {} rows for {} queries",
                            batch.rows.len(),
                            chunk.len()
                        ),
                    });
                }
                for (cells, row) in batch.rows.into_iter().zip(out.iter_mut()) {
                    merge_partial_row(&peer, &member.classes, n_classes, cells, row)?;
                }
            }
        }
        Ok(rows)
    }
}

impl SimilarityBackend for FleetBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// Infallible scoring is impossible over a network; this panics once
    /// every node of a shard is unreachable. Serve fleets through the
    /// `try_*` APIs.
    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        self.fan_out(query, out).unwrap_or_else(|e| {
            // fhc-lint: allow(no_panic) -- documented trait contract: the infallible API cannot express transport failure; fleet serving goes through try_max_scores_into
            panic!("fleet similarity backend failed (use the try_* serving APIs): {e}")
        });
    }

    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.fan_out(query, out).map_err(FhcError::Net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use crate::features::{FeatureKind, SampleFeatures};
    use crate::shardnet::worker::{serve_host_tcp, ShardWorker, TenantHost};
    use std::net::TcpListener;

    fn reference() -> Arc<ReferenceSet> {
        let train = vec![
            SampleFeatures::extract(b"the velvet assembler executable body one"),
            SampleFeatures::extract(b"the velvet assembler executable body two"),
            SampleFeatures::extract(b"an openmalaria simulation binary payload"),
            SampleFeatures::extract(b"a gromacs molecular dynamics trajectory dump"),
        ];
        Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into(), "Gromacs".into()],
            &train,
            &[0, 0, 1, 2],
            &FeatureKind::ALL,
        ))
    }

    fn queries() -> Vec<PreparedSampleFeatures> {
        (0..5)
            .map(|i| {
                PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                    format!("fleet probe body number {i}").as_bytes(),
                ))
            })
            .collect()
    }

    fn expected_rows(rs: &Arc<ReferenceSet>, queries: &[PreparedSampleFeatures]) -> Vec<Vec<f64>> {
        let scan = BackendConfig::Scan.build(Arc::clone(rs));
        queries
            .iter()
            .map(|q| scan.feature_vector_prepared(q))
            .collect()
    }

    /// Serve an artifact-loaded worker host over loopback TCP; returns its
    /// endpoint.
    fn spawn_host(host: Arc<TenantHost>) -> Endpoint {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || serve_host_tcp(host, listener));
        Endpoint::Tcp(addr)
    }

    fn spawn_loaded_worker(rs: &Arc<ReferenceSet>) -> Endpoint {
        spawn_host(Arc::new(TenantHost::single(Some(
            ShardWorker::all_classes(Arc::clone(rs)),
        ))))
    }

    fn spawn_diskless_worker() -> Endpoint {
        spawn_host(Arc::new(TenantHost::single(None)))
    }

    #[test]
    fn backoff_doubles_deterministically_and_caps() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
        };
        assert_eq!(policy.delay_for(1), Duration::from_millis(50));
        assert_eq!(policy.delay_for(2), Duration::from_millis(100));
        assert_eq!(policy.delay_for(3), Duration::from_millis(200));
        assert_eq!(policy.delay_for(5), Duration::from_millis(800));
        assert_eq!(policy.delay_for(6), Duration::from_secs(1));
        assert_eq!(policy.delay_for(60), Duration::from_secs(1));
    }

    #[test]
    fn topology_parses_replicas_and_round_trips_through_display() {
        let spec = "host1:9000;replica=host1:9100,host2:9100;host2:9000";
        let topology: FleetTopology = spec.parse().expect("parse");
        assert_eq!(topology.shards.len(), 2);
        assert_eq!(topology.shards[0].replicas.len(), 2);
        assert_eq!(topology.shards[1].replicas.len(), 0);
        assert_eq!(
            topology.to_string(),
            "tcp:host1:9000;replica=tcp:host1:9100,tcp:host2:9100;tcp:host2:9000"
        );
        let reparsed: FleetTopology = topology.to_string().parse().expect("reparse");
        assert_eq!(reparsed, topology);

        assert!("".parse::<FleetTopology>().is_err());
        assert!("replica=host:1".parse::<FleetTopology>().is_err());
        assert!("host:1;;host:2".parse::<FleetTopology>().is_err());
    }

    #[test]
    fn topology_tuning_parses_and_round_trips_through_display() {
        // Default tuning: nothing extra in the display form.
        let plain: FleetTopology = "host1:9000".parse().expect("parse");
        assert_eq!(plain.tuning, FleetTuning::default());
        assert_eq!(plain.to_string(), "tcp:host1:9000");

        // Tuned spec: values land in the right knobs, and Display emits
        // them back so the string round-trips.
        let spec = "host1:9000;replica=host1:9100;hedge_ms=5,1,40;backoff_ms=10,200";
        let tuned: FleetTopology = spec.parse().expect("parse tuned");
        assert_eq!(tuned.tuning.hedge_cold, Duration::from_millis(5));
        assert_eq!(tuned.tuning.hedge_min, Duration::from_millis(1));
        assert_eq!(tuned.tuning.hedge_max, Duration::from_millis(40));
        assert_eq!(
            tuned.tuning.backoff,
            BackoffPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(200),
            }
        );
        assert_eq!(
            tuned.to_string(),
            "tcp:host1:9000;replica=tcp:host1:9100;hedge_ms=5,1,40;backoff_ms=10,200"
        );
        let reparsed: FleetTopology = tuned.to_string().parse().expect("reparse");
        assert_eq!(reparsed, tuned);

        // Tuning items may appear anywhere, including before any shard.
        let leading: FleetTopology = "backoff_ms=10,200;host1:9000".parse().expect("parse");
        assert_eq!(leading.tuning.backoff.base, Duration::from_millis(10));

        // Malformed tunings are rejected with a reason, not defaulted.
        for bad in [
            "host:1;hedge_ms=5,1",          // wrong arity
            "host:1;hedge_ms=5,40,1",       // inverted clamps
            "host:1;hedge_ms=a,b,c",        // not milliseconds
            "host:1;backoff_ms=200,10",     // base above cap
            "host:1;backoff_ms=10,200,300", // wrong arity
        ] {
            assert!(bad.parse::<FleetTopology>().is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn latency_window_percentiles_roll() {
        let window = LatencyWindow::default();
        assert_eq!(window.percentile(0.9), None);
        for ms in 1..=10u64 {
            window.record(Duration::from_millis(ms));
        }
        assert_eq!(window.median(), Some(Duration::from_millis(6)));
        assert_eq!(window.percentile(0.9), Some(Duration::from_millis(9)));
        // The window is bounded: old samples roll off.
        for _ in 0..LATENCY_WINDOW {
            window.record(Duration::from_millis(100));
        }
        assert_eq!(window.median(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn fleet_rows_match_scan_and_survive_admit_and_evict() {
        let rs = reference();
        let queries = queries();
        let expected = expected_rows(&rs, &queries);

        let first = spawn_loaded_worker(&rs);
        let backend = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(first)]),
        )
        .expect("connect single-shard fleet");
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );

        // Admit a second (diskless!) shard: classes re-deal, exact cover
        // holds, rows stay byte-identical.
        let second = spawn_diskless_worker();
        backend
            .view()
            .admit(FleetShard::solo(second))
            .expect("admit");
        let members = backend.view().members();
        assert_eq!(members.len(), 2);
        assert!(is_exact_cover(
            rs.n_classes(),
            members.iter().map(|m| m.classes())
        ));
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );

        // Evict the first shard: the diskless survivor is re-seeded with
        // every class and still serves identical rows.
        backend.view().evict(0).expect("evict");
        assert_eq!(backend.view().n_shards(), 1);
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
        // The last shard is protected.
        assert!(backend.view().evict(0).is_err());
    }

    #[test]
    fn a_diskless_worker_is_seeded_by_push_and_serves_identical_rows() {
        let rs = reference();
        let queries = queries();
        let expected = expected_rows(&rs, &queries);
        let endpoint = spawn_diskless_worker();
        let backend = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(endpoint.clone())]),
        )
        .expect("connect pushes the reference set");
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
        // A second fleet client finds the worker already seeded (matching
        // fingerprint) and connects without re-pushing.
        let again = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(endpoint)]),
        )
        .expect("reconnect to the seeded worker");
        assert_eq!(
            again.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
    }

    #[test]
    fn a_stale_worker_is_upgraded_by_push_on_connect() {
        let rs = reference();
        // A worker loaded with a *different* (stale) artifact.
        let stale_train = vec![SampleFeatures::extract(b"an entirely different corpus")];
        let stale = Arc::new(ReferenceSet::new(
            vec!["Other".into()],
            &stale_train,
            &[0],
            &FeatureKind::ALL,
        ));
        let endpoint = spawn_host(Arc::new(TenantHost::single(Some(
            ShardWorker::all_classes(stale),
        ))));

        let queries = queries();
        let expected = expected_rows(&rs, &queries);
        let backend = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(endpoint)]),
        )
        .expect("connect upgrades the stale worker over the wire");
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
    }

    #[test]
    fn a_stale_worker_with_a_registered_delta_is_upgraded_by_delta_push() {
        let base = reference();
        // Evolve by appending a class: order-preserving, so the delta is
        // genuinely incremental (no retires, one added slice).
        let mut evolved = (*base).clone();
        evolved
            .add_class(
                "Hmmer".into(),
                vec![PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                    b"a hmmer profile hidden markov search image",
                ))],
            )
            .expect("append a class");
        let target = Arc::new(evolved);
        let delta = ArtifactDelta::between(&base, &target).expect("diff");
        assert!(delta.retire_classes.is_empty());
        assert_eq!(delta.add_slices.len(), 1);

        let queries = queries();
        let expected = expected_rows(&target, &queries);
        let fresh = spawn_loaded_worker(&target);
        let backend = FleetBackend::connect(
            Arc::clone(&target),
            FleetTopology::new(vec![FleetShard::solo(fresh)]),
        )
        .expect("connect over the evolved set");

        // A delta targeting anything but this fleet's reference set is
        // refused at registration.
        let backwards = ArtifactDelta::between(&target, &base).expect("reverse diff");
        assert!(backend.view().register_delta(backwards).is_err());
        backend.view().register_delta(delta).expect("register");

        // Admit a worker still loaded with the base artifact: it
        // advertises the delta's base fingerprint, so the upgrade rides
        // PushDelta — and the patched worker serves byte-identical rows.
        let stale = spawn_loaded_worker(&base);
        backend
            .view()
            .admit(FleetShard::solo(stale))
            .expect("admit upgrades the stale worker by delta");
        assert_eq!(backend.view().n_shards(), 2);
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
    }

    #[test]
    fn a_sparse_worker_that_cannot_apply_the_delta_falls_back_to_full_push() {
        let base = reference();
        // Seed two diskless workers from a fleet over the *base* set: each
        // ends up holding only its partition's slices (a sparse base).
        let d0 = spawn_diskless_worker();
        let d1 = spawn_diskless_worker();
        let old = FleetBackend::connect(
            Arc::clone(&base),
            FleetTopology::new(vec![FleetShard::solo(d0.clone()), FleetShard::solo(d1)]),
        )
        .expect("seed the diskless pair with base slices");
        drop(old);

        // Evolve in place: extending a middle class re-travels it as
        // retire+add, which breaks order preservation, so the delta falls
        // back to full replacement — it retires classes a sparse worker
        // does not hold.
        let mut evolved = (*base).clone();
        evolved
            .add_samples(
                0,
                vec![PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                    b"the velvet assembler executable body three",
                ))],
            )
            .expect("extend class 0");
        let target = Arc::new(evolved);
        let delta = ArtifactDelta::between(&base, &target).expect("diff");
        assert!(!delta.retire_classes.is_empty());

        let queries = queries();
        let expected = expected_rows(&target, &queries);
        let fresh = spawn_loaded_worker(&target);
        let backend = FleetBackend::connect(
            Arc::clone(&target),
            FleetTopology::new(vec![FleetShard::solo(fresh)]),
        )
        .expect("connect over the evolved set");
        backend.view().register_delta(delta).expect("register");

        // The sparse worker advertises the base fingerprint, the delta
        // push fails on it (it cannot retire classes it never held), and
        // the connect falls back to a full push — admit succeeds and the
        // rows stay byte-identical.
        backend
            .view()
            .admit(FleetShard::solo(d0))
            .expect("admit falls back to the full push");
        assert_eq!(backend.view().n_shards(), 2);
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
    }

    #[test]
    fn a_dead_primary_fails_over_to_its_replica_with_no_surfaced_error() {
        let rs = reference();
        let queries = queries();
        let expected = expected_rows(&rs, &queries);

        // The primary accepts connections but drops them after the
        // handshake (a request budget of zero) — every query on it fails.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky primary");
        let addr = listener.local_addr().unwrap().to_string();
        let flaky = Arc::new(ShardWorker::all_classes(Arc::clone(&rs)));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                let flaky = Arc::clone(&flaky);
                std::thread::spawn(move || {
                    let _ = flaky.serve_requests(stream, "flaky", Some(0));
                });
            }
        });
        let replica = spawn_loaded_worker(&rs);

        let backend = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard {
                primary: Endpoint::Tcp(addr),
                replicas: vec![replica],
            }]),
        )
        .expect("connect");
        // Every batch completes through the replica; no error surfaces.
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
        assert_eq!(
            backend.try_feature_rows_prepared(&queries).expect("rows"),
            expected
        );
    }

    /// A manual clock: starts at a real instant, advances only on demand.
    #[derive(Debug)]
    struct ManualClock {
        base: Instant,
        offset: Mutex<Duration>,
    }

    impl ManualClock {
        fn new() -> Self {
            Self {
                base: Instant::now(),
                offset: Mutex::new(Duration::ZERO),
            }
        }

        fn advance(&self, by: Duration) {
            *self.offset.lock().unwrap() += by;
        }
    }

    impl FleetClock for ManualClock {
        fn now(&self) -> Instant {
            self.base + *self.offset.lock().unwrap()
        }
    }

    #[test]
    fn a_down_node_is_gated_by_the_deterministic_backoff_schedule() {
        let rs = reference();
        // One connection total: the fleet handshakes successfully, after
        // which the listener is gone — the first query poisons the mux and
        // every redial fails.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind one-shot worker");
        let addr = listener.local_addr().unwrap().to_string();
        let worker = Arc::new(ShardWorker::all_classes(Arc::clone(&rs)));
        std::thread::spawn(move || {
            if let Some(Ok(stream)) = listener.incoming().next() {
                let _ = worker.serve_requests(stream, "one-shot", Some(0));
            }
        });

        let clock = Arc::new(ManualClock::new());
        let view = FleetView::connect_with(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(Endpoint::Tcp(addr))]),
            Arc::clone(&clock) as Arc<dyn FleetClock>,
            BackoffPolicy {
                base: Duration::from_secs(60),
                cap: Duration::from_secs(600),
            },
        )
        .expect("connect");
        let backend = FleetBackend::over(Arc::clone(&rs), Arc::new(view));
        let query =
            PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"backoff probe body"));

        // First query: the connection is found dead, the redial fails
        // (listener gone), the node is marked down.
        let first = backend.try_feature_rows_prepared(std::slice::from_ref(&query));
        assert!(first.is_err(), "the lone node is dead");

        // Second query, clock unmoved: refused by the backoff gate —
        // deterministically, without touching the network.
        let gated = backend
            .try_feature_rows_prepared(std::slice::from_ref(&query))
            .expect_err("backoff must gate the redial");
        assert!(
            gated.to_string().contains("backoff deadline"),
            "expected a backoff refusal, got: {gated}"
        );

        // Advance past the first backoff step: the redial is attempted
        // again (and fails against the closed listener with a dial error,
        // not a backoff refusal).
        clock.advance(Duration::from_secs(61));
        let redialed = backend
            .try_feature_rows_prepared(std::slice::from_ref(&query))
            .expect_err("the worker is still gone");
        assert!(
            !redialed.to_string().contains("backoff deadline"),
            "expected a real redial attempt, got: {redialed}"
        );

        // And the failure doubled the gate: one more step is not enough.
        clock.advance(Duration::from_secs(61));
        let gated_again = backend
            .try_feature_rows_prepared(std::slice::from_ref(&query))
            .expect_err("still down");
        assert!(
            gated_again.to_string().contains("backoff deadline"),
            "expected the doubled backoff to gate, got: {gated_again}"
        );
    }

    #[test]
    fn without_a_replica_the_typed_net_error_contract_is_unchanged() {
        let rs = reference();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind one-shot worker");
        let addr = listener.local_addr().unwrap().to_string();
        let worker = Arc::new(ShardWorker::all_classes(Arc::clone(&rs)));
        std::thread::spawn(move || {
            if let Some(Ok(stream)) = listener.incoming().next() {
                let _ = worker.serve_requests(stream, "one-shot", Some(0));
            }
        });
        let backend = FleetBackend::connect(
            Arc::clone(&rs),
            FleetTopology::new(vec![FleetShard::solo(Endpoint::Tcp(addr))]),
        )
        .expect("connect");
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"probe"));
        let mut out = vec![0.0; rs.n_columns()];
        let err = backend
            .try_max_scores_into(&query, &mut out)
            .expect_err("the lone worker is gone");
        assert!(
            matches!(err, FhcError::Net(_)),
            "fleet errors stay typed: {err:?}"
        );
    }
}
