//! The shard-serving wire protocol.
//!
//! Frames ride on [`hpcutil::frame`] (one byte of frame tag, a `u32` length
//! prefix, the payload, and an FNV-1a checksum); payloads are encoded with
//! the same [`hpcutil::codec`] primitives as classifier artifacts. The
//! protocol is versioned through the [`Hello`] handshake, not per frame: a
//! worker announces [`PROTOCOL_VERSION`], the reference-set fingerprint it
//! serves, and its class partition, and the client refuses to proceed on
//! any mismatch.
//!
//! ```text
//! worker                     client
//!   | --- Hello ---------------> |   on connect (version, feature bits,
//!   |                            |   tenant, fingerprint, partition)
//!   | <-- Hello ---------------- |   optional: client selects a tenant
//!   | --- Hello / Error -------> |   that tenant's greeting, or a typed
//!   |                            |   rejection naming the unknown tenant
//!   | <-- Assign --------------- |   optional: client re-partitions
//!   | --- Hello ---------------> |   confirms the new partition
//!   | <-- ScoreRequest --------- |   prepared query hashes, request id
//!   | --- ScoreResponse -------> |   partial max-score row (col, score)
//!   | <-- ScoreBatchRequest ---- |   many queries, one frame (only if the
//!   | --- ScoreBatchResponse --> |   worker advertised the batch feature)
//!   | <-- PushSlice x N -------- |   optional: client ships the reference
//!   | --- PushAck + Hello -----> |   set in slices (push feature only);
//!   |                            |   the fresh Hello confirms the install
//!   | <-- PushDelta x N -------- |   optional: client patches the installed
//!   | --- DeltaAck + Hello ----> |   set with an artifact delta (delta
//!   |            ...             |   feature only)
//!   | <-- Shutdown ------------- |   clean goodbye (or just EOF)
//! ```
//!
//! Requests carry client-chosen ids and responses echo them, so a client
//! may *pipeline*: keep many requests in flight on one connection and
//! correlate the responses as they arrive, in any order a future worker
//! might choose to send them.
//!
//! Queries travel as *prepared* hashes in the artifact v3 encoding
//! (delta-encoded window keys), so a worker spends zero time re-deriving
//! comparison state: what arrives is what it scores with.

use crate::artifact::{decode_prepared_features, encode_prepared_features, FORMAT_VERSION};
use crate::features::PreparedSampleFeatures;
use crate::shardnet::NetError;
use hpcutil::codec::CodecError;
use hpcutil::{ByteReader, ByteWriter, FrameError, MuxError, MuxErrorKind};
use std::io::{Read, Write};

/// Version of the shard-serving protocol spoken by this build. A worker and
/// a client must agree exactly; there is no cross-version negotiation.
/// *Optional capabilities* within one version are negotiated through
/// [`Hello::features`] instead: a client only uses a feature the worker
/// advertised.
///
/// Version history: v1 carried single-query frames only; v2 added the
/// [`Hello::features`] field and the batched
/// [`ScoreBatchRequest`]/[`ScoreBatchResponse`] frames; the reference-push
/// frames ([`PushSlice`]/[`PushAck`]) rode v2 behind
/// [`FEATURE_REFERENCE_PUSH`]. v3 added the [`Hello::tenant`] field (a
/// daemon now hosts many reference sets keyed by tenant) and the
/// [`PushDelta`]/[`DeltaAck`] frames behind [`FEATURE_DELTA_PUSH`] — a
/// worker that does not advertise the bit never sees them. The
/// [`Overload`] frame rides v3 the same way, behind [`FEATURE_OVERLOAD`]:
/// a peer that does not advertise the bit never sends it.
pub const PROTOCOL_VERSION: u32 = 3;

// Score requests travel in the artifact's prepared-feature encoding, so a
// bump of the artifact format that changes `encode_prepared_features` is a
// *wire* change too: two builds could then pass the protocol-version and
// fingerprint handshake yet fail on every query. This assertion pins the
// pairing — whoever bumps FORMAT_VERSION must revisit PROTOCOL_VERSION (or
// prove the prepared encoding unchanged) and update both numbers here.
const _: () = assert!(
    FORMAT_VERSION == 3 && PROTOCOL_VERSION == 3,
    "artifact FORMAT_VERSION changed: the ScoreRequest prepared-feature \
     encoding may have changed with it; bump wire::PROTOCOL_VERSION \
     accordingly and update this assertion"
);

/// [`Hello::features`] bit: the worker scores [`ScoreBatchRequest`] frames.
/// Workers built from this crate always advertise it; a client must fall
/// back to one [`ScoreRequest`] per query against a worker that does not.
pub const FEATURE_SCORE_BATCH: u32 = 1 << 0;

/// [`Hello::features`] bit: the worker accepts [`PushSlice`] frames — a
/// client may ship it per-class reference slices instead of the worker
/// loading an artifact from disk. A diskless worker (started with no
/// artifact) advertises this with `fingerprint == 0` and an empty class
/// list; a seeded worker advertises it too, so a fleet can roll a new
/// artifact onto running workers through the same frames.
pub const FEATURE_REFERENCE_PUSH: u32 = 1 << 1;

/// [`Hello::features`] bit: the worker accepts [`PushDelta`] frames — a
/// client may patch the worker's installed reference set with an
/// [`ArtifactDelta`](crate::artifact::ArtifactDelta) instead of re-pushing
/// the whole set. Only meaningful alongside [`FEATURE_REFERENCE_PUSH`]: a
/// delta needs an installed base to patch.
pub const FEATURE_DELTA_PUSH: u32 = 1 << 2;

/// [`Hello::features`] bit: the serving side may answer an individual
/// request with an [`Overload`] frame instead of scoring it — a typed,
/// id-correlated load-shedding rejection carrying a retry hint. Unlike
/// [`Frame::Error`], an overload rejection is **not fatal**: the
/// connection stays open and every other in-flight request proceeds, so a
/// client can keep serving in-quota traffic on the same mux. Advertised by
/// gateways enforcing admission control ([`crate::shardnet::gateway`]).
pub const FEATURE_OVERLOAD: u32 = 1 << 3;

/// The tenant a connection serves when neither side selects one. Every v2
/// deployment implicitly served this tenant, so a single-artifact daemon
/// and a tenant-unaware client keep interoperating unchanged.
pub const DEFAULT_TENANT: &str = "default";

/// Longest tenant id the wire accepts. Tenant names are routing keys, not
/// documents; the bound keeps hostile handshakes from smuggling megabytes
/// through the tenant field.
pub const MAX_TENANT_LEN: usize = 64;

/// Whether `name` is a well-formed tenant id: 1..=[`MAX_TENANT_LEN`]
/// characters drawn from `[A-Za-z0-9._-]`. Enforced on *decode* (a
/// malformed tenant in a handshake is a protocol error, not a lookup miss)
/// and by every registry construction site.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Clip a hostile tenant string for an error message: long ids are the
/// attack being reported, so the report must not echo them whole.
fn truncate_for_display(name: &str) -> &str {
    let end = name
        .char_indices()
        .nth(MAX_TENANT_LEN)
        .map_or(name.len(), |(at, _)| at);
    &name[..end]
}

/// Upper bound on a frame payload this implementation will read. Score
/// requests and responses are a few KiB; anything near this limit is a
/// corrupt length prefix, not a real message.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

const TAG_HELLO: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_SCORE_REQUEST: u8 = 3;
const TAG_SCORE_RESPONSE: u8 = 4;
const TAG_ERROR: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_SCORE_BATCH_REQUEST: u8 = 7;
const TAG_SCORE_BATCH_RESPONSE: u8 = 8;
const TAG_PUSH_SLICE: u8 = 9;
const TAG_PUSH_ACK: u8 = 10;
const TAG_PUSH_DELTA: u8 = 11;
const TAG_DELTA_ACK: u8 = 12;
const TAG_OVERLOAD: u8 = 13;

/// The worker's handshake: everything a client needs to decide whether this
/// worker can score for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The worker's [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Bitmask of optional capabilities the worker supports within this
    /// protocol version (see [`FEATURE_SCORE_BATCH`]). Unknown bits are
    /// ignored, so a newer worker interoperates with an older client.
    pub features: u32,
    /// Fingerprint of the reference set the worker serves
    /// ([`ReferenceSet::fingerprint`](crate::similarity::ReferenceSet::fingerprint)).
    pub fingerprint: u64,
    /// Total number of known classes in that reference set.
    pub n_classes: usize,
    /// Total number of similarity columns (`n_classes * active kinds`).
    pub n_columns: usize,
    /// The known-class ids this worker scores (strictly increasing —
    /// enforced on decode, so consumers may binary-search it).
    pub classes: Vec<usize>,
    /// The tenant whose reference set this handshake describes. A worker's
    /// greeting names the tenant the connection is bound to (initially
    /// [`DEFAULT_TENANT`]); a *client-sent* Hello re-binds the connection
    /// to another tenant slot, and the worker answers with that tenant's
    /// own Hello — or an [`Frame::Error`] naming the unknown tenant.
    /// Malformed ids (see [`valid_tenant`]) are rejected on decode.
    pub tenant: String,
}

impl Hello {
    /// Whether the worker advertised `feature` (a [`FEATURE_SCORE_BATCH`]-
    /// style bit).
    pub fn supports(&self, feature: u32) -> bool {
        self.features & feature != 0
    }
}

/// A client-requested re-partition: "score exactly these classes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// The known-class ids the worker should score from now on.
    pub classes: Vec<usize>,
}

/// One query to score: the prepared hashes of a sample, tagged with a
/// request id the response must echo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreRequest {
    /// Client-chosen id correlating the response with the request.
    pub id: u64,
    /// The prepared query (all views, comparison state included).
    pub query: PreparedSampleFeatures,
}

/// A partial max-score row: one `(column, score)` cell per `(view, class)`
/// the worker owns.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    /// The id of the [`ScoreRequest`] this answers.
    pub id: u64,
    /// `(column index, max similarity)` cells for the worker's classes.
    pub cells: Vec<(u32, f64)>,
}

/// Many queries in one checksummed frame: the request a batching client
/// (the gateway, most importantly) sends to a worker that advertised
/// [`FEATURE_SCORE_BATCH`]. The response echoes the id and carries one
/// partial row per query, in query order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBatchRequest {
    /// Client-chosen id correlating the response with the request.
    pub id: u64,
    /// The prepared queries, each in the same encoding as a
    /// [`ScoreRequest`] carries.
    pub queries: Vec<PreparedSampleFeatures>,
}

/// The batched counterpart of [`ScoreResponse`]: one partial max-score row
/// per query of the [`ScoreBatchRequest`] it answers, in query order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBatchResponse {
    /// The id of the [`ScoreBatchRequest`] this answers.
    pub id: u64,
    /// One `(column, score)` cell list per query, in query order.
    pub rows: Vec<Vec<(u32, f64)>>,
}

/// One reference-set slice in flight to a worker that advertised
/// [`FEATURE_REFERENCE_PUSH`]: the `index`-th of `total` slices of one
/// artifact push, each carrying a self-checksummed
/// [`ReferenceSet::encode_slice`](crate::similarity::ReferenceSet) container.
/// After the final slice (`index == total - 1`) the worker assembles the
/// set, installs it, and answers with a [`PushAck`] followed by a refreshed
/// [`Hello`] advertising the new fingerprint — the same confirmation shape
/// an [`Assign`] uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushSlice {
    /// Zero-based position of this slice within the push.
    pub index: u32,
    /// Total number of slices in the push (at least 1).
    pub total: u32,
    /// The encoded slice container (see `ReferenceSet::encode_slice`).
    pub payload: Vec<u8>,
}

/// The worker's confirmation that a [`PushSlice`] sequence was assembled
/// and installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushAck {
    /// Fingerprint of the *full* reference set the slices declared (what
    /// the worker now advertises in its handshake).
    pub fingerprint: u64,
    /// How many classes the pushed slices populated with samples.
    pub classes_loaded: u32,
}

/// One chunk of an [`ArtifactDelta`](crate::artifact::ArtifactDelta) in
/// flight to a worker that advertised [`FEATURE_DELTA_PUSH`]: the
/// `index`-th of `total` chunks of one encoded delta container. After the
/// final chunk the worker reassembles the container, applies the delta to
/// its installed reference set (rejecting a stale base fingerprint as a
/// typed error), and answers with a [`DeltaAck`] followed by a refreshed
/// [`Hello`] — the same confirmation shape a [`PushSlice`] push uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushDelta {
    /// Zero-based position of this chunk within the delta push.
    pub index: u32,
    /// Total number of chunks in the push (at least 1).
    pub total: u32,
    /// This chunk of the encoded delta container (see
    /// [`ArtifactDelta::encode`](crate::artifact::ArtifactDelta::encode)).
    pub payload: Vec<u8>,
}

/// The worker's confirmation that a [`PushDelta`] sequence was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaAck {
    /// Fingerprint of the reference set the worker serves *after* the
    /// patch (the delta's declared target).
    pub fingerprint: u64,
    /// How many classes the delta added.
    pub classes_added: u32,
    /// How many classes the delta retired.
    pub classes_retired: u32,
}

/// Server → client: the request identified by `id` was shed by admission
/// control (quota exhausted or inflight ceiling hit) instead of scored.
///
/// Carried behind [`FEATURE_OVERLOAD`]. Correlated by request id like a
/// score reply, so it rides a pipelined connection without disturbing any
/// other in-flight request — the typed, non-fatal alternative to
/// [`Frame::Error`] (which poisons the whole connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overload {
    /// The request this rejection answers.
    pub id: u64,
    /// The server's hint for when capacity should be available again, in
    /// milliseconds. Clients must not retry the same work sooner.
    pub retry_after_ms: u32,
}

/// Every message of the shard-serving protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → client handshake.
    Hello(Hello),
    /// Client → worker re-partition request.
    Assign(Assign),
    /// Client → worker score request (boxed: the prepared query dwarfs
    /// every other variant, and frames are moved around by value).
    ScoreRequest(Box<ScoreRequest>),
    /// Worker → client partial row.
    ScoreResponse(ScoreResponse),
    /// Client → worker: many queries in one frame (requires the worker to
    /// have advertised [`FEATURE_SCORE_BATCH`]).
    ScoreBatchRequest(ScoreBatchRequest),
    /// Worker → client: one partial row per batched query.
    ScoreBatchResponse(ScoreBatchResponse),
    /// Client → worker: one reference-set slice (requires the worker to
    /// have advertised [`FEATURE_REFERENCE_PUSH`]).
    PushSlice(PushSlice),
    /// Worker → client: a pushed reference set was assembled and installed.
    PushAck(PushAck),
    /// Client → worker: one chunk of an encoded artifact delta (requires
    /// the worker to have advertised [`FEATURE_DELTA_PUSH`]).
    PushDelta(PushDelta),
    /// Server → client: the identified request was shed by admission
    /// control (requires [`FEATURE_OVERLOAD`]); the connection stays open.
    Overload(Overload),
    /// Worker → client: a pushed delta was applied to the installed set.
    DeltaAck(DeltaAck),
    /// Either side: a fatal error message, connection closes after.
    Error(String),
    /// Client → worker: clean goodbye.
    Shutdown,
}

/// Write a collection length as the `u32` count every cell/query list on
/// the wire uses.
fn put_len_u32(w: &mut ByteWriter, len: usize) {
    // fhc-lint: allow(no_panic) -- a list of u32::MAX entries cannot reach the wire: at >= 4 bytes per entry it overflows MAX_FRAME_PAYLOAD (and the u32 frame length header) long before the count does, so every encodable frame converts
    let len = u32::try_from(len).expect("list longer than u32::MAX entries");
    w.put_u32(len);
}

/// Assemble a complete wire frame (header + payload + checksum) in memory.
fn frame_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    // fhc-lint: allow(no_panic) -- encode_frame only fails for payloads over u32::MAX bytes, and every encoder bounds its payload by MAX_FRAME_PAYLOAD first
    hpcutil::encode_frame(tag, payload).expect("payload bounded by MAX_FRAME_PAYLOAD")
}

fn encode_cells(w: &mut ByteWriter, cells: &[(u32, f64)]) {
    put_len_u32(w, cells.len());
    for &(column, score) in cells {
        w.put_u32(column);
        w.put_f64(score);
    }
}

/// Decode one `(column, score)` cell list. Each cell costs 12 bytes, so
/// the count is validated against the remaining payload before allocating.
fn decode_cells(r: &mut ByteReader<'_>) -> Result<Vec<(u32, f64)>, CodecError> {
    let n_cells = r.get_u32()? as usize;
    if r.remaining() < n_cells.saturating_mul(12) {
        return Err(CodecError::new(format!(
            "score row claims {n_cells} cells but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        let column = r.get_u32()?;
        let score = r.get_f64()?;
        cells.push((column, score));
    }
    Ok(cells)
}

fn encode_class_list(w: &mut ByteWriter, classes: &[usize]) {
    w.put_usize(classes.len());
    for &class in classes {
        w.put_usize(class);
    }
}

/// Decode a class-id list: strictly increasing (hence duplicate-free) ids
/// below `n_classes`. Every entry costs 8 bytes, so the count is validated
/// against the remaining payload *before* any allocation — a hostile
/// length prefix (or a hostile `n_classes`) cannot force a huge
/// reservation.
fn decode_class_list(r: &mut ByteReader<'_>, n_classes: usize) -> Result<Vec<usize>, CodecError> {
    let len = r.get_usize()?;
    if len > n_classes {
        return Err(CodecError::new(format!(
            "class list of {len} entries exceeds the {n_classes} known classes"
        )));
    }
    if r.remaining() < len.saturating_mul(8) {
        return Err(CodecError::new(format!(
            "class list of {len} entries needs {} bytes, only {} remain",
            len.saturating_mul(8),
            r.remaining()
        )));
    }
    let mut classes: Vec<usize> = Vec::with_capacity(len);
    for _ in 0..len {
        let class = r.get_usize()?;
        if class >= n_classes {
            return Err(CodecError::new(format!(
                "class id {class} out of range (reference set has {n_classes} classes)"
            )));
        }
        if let Some(&prev) = classes.last() {
            if prev >= class {
                return Err(CodecError::new(format!(
                    "class ids must be strictly increasing (got {class} after {prev})"
                )));
            }
        }
        classes.push(class);
    }
    Ok(classes)
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello(_) => TAG_HELLO,
            Frame::Assign(_) => TAG_ASSIGN,
            Frame::ScoreRequest(_) => TAG_SCORE_REQUEST,
            Frame::ScoreResponse(_) => TAG_SCORE_RESPONSE,
            Frame::ScoreBatchRequest(_) => TAG_SCORE_BATCH_REQUEST,
            Frame::ScoreBatchResponse(_) => TAG_SCORE_BATCH_RESPONSE,
            Frame::PushSlice(_) => TAG_PUSH_SLICE,
            Frame::PushAck(_) => TAG_PUSH_ACK,
            Frame::PushDelta(_) => TAG_PUSH_DELTA,
            Frame::DeltaAck(_) => TAG_DELTA_ACK,
            Frame::Overload(_) => TAG_OVERLOAD,
            Frame::Error(_) => TAG_ERROR,
            Frame::Shutdown => TAG_SHUTDOWN,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Frame::Hello(hello) => {
                w.put_u32(hello.protocol);
                w.put_u32(hello.features);
                w.put_u64(hello.fingerprint);
                w.put_usize(hello.n_classes);
                w.put_usize(hello.n_columns);
                encode_class_list(&mut w, &hello.classes);
                w.put_str(&hello.tenant);
            }
            Frame::Assign(assign) => {
                // An Assign cannot validate ids against n_classes on its own,
                // so it carries the class count it was computed against.
                w.put_usize(assign.classes.iter().map(|&c| c + 1).max().unwrap_or(0));
                encode_class_list(&mut w, &assign.classes);
            }
            Frame::ScoreRequest(request) => {
                w.put_u64(request.id);
                encode_prepared_features(&mut w, &request.query);
            }
            Frame::ScoreResponse(response) => {
                w.put_u64(response.id);
                encode_cells(&mut w, &response.cells);
            }
            Frame::ScoreBatchRequest(batch) => {
                w.put_u64(batch.id);
                put_len_u32(&mut w, batch.queries.len());
                for query in &batch.queries {
                    encode_prepared_features(&mut w, query);
                }
            }
            Frame::ScoreBatchResponse(batch) => {
                w.put_u64(batch.id);
                put_len_u32(&mut w, batch.rows.len());
                for row in &batch.rows {
                    encode_cells(&mut w, row);
                }
            }
            Frame::PushSlice(slice) => {
                w.put_u32(slice.index);
                w.put_u32(slice.total);
                w.put_bytes(&slice.payload);
            }
            Frame::PushAck(ack) => {
                w.put_u64(ack.fingerprint);
                w.put_u32(ack.classes_loaded);
            }
            Frame::PushDelta(delta) => {
                w.put_u32(delta.index);
                w.put_u32(delta.total);
                w.put_bytes(&delta.payload);
            }
            Frame::DeltaAck(ack) => {
                w.put_u64(ack.fingerprint);
                w.put_u32(ack.classes_added);
                w.put_u32(ack.classes_retired);
            }
            Frame::Overload(overload) => {
                w.put_u64(overload.id);
                w.put_u32(overload.retry_after_ms);
            }
            Frame::Error(message) => w.put_str(message),
            Frame::Shutdown => {}
        }
        w.into_bytes()
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Frame, CodecError> {
        let mut r = ByteReader::new(payload);
        let frame = match tag {
            TAG_HELLO => {
                let protocol = r.get_u32()?;
                let features = r.get_u32()?;
                let fingerprint = r.get_u64()?;
                let n_classes = r.get_usize()?;
                let n_columns = r.get_usize()?;
                let classes = decode_class_list(&mut r, n_classes)?;
                let tenant = r.get_str()?;
                if !valid_tenant(&tenant) {
                    return Err(CodecError::new(format!(
                        "malformed tenant id {:?} in handshake (want 1..={MAX_TENANT_LEN} \
                         characters of [A-Za-z0-9._-])",
                        truncate_for_display(&tenant)
                    )));
                }
                Frame::Hello(Hello {
                    protocol,
                    features,
                    fingerprint,
                    n_classes,
                    n_columns,
                    classes,
                    tenant,
                })
            }
            TAG_ASSIGN => {
                let bound = r.get_usize()?;
                let classes = decode_class_list(&mut r, bound)?;
                Frame::Assign(Assign { classes })
            }
            TAG_SCORE_REQUEST => {
                let id = r.get_u64()?;
                let query = decode_prepared_features(&mut r, FORMAT_VERSION)?;
                Frame::ScoreRequest(Box::new(ScoreRequest { id, query }))
            }
            TAG_SCORE_RESPONSE => {
                let id = r.get_u64()?;
                let cells = decode_cells(&mut r)?;
                Frame::ScoreResponse(ScoreResponse { id, cells })
            }
            TAG_SCORE_BATCH_REQUEST => {
                let id = r.get_u64()?;
                let n_queries = r.get_u32()? as usize;
                // Every encoded prepared query costs at least one byte, so
                // the count is bounded by the remaining payload — a hostile
                // count cannot force a huge reservation.
                if n_queries > r.remaining() {
                    return Err(CodecError::new(format!(
                        "score batch claims {n_queries} queries but only {} bytes remain",
                        r.remaining()
                    )));
                }
                let mut queries = Vec::with_capacity(n_queries);
                for _ in 0..n_queries {
                    queries.push(decode_prepared_features(&mut r, FORMAT_VERSION)?);
                }
                Frame::ScoreBatchRequest(ScoreBatchRequest { id, queries })
            }
            TAG_SCORE_BATCH_RESPONSE => {
                let id = r.get_u64()?;
                let n_rows = r.get_u32()? as usize;
                // Every row costs at least its 4-byte cell count.
                if r.remaining() < n_rows.saturating_mul(4) {
                    return Err(CodecError::new(format!(
                        "score batch response claims {n_rows} rows but only {} bytes remain",
                        r.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    rows.push(decode_cells(&mut r)?);
                }
                Frame::ScoreBatchResponse(ScoreBatchResponse { id, rows })
            }
            TAG_PUSH_SLICE => {
                let index = r.get_u32()?;
                let total = r.get_u32()?;
                if total == 0 || index >= total {
                    return Err(CodecError::new(format!(
                        "push slice {index} of {total} is out of sequence"
                    )));
                }
                // `get_bytes` validates the blob length against the
                // remaining payload before copying, so a hostile length
                // prefix cannot force a huge reservation.
                let payload = r.get_bytes()?;
                Frame::PushSlice(PushSlice {
                    index,
                    total,
                    payload,
                })
            }
            TAG_PUSH_ACK => {
                let fingerprint = r.get_u64()?;
                let classes_loaded = r.get_u32()?;
                Frame::PushAck(PushAck {
                    fingerprint,
                    classes_loaded,
                })
            }
            TAG_PUSH_DELTA => {
                let index = r.get_u32()?;
                let total = r.get_u32()?;
                if total == 0 || index >= total {
                    return Err(CodecError::new(format!(
                        "push delta chunk {index} of {total} is out of sequence"
                    )));
                }
                // As with PushSlice, `get_bytes` validates the blob length
                // against the remaining payload before copying.
                let payload = r.get_bytes()?;
                Frame::PushDelta(PushDelta {
                    index,
                    total,
                    payload,
                })
            }
            TAG_DELTA_ACK => {
                let fingerprint = r.get_u64()?;
                let classes_added = r.get_u32()?;
                let classes_retired = r.get_u32()?;
                Frame::DeltaAck(DeltaAck {
                    fingerprint,
                    classes_added,
                    classes_retired,
                })
            }
            TAG_OVERLOAD => {
                let id = r.get_u64()?;
                let retry_after_ms = r.get_u32()?;
                Frame::Overload(Overload { id, retry_after_ms })
            }
            TAG_ERROR => Frame::Error(r.get_str()?),
            TAG_SHUTDOWN => Frame::Shutdown,
            other => return Err(CodecError::new(format!("unknown frame tag {other}"))),
        };
        r.expect_end()?;
        Ok(frame)
    }

    /// Write this frame to `w` (one checksummed frame, one `write_all`).
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W, peer: &str) -> Result<(), NetError> {
        hpcutil::write_frame(w, self.tag(), &self.encode_payload()).map_err(|source| NetError::Io {
            peer: peer.to_string(),
            source,
        })
    }

    /// Read and decode one frame from `r`.
    ///
    /// Transport failures (including EOF) surface as [`NetError::Io`] /
    /// [`NetError::Frame`]; a structurally valid frame with a malformed
    /// payload is [`NetError::Protocol`].
    pub fn read_from<R: Read + ?Sized>(r: &mut R, peer: &str) -> Result<Frame, NetError> {
        let (tag, payload) = hpcutil::read_frame(r, MAX_FRAME_PAYLOAD).map_err(|e| match e {
            FrameError::Io(source) => NetError::Io {
                peer: peer.to_string(),
                source,
            },
            malformed => NetError::Frame {
                peer: peer.to_string(),
                source: malformed,
            },
        })?;
        Frame::decode(tag, &payload).map_err(|e| NetError::Protocol {
            peer: peer.to_string(),
            detail: e.to_string(),
        })
    }

    /// Encode this frame into a standalone byte buffer (header + payload +
    /// checksum), exactly as [`Frame::write_to`] puts it on the wire.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        frame_bytes(self.tag(), &self.encode_payload())
    }
}

/// Write a [`ScoreRequest`] for `query` to `w` (one-shot convenience over
/// [`score_request_bytes`]).
pub fn write_score_request<W: Write + ?Sized>(
    w: &mut W,
    id: u64,
    query: &PreparedSampleFeatures,
    peer: &str,
) -> Result<(), NetError> {
    write_raw_frame(w, &score_request_bytes(id, query), peer)
}

/// Encode a [`ScoreRequest`] into its complete wire bytes without cloning
/// the prepared query into an owned frame. The client hot path encodes
/// each query **once** and writes the same buffer to every worker.
pub fn score_request_bytes(id: u64, query: &PreparedSampleFeatures) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_u64(id);
    encode_prepared_features(&mut payload, query);
    frame_bytes(TAG_SCORE_REQUEST, payload.as_bytes())
}

/// Encode a [`ScoreBatchRequest`] into its complete wire bytes without
/// cloning the prepared queries into an owned frame. The gateway's batcher
/// packs the queries it coalesced straight from their shared handles.
pub fn score_batch_request_bytes<'a, I>(id: u64, queries: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a PreparedSampleFeatures>,
    I::IntoIter: ExactSizeIterator,
{
    let queries = queries.into_iter();
    let mut payload = ByteWriter::new();
    payload.put_u64(id);
    put_len_u32(&mut payload, queries.len());
    for query in queries {
        encode_prepared_features(&mut payload, query);
    }
    frame_bytes(TAG_SCORE_BATCH_REQUEST, payload.as_bytes())
}

/// How many dense partial rows fit in one [`ScoreBatchResponse`] frame for
/// a reference geometry of `n_columns` similarity columns.
///
/// Partial rows carry every owned `(column, score)` cell, zeros included
/// (the merge never has to guess coverage), so the response to a `rows`-
/// query batch costs `8 + 4 + rows * (4 + 12 * n_columns)` payload bytes —
/// it is the *response*, not the request, that hits [`MAX_FRAME_PAYLOAD`]
/// first on wide geometries. Every batch sender bounds its batch size with
/// this, and the gateway rejects client batches above it, so a batch can
/// never provoke an oversized response frame that the receiver would
/// reject as corrupt (poisoning the connection). Always at least 1: a
/// geometry whose single-row response overflows the frame budget cannot be
/// served at all, batched or not.
pub fn max_batch_rows_for(n_columns: usize) -> usize {
    const RESPONSE_HEADER: usize = 8 + 4; // id + row count
    let per_row = 4 + n_columns.saturating_mul(12); // cell count + cells
    ((MAX_FRAME_PAYLOAD - RESPONSE_HEADER) / per_row).max(1)
}

/// A reply frame a pipelined client connection can receive.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientReply {
    /// One partial row answering a [`ScoreRequest`].
    Score(ScoreResponse),
    /// Partial rows answering a [`ScoreBatchRequest`].
    Batch(ScoreBatchResponse),
    /// The request was shed by admission control ([`FEATURE_OVERLOAD`]).
    /// Correlated like any reply — the mux and every other in-flight
    /// request on the connection are unaffected.
    Overload(Overload),
}

/// Decode one verified frame arriving on a pipelined client connection into
/// `(correlation id, reply)` — the decode hook a [`hpcutil::Mux`] over a
/// worker connection uses. An [`Frame::Error`] from the worker is fatal on
/// the wire (the worker closes after sending it) and surfaces as
/// [`MuxErrorKind::Remote`]; any non-reply frame is [`MuxErrorKind::Decode`].
pub fn decode_client_reply(tag: u8, payload: &[u8]) -> Result<(u64, ClientReply), MuxError> {
    match Frame::decode(tag, payload) {
        Ok(Frame::ScoreResponse(response)) => Ok((response.id, ClientReply::Score(response))),
        Ok(Frame::ScoreBatchResponse(response)) => Ok((response.id, ClientReply::Batch(response))),
        Ok(Frame::Overload(overload)) => Ok((overload.id, ClientReply::Overload(overload))),
        Ok(Frame::Error(message)) => Err(MuxError::new(MuxErrorKind::Remote, message)),
        Ok(unexpected) => Err(MuxError::new(
            MuxErrorKind::Decode,
            format!("unexpected frame {unexpected:?} on a pipelined client connection"),
        )),
        Err(e) => Err(MuxError::new(MuxErrorKind::Decode, e.to_string())),
    }
}

/// Write pre-encoded frame bytes (as produced by [`score_request_bytes`] or
/// [`Frame::to_wire_bytes`]) to `w` in one `write_all`. Routed through
/// [`hpcutil::write_assembled_frame`] so the `frame.write` failpoint covers
/// encode-once-send-many paths exactly like per-frame writers.
pub fn write_raw_frame<W: Write + ?Sized>(
    w: &mut W,
    frame_bytes: &[u8],
    peer: &str,
) -> Result<(), NetError> {
    hpcutil::write_assembled_frame(w, frame_bytes).map_err(|source| NetError::Io {
        peer: peer.to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::SampleFeatures;
    use std::io::Cursor;

    fn sample_query() -> PreparedSampleFeatures {
        let features = SampleFeatures::extract(
            b"a deterministic little executable stand-in with some strings in it",
        );
        PreparedSampleFeatures::prepare(&features)
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = frame.to_wire_bytes();
        let mut cursor = Cursor::new(bytes);
        Frame::read_from(&mut cursor, "test").expect("frame round-trips")
    }

    #[test]
    fn every_frame_type_roundtrips() {
        let frames = [
            Frame::Hello(Hello {
                protocol: PROTOCOL_VERSION,
                features: FEATURE_SCORE_BATCH,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                n_classes: 7,
                n_columns: 21,
                classes: vec![0, 2, 4, 6],
                tenant: "acme-prod.v2".into(),
            }),
            Frame::Assign(Assign {
                classes: vec![1, 3, 5],
            }),
            Frame::ScoreRequest(Box::new(ScoreRequest {
                id: 42,
                query: sample_query(),
            })),
            Frame::ScoreResponse(ScoreResponse {
                id: 42,
                cells: vec![(0, 100.0), (3, 61.25), (7, 0.0)],
            }),
            Frame::ScoreBatchRequest(ScoreBatchRequest {
                id: 43,
                queries: vec![sample_query(), sample_query()],
            }),
            Frame::ScoreBatchResponse(ScoreBatchResponse {
                id: 43,
                rows: vec![vec![(0, 100.0), (3, 61.25)], vec![], vec![(7, 9.5)]],
            }),
            Frame::PushSlice(PushSlice {
                index: 2,
                total: 5,
                payload: b"a delta-varint slice blob".to_vec(),
            }),
            Frame::PushAck(PushAck {
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                classes_loaded: 4,
            }),
            Frame::PushDelta(PushDelta {
                index: 0,
                total: 3,
                payload: b"a checksummed delta container chunk".to_vec(),
            }),
            Frame::DeltaAck(DeltaAck {
                fingerprint: 0xFEED_FACE_0123_4567,
                classes_added: 2,
                classes_retired: 1,
            }),
            Frame::Overload(Overload {
                id: 77,
                retry_after_ms: 1500,
            }),
            Frame::Error("reference set mismatch".into()),
            Frame::Shutdown,
        ];
        for frame in &frames {
            assert_eq!(&roundtrip(frame), frame);
        }
    }

    #[test]
    fn push_slice_rejects_an_out_of_sequence_index() {
        // index >= total can never appear in a valid sequence; the decoder
        // rejects it before the payload blob is even looked at.
        let mut payload = ByteWriter::new();
        payload.put_u32(5); // index
        payload.put_u32(5); // total
        payload.put_bytes(b"ignored");
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, TAG_PUSH_SLICE, payload.as_bytes()).unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn push_delta_rejects_an_out_of_sequence_index() {
        let mut payload = ByteWriter::new();
        payload.put_u32(3); // index
        payload.put_u32(3); // total
        payload.put_bytes(b"ignored");
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, TAG_PUSH_DELTA, payload.as_bytes()).unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn tenant_ids_validate_on_decode() {
        assert!(valid_tenant(DEFAULT_TENANT));
        assert!(valid_tenant("acme-prod.v2"));
        assert!(valid_tenant("A_1"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant("sneaky/../path"));
        assert!(!valid_tenant(&"x".repeat(MAX_TENANT_LEN + 1)));

        // A structurally valid Hello frame carrying a malformed tenant is
        // a protocol error, and the report names (a clipped view of) it.
        for bad in ["", "has space", &"x".repeat(400) as &str] {
            let mut payload = ByteWriter::new();
            payload.put_u32(PROTOCOL_VERSION);
            payload.put_u32(0); // features
            payload.put_u64(7); // fingerprint
            payload.put_usize(1); // n_classes
            payload.put_usize(3); // n_columns
            payload.put_usize(1); // class-list length
            payload.put_usize(0); // class 0
            payload.put_str(bad);
            let mut bytes = Vec::new();
            hpcutil::write_frame(&mut bytes, TAG_HELLO, payload.as_bytes()).unwrap();
            let result = Frame::read_from(&mut Cursor::new(bytes), "test");
            match result {
                Err(NetError::Protocol { detail, .. }) => {
                    assert!(detail.contains("malformed tenant"), "got {detail:?}");
                    assert!(detail.len() < 300, "report echoes the whole hostile id");
                }
                other => panic!("tenant {bad:?} must be a protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn score_request_write_helper_matches_owned_frame() {
        let query = sample_query();
        let mut via_helper = Vec::new();
        write_score_request(&mut via_helper, 9, &query, "test").unwrap();
        let owned = Frame::ScoreRequest(Box::new(ScoreRequest { id: 9, query }));
        assert_eq!(via_helper, owned.to_wire_bytes());
    }

    #[test]
    fn hello_rejects_out_of_range_and_duplicate_classes() {
        let hello = |classes: Vec<usize>| {
            Frame::Hello(Hello {
                protocol: PROTOCOL_VERSION,
                features: 0,
                fingerprint: 1,
                n_classes: 3,
                n_columns: 9,
                classes,
                tenant: DEFAULT_TENANT.into(),
            })
        };
        // Out of range: class 3 with n_classes = 3.
        let bytes = hello(vec![0, 3]).to_wire_bytes();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
        // Duplicate.
        let bytes = hello(vec![1, 1]).to_wire_bytes();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
        // Unsorted (the partition-ownership check binary-searches this).
        let bytes = hello(vec![2, 1]).to_wire_bytes();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn hostile_class_counts_fail_without_allocating() {
        // A Hello claiming 2^60 classes and a matching huge class-list
        // length must be rejected from the byte budget, not attempted.
        let mut payload = ByteWriter::new();
        payload.put_u32(PROTOCOL_VERSION);
        payload.put_u32(0); // features
        payload.put_u64(7); // fingerprint
        payload.put_usize(1 << 60); // n_classes
        payload.put_usize(3 << 60); // n_columns
        payload.put_usize(1 << 59); // class-list length
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, TAG_HELLO, payload.as_bytes()).unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn batch_request_helper_matches_owned_frame() {
        let queries = vec![sample_query(), sample_query(), sample_query()];
        let via_helper = score_batch_request_bytes(11, queries.iter());
        let owned = Frame::ScoreBatchRequest(ScoreBatchRequest { id: 11, queries });
        assert_eq!(via_helper, owned.to_wire_bytes());
    }

    #[test]
    fn feature_bits_negotiate_batch_support() {
        let mut hello = Hello {
            protocol: PROTOCOL_VERSION,
            features: FEATURE_SCORE_BATCH,
            fingerprint: 1,
            n_classes: 2,
            n_columns: 6,
            classes: vec![0, 1],
            tenant: DEFAULT_TENANT.into(),
        };
        assert!(hello.supports(FEATURE_SCORE_BATCH));
        hello.features = 0;
        assert!(!hello.supports(FEATURE_SCORE_BATCH));
        // Unknown future bits do not imply batch support.
        hello.features = 1 << 7;
        assert!(!hello.supports(FEATURE_SCORE_BATCH));
    }

    #[test]
    fn client_reply_decoding_routes_by_id_and_rejects_non_replies() {
        let score = Frame::ScoreResponse(ScoreResponse {
            id: 5,
            cells: vec![(1, 42.0)],
        });
        let bytes = score.to_wire_bytes();
        let (id, reply) = decode_client_reply(bytes[0], &bytes[5..bytes.len() - 8]).unwrap();
        assert_eq!(id, 5);
        assert!(matches!(reply, ClientReply::Score(r) if r.cells == vec![(1, 42.0)]));

        let batch = Frame::ScoreBatchResponse(ScoreBatchResponse {
            id: 9,
            rows: vec![vec![(0, 1.0)]],
        });
        let bytes = batch.to_wire_bytes();
        let (id, reply) = decode_client_reply(bytes[0], &bytes[5..bytes.len() - 8]).unwrap();
        assert_eq!(id, 9);
        assert!(matches!(reply, ClientReply::Batch(_)));

        // An overload rejection routes by id like any reply — it must NOT
        // poison the mux the way an Error frame does.
        let shed = Frame::Overload(Overload {
            id: 12,
            retry_after_ms: 250,
        });
        let bytes = shed.to_wire_bytes();
        let (id, reply) = decode_client_reply(bytes[0], &bytes[5..bytes.len() - 8]).unwrap();
        assert_eq!(id, 12);
        assert!(matches!(
            reply,
            ClientReply::Overload(o) if o.retry_after_ms == 250
        ));

        // A worker error frame is fatal and surfaces as Remote.
        let bytes = Frame::Error("shard on fire".into()).to_wire_bytes();
        let err = decode_client_reply(bytes[0], &bytes[5..bytes.len() - 8]).unwrap_err();
        assert_eq!(err.kind, MuxErrorKind::Remote);
        assert!(err.detail.contains("shard on fire"));

        // A frame that is not a reply at all is a decode failure.
        let bytes = Frame::Shutdown.to_wire_bytes();
        let err = decode_client_reply(bytes[0], &bytes[5..bytes.len() - 8]).unwrap_err();
        assert_eq!(err.kind, MuxErrorKind::Decode);
    }

    #[test]
    fn hostile_batch_counts_fail_without_allocating() {
        // A batch request claiming 2^31 queries in a tiny payload.
        let mut payload = ByteWriter::new();
        payload.put_u64(1); // id
        payload.put_u32(u32::MAX); // query count
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, TAG_SCORE_BATCH_REQUEST, payload.as_bytes()).unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));

        // A batch response claiming 2^31 rows in a tiny payload.
        let mut payload = ByteWriter::new();
        payload.put_u64(1); // id
        payload.put_u32(u32::MAX); // row count
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, TAG_SCORE_BATCH_RESPONSE, payload.as_bytes()).unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn batch_row_budget_keeps_responses_under_the_frame_limit() {
        for n_columns in [1usize, 21, 21_800, 40_000, 1_000_000] {
            let rows = max_batch_rows_for(n_columns);
            assert!(rows >= 1, "budget must allow at least one row");
            let payload = 12 + rows * (4 + 12 * n_columns);
            assert!(
                payload <= MAX_FRAME_PAYLOAD,
                "{rows} dense rows of {n_columns} columns need {payload} bytes"
            );
            // The budget is tight: one more row would not fit.
            let payload = 12 + (rows + 1) * (4 + 12 * n_columns);
            assert!(
                payload > MAX_FRAME_PAYLOAD || rows == usize::MAX,
                "budget for {n_columns} columns leaves a row on the table"
            );
        }
        // A geometry wide enough that the old fixed 64-query batches would
        // overflow the response frame is now budgeted below 64.
        assert!(max_batch_rows_for(30_000) < 64);

        // An actually encoded response at the budget stays under the frame
        // payload limit.
        let n_columns = 200_000usize;
        let rows = max_batch_rows_for(n_columns);
        let dense_row: Vec<(u32, f64)> = (0..n_columns as u32).map(|c| (c, 0.5)).collect();
        let frame = Frame::ScoreBatchResponse(ScoreBatchResponse {
            id: 1,
            rows: vec![dense_row; rows],
        });
        let wire_bytes = frame.to_wire_bytes();
        // 5 bytes of header + payload + 8 bytes of checksum.
        assert!(wire_bytes.len() - 13 <= MAX_FRAME_PAYLOAD);
        assert!(matches!(
            roundtrip(&frame),
            Frame::ScoreBatchResponse(r) if r.rows.len() == rows
        ));
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let bytes = Frame::Error("will be cut short".into()).to_wire_bytes();
        for cut in 0..bytes.len() {
            let result = Frame::read_from(&mut Cursor::new(&bytes[..cut]), "test");
            assert!(
                matches!(result, Err(NetError::Io { .. })),
                "cut at {cut} must be a transport error"
            );
        }
    }

    #[test]
    fn corrupted_payload_is_a_framing_error() {
        let bytes = Frame::ScoreResponse(ScoreResponse {
            id: 7,
            cells: vec![(1, 50.0)],
        })
        .to_wire_bytes();
        let mut bad = bytes.clone();
        let mid = 5 + (bad.len() - 13) / 2; // somewhere inside the payload
        bad[mid] ^= 0x40;
        let result = Frame::read_from(&mut Cursor::new(bad), "test");
        assert!(matches!(result, Err(NetError::Frame { .. })));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_protocol_errors() {
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, 99, b"").unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));

        // A Shutdown frame with an unexpected payload is rejected.
        let mut bytes = Vec::new();
        hpcutil::write_frame(&mut bytes, 6, b"junk").unwrap();
        let result = Frame::read_from(&mut Cursor::new(bytes), "test");
        assert!(matches!(result, Err(NetError::Protocol { .. })));
    }
}
