//! The serving side of the shard protocol.
//!
//! A [`ShardWorker`] owns a reference set (typically the one inside a
//! classifier artifact) and answers [`ScoreRequest`](wire::ScoreRequest)s
//! for a subset of its classes, scoring through the same
//! block-size-bucketed index as
//! [`IndexedBackend`](crate::backend::IndexedBackend) — which is what makes
//! the remote path byte-identical to the in-process ones. The `fhc-shardd`
//! binary wraps a worker in an accept loop; tests drive
//! [`ShardWorker::serve_connection`] directly over in-process streams.

use crate::artifact::ArtifactDelta;
use crate::features::PreparedSampleFeatures;
use crate::shardnet::wire::{
    self, DeltaAck, Frame, Hello, PushAck, ScoreBatchResponse, ScoreResponse,
};
use crate::shardnet::{NetError, Transport, IO_TIMEOUT};
use crate::similarity::ReferenceSet;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::{Arc, RwLock};

/// How long an accepted connection may sit idle (no complete frame
/// arriving) before the worker closes it quietly. Lives in
/// [`deadlines`](crate::shardnet::deadlines) with the rest of the serving
/// deadline hierarchy; re-exported here because it is the *worker's*
/// accept-loop deadline. A dead or hung client —
/// a machine that vanished without an RST, a process wedged mid-request —
/// can therefore pin a serving thread for at most this long, instead of
/// forever. Generous on purpose: clients hold persistent connections that
/// legitimately idle between batches. Closing one is safe because the
/// mux-driven clients (`RemoteBackend`, the gateway's shard connections)
/// **re-dial a closed connection on their next query** (see
/// `RemoteWorker::submit`), so the reap costs at most the queries that
/// were in flight — it never wedges a client — and the deadline only
/// needs to beat "forever", not a round trip.
pub use crate::shardnet::deadlines::IDLE_TIMEOUT;

/// Upper bound on the slice count one [`wire::PushSlice`] sequence may
/// declare. Each slice payload is already capped by
/// [`wire::MAX_FRAME_PAYLOAD`]; bounding the count keeps a hostile client
/// from declaring a `u32::MAX`-slice push and growing the worker's
/// reassembly buffer without limit. Real pushes carry one slice per class,
/// so this is far above any reachable artifact.
pub const MAX_PUSH_SLICES: usize = 4096;

/// One shard-serving worker: a reference set plus the class partition it
/// scores.
#[derive(Debug, Clone)]
pub struct ShardWorker {
    reference: Arc<ReferenceSet>,
    classes: Vec<usize>,
    /// The reference set's fingerprint, computed once at construction —
    /// it is a full walk of every reference hash, far too expensive to
    /// recompute per handshake.
    fingerprint: u64,
    /// For a worker bootstrapped from pushed slices
    /// ([`ShardWorker::from_pushed`]): the classes actually populated with
    /// reference samples. An `Assign` outside this set is rejected — a
    /// sparse worker silently scoring an absent class would return
    /// all-zero cells instead of real similarities. `None` for
    /// artifact-loaded workers, where every class is scoreable.
    available: Option<Vec<usize>>,
}

impl ShardWorker {
    /// A worker scoring `classes` (sorted and validated against the
    /// reference set) of `reference`.
    pub fn new(reference: Arc<ReferenceSet>, classes: Vec<usize>) -> Result<Self, NetError> {
        let classes = validate_classes(&reference, classes)?;
        let fingerprint = reference.fingerprint();
        Ok(Self {
            reference,
            classes,
            fingerprint,
            available: None,
        })
    }

    /// A worker scoring *every* class of `reference` (the natural start
    /// state for a worker whose partition will be assigned over the wire).
    pub fn all_classes(reference: Arc<ReferenceSet>) -> Self {
        let classes = (0..reference.n_classes()).collect();
        let fingerprint = reference.fingerprint();
        Self {
            reference,
            classes,
            fingerprint,
            available: None,
        }
    }

    /// A worker serving a *sparse* reference set reassembled from pushed
    /// slices ([`ReferenceSet::from_slices`]): it scores exactly the
    /// populated classes and advertises `declared_fingerprint` — the
    /// fingerprint of the full set the slices were cut from, which is what
    /// clients validate against. (A sparse set's own fingerprint walk
    /// would differ, because the unpushed classes are empty.)
    pub fn from_pushed(reference: Arc<ReferenceSet>, declared_fingerprint: u64) -> Self {
        let classes: Vec<usize> = (0..reference.n_classes())
            .filter(|&class| !reference.prepared_class_features(class).is_empty())
            .collect();
        Self {
            reference,
            classes: classes.clone(),
            fingerprint: declared_fingerprint,
            available: Some(classes),
        }
    }

    /// The reference set this worker scores against.
    pub fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// The classes this worker scores (its default partition; a connection
    /// can narrow it with an `Assign` frame without affecting others).
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Range-check an `Assign`ed class list and, for a pushed worker,
    /// reject classes whose slices were never pushed (see
    /// [`ShardWorker::from_pushed`]).
    fn validate_assignment(&self, classes: Vec<usize>) -> Result<Vec<usize>, NetError> {
        let narrowed = validate_classes(&self.reference, classes)?;
        if let Some(available) = &self.available {
            if let Some(&missing) = narrowed
                .iter()
                .find(|c| available.binary_search(c).is_err())
            {
                return Err(NetError::Partition(format!(
                    "class {missing} was not pushed to this worker: \
                     push its slice before assigning it"
                )));
            }
        }
        Ok(narrowed)
    }

    /// The handshake advertising `classes` as the served partition. Workers
    /// built from this crate always advertise batch scoring.
    fn hello_for(&self, classes: &[usize]) -> Hello {
        Hello {
            protocol: wire::PROTOCOL_VERSION,
            features: wire::FEATURE_SCORE_BATCH,
            fingerprint: self.fingerprint,
            n_classes: self.reference.n_classes(),
            n_columns: self.reference.n_columns(),
            classes: classes.to_vec(),
            tenant: wire::DEFAULT_TENANT.to_string(),
        }
    }

    /// The partial max-score row of `query` over `classes`: one
    /// `(column, score)` cell per `(view, class)`, scored through the
    /// prepared block-size-bucketed index with the cell's running maximum
    /// threaded down as an early-exit score budget — the same pruned
    /// primitive as the in-process backends, so remote partial rows stay
    /// byte-identical to local ones.
    pub fn partial_row(
        &self,
        classes: &[usize],
        query: &PreparedSampleFeatures,
    ) -> Vec<(u32, f64)> {
        self.reference
            .partial_row_cells(classes, query)
            .into_iter()
            // fhc-lint: allow(no_panic) -- a column index needs n_classes * kinds > u32::MAX to overflow, far beyond any loadable reference set; truncating instead would corrupt rows silently
            .map(|(column, score)| (u32::try_from(column).expect("column index fits u32"), score))
            .collect()
    }

    /// Serve one connection until the client says goodbye (a `Shutdown`
    /// frame or a clean EOF): send the handshake, then answer score
    /// requests. See [`ShardWorker::serve_requests`].
    pub fn serve_connection(&self, stream: impl Transport, peer: &str) -> Result<(), NetError> {
        self.serve_requests(stream, peer, None)
    }

    /// [`ShardWorker::serve_connection`] with an optional request budget:
    /// after `limit` answered requests the worker drops the connection
    /// *without* a goodbye — exactly what a crashed worker looks like from
    /// the client side. Tests use this to exercise degraded mode
    /// deterministically.
    pub fn serve_requests(
        &self,
        mut stream: impl Transport,
        peer: &str,
        limit: Option<u64>,
    ) -> Result<(), NetError> {
        let mut classes = self.classes.clone();
        Frame::Hello(self.hello_for(&classes)).write_to(&mut stream, peer)?;
        let mut served = 0u64;
        loop {
            if limit.is_some_and(|max| served >= max) {
                // Simulated crash: vanish mid-conversation.
                return Ok(());
            }
            match Frame::read_from(&mut stream, peer) {
                Ok(Frame::ScoreRequest(request)) => {
                    let cells = self.partial_row(&classes, &request.query);
                    Frame::ScoreResponse(ScoreResponse {
                        id: request.id,
                        cells,
                    })
                    .write_to(&mut stream, peer)?;
                    served += 1;
                }
                Ok(Frame::ScoreBatchRequest(batch)) => {
                    let rows = batch
                        .queries
                        .iter()
                        .map(|query| self.partial_row(&classes, query))
                        .collect();
                    Frame::ScoreBatchResponse(ScoreBatchResponse { id: batch.id, rows })
                        .write_to(&mut stream, peer)?;
                    served += 1;
                }
                Ok(Frame::Assign(assign)) => match self.validate_assignment(assign.classes) {
                    Ok(narrowed) => {
                        classes = narrowed;
                        Frame::Hello(self.hello_for(&classes)).write_to(&mut stream, peer)?;
                    }
                    Err(e) => {
                        let _ = Frame::Error(e.to_string()).write_to(&mut stream, peer);
                        return Err(e);
                    }
                },
                Ok(Frame::Shutdown) => return Ok(()),
                Ok(unexpected) => {
                    let detail = format!("unexpected frame {unexpected:?} from client");
                    let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                    return Err(NetError::Protocol {
                        peer: peer.to_string(),
                        detail,
                    });
                }
                // A clean EOF between frames is a client hangup, not an error.
                Err(NetError::Io { ref source, .. })
                    if source.kind() == std::io::ErrorKind::UnexpectedEof =>
                {
                    return Ok(());
                }
                // The idle deadline fired (see [`IDLE_TIMEOUT`]): the client
                // is likely gone — close quietly, without an `Error` frame
                // that nobody would read.
                Err(NetError::Io { ref source, .. })
                    if matches!(
                        source.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(());
                }
                Err(e) => {
                    let _ = Frame::Error(e.to_string()).write_to(&mut stream, peer);
                    return Err(e);
                }
            }
        }
    }
}

/// One tenant's worker slot: the swappable [`ShardWorker`] serving a
/// single reference set, shared across connections through an `RwLock`.
///
/// A completed push (or delta patch) builds a fresh worker and swaps it
/// in: connections accepted afterwards serve the new set, while
/// connections already mid-conversation keep their `Arc` to the old one —
/// a rolling upgrade, caught on reconnect by the fingerprint handshake.
/// The serving loop lives on [`TenantHost`], which routes each connection
/// to the slot of the tenant it selected.
#[derive(Debug)]
pub struct WorkerHost {
    slot: RwLock<Option<Arc<ShardWorker>>>,
}

/// A partially received push: the declared slice count and the payloads
/// accepted so far, in order.
struct PushBuffer {
    total: u32,
    slices: Vec<Vec<u8>>,
}

impl WorkerHost {
    /// A host serving `initial` — `None` starts diskless, answering
    /// handshakes with fingerprint `0` and no classes until a push seeds
    /// it.
    pub fn new(initial: Option<ShardWorker>) -> Self {
        Self {
            slot: RwLock::new(initial.map(Arc::new)),
        }
    }

    /// The currently installed worker, if any.
    pub fn worker(&self) -> Option<Arc<ShardWorker>> {
        self.slot.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Swap `worker` into the slot, returning the shared handle.
    fn install(&self, worker: ShardWorker) -> Arc<ShardWorker> {
        let worker = Arc::new(worker);
        *self.slot.write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&worker));
        worker
    }
}

/// The daemon-wide tenant registry behind `fhc-shardd`: many [`WorkerHost`]
/// slots keyed by tenant name, serving one shared protocol loop. A
/// connection starts bound to [`wire::DEFAULT_TENANT`] (or the first
/// registered tenant) and may re-bind by sending a client [`Hello`] naming
/// another tenant; every subsequent score, assign, push, and delta frame
/// routes to the bound tenant's slot. An unknown tenant is a typed
/// [`NetError::Tenant`] naming the offender — never a silent empty row.
///
/// Beyond routing, the host extends [`ShardWorker::serve_connection`] with
/// the push extensions: [`wire::PushSlice`] reassembly (a worker process
/// can start **diskless** and be seeded over the wire) and
/// [`wire::PushDelta`] patching (an installed set evolves in place through
/// an [`ArtifactDelta`] instead of a full re-push).
#[derive(Debug, Default)]
pub struct TenantHost {
    tenants: BTreeMap<String, Arc<WorkerHost>>,
}

/// A partially received delta push: the declared chunk count and the
/// chunks accepted so far, in order (same shape as a slice push).
struct DeltaBuffer {
    total: u32,
    chunks: Vec<Vec<u8>>,
}

impl TenantHost {
    /// An empty registry; populate it with [`TenantHost::register`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The single-tenant host every pre-tenant deployment ran: `initial`
    /// (or a diskless slot) registered under [`wire::DEFAULT_TENANT`].
    pub fn single(initial: Option<ShardWorker>) -> Self {
        let mut host = Self::new();
        host.register(wire::DEFAULT_TENANT, initial)
            // fhc-lint: allow(no_panic) -- DEFAULT_TENANT is a valid constant id and the registry is empty, so registration cannot fail
            .expect("registering the default tenant in an empty registry");
        host
    }

    /// Register tenant `name` serving `initial` (`None` starts the slot
    /// diskless, awaiting a seed push). Rejects malformed tenant ids and
    /// duplicates as typed errors.
    pub fn register(&mut self, name: &str, initial: Option<ShardWorker>) -> Result<(), NetError> {
        if !wire::valid_tenant(name) {
            return Err(NetError::Tenant {
                peer: "local registry".to_string(),
                tenant: name.to_string(),
                detail: format!(
                    "malformed tenant id (want 1..={} characters of [A-Za-z0-9._-])",
                    wire::MAX_TENANT_LEN
                ),
            });
        }
        if self.tenants.contains_key(name) {
            return Err(NetError::Tenant {
                peer: "local registry".to_string(),
                tenant: name.to_string(),
                detail: "tenant registered twice".to_string(),
            });
        }
        self.tenants
            .insert(name.to_string(), Arc::new(WorkerHost::new(initial)));
        Ok(())
    }

    /// The slot serving `tenant`, if registered.
    pub fn slot(&self, tenant: &str) -> Option<&Arc<WorkerHost>> {
        self.tenants.get(tenant)
    }

    /// The registered tenant names, sorted.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    /// The binding a fresh connection starts with: the default tenant if
    /// registered, otherwise the first tenant in name order.
    pub fn initial_slot(&self) -> Option<(String, Arc<WorkerHost>)> {
        if let Some(slot) = self.tenants.get(wire::DEFAULT_TENANT) {
            return Some((wire::DEFAULT_TENANT.to_string(), Arc::clone(slot)));
        }
        self.tenants
            .iter()
            .next()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
    }

    /// The sorted tenant list, comma-joined (rejection messages and the
    /// daemon's announce line).
    pub fn served_list(&self) -> String {
        self.tenants
            .keys()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The handshake for a connection bound to `tenant`, currently serving
    /// `worker` over `classes`. Host connections additionally advertise
    /// [`wire::FEATURE_REFERENCE_PUSH`] and [`wire::FEATURE_DELTA_PUSH`];
    /// an empty slot advertises fingerprint `0` and no classes, which is
    /// how a fleet client recognizes a worker awaiting its seed push.
    fn hello(worker: Option<&ShardWorker>, classes: &[usize], tenant: &str) -> Hello {
        let mut hello = match worker {
            Some(worker) => worker.hello_for(classes),
            None => Hello {
                protocol: wire::PROTOCOL_VERSION,
                features: wire::FEATURE_SCORE_BATCH,
                fingerprint: 0,
                n_classes: 0,
                n_columns: 0,
                classes: Vec::new(),
                tenant: String::new(),
            },
        };
        hello.features |= wire::FEATURE_REFERENCE_PUSH | wire::FEATURE_DELTA_PUSH;
        hello.tenant = tenant.to_string();
        hello
    }

    /// Serve one connection until the client says goodbye: the
    /// [`ShardWorker::serve_connection`] protocol extended with tenant
    /// selection, [`wire::PushSlice`] reassembly, and [`wire::PushDelta`]
    /// patching. Score and `Assign` frames on an unseeded slot are
    /// protocol errors (push first); a completed push answers with
    /// [`wire::PushAck`] (a completed delta with [`wire::DeltaAck`])
    /// followed by a refreshed handshake, the same confirmation shape as
    /// an `Assign`.
    pub fn serve_connection(&self, mut stream: impl Transport, peer: &str) -> Result<(), NetError> {
        let Some((mut tenant, mut slot)) = self.initial_slot() else {
            let detail = "no tenants registered on this host".to_string();
            let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
            return Err(NetError::Protocol {
                peer: peer.to_string(),
                detail,
            });
        };
        let mut worker = slot.worker();
        let mut classes: Vec<usize> = worker.as_ref().map_or_else(Vec::new, |w| w.classes.clone());
        Frame::Hello(Self::hello(worker.as_deref(), &classes, &tenant))
            .write_to(&mut stream, peer)?;
        let mut push: Option<PushBuffer> = None;
        let mut delta: Option<DeltaBuffer> = None;
        loop {
            match Frame::read_from(&mut stream, peer) {
                Ok(Frame::Hello(request)) => {
                    // A client-sent Hello selects a tenant: re-bind the
                    // connection to that slot and confirm with its own
                    // greeting. In-progress pushes die with the binding.
                    match self.tenants.get(&request.tenant) {
                        Some(selected) => {
                            tenant = request.tenant;
                            slot = Arc::clone(selected);
                            worker = slot.worker();
                            classes = worker.as_ref().map_or_else(Vec::new, |w| w.classes.clone());
                            push = None;
                            delta = None;
                            Frame::Hello(Self::hello(worker.as_deref(), &classes, &tenant))
                                .write_to(&mut stream, peer)?;
                        }
                        None => {
                            let detail = format!(
                                "unknown tenant {:?}: this endpoint serves [{}]",
                                request.tenant,
                                self.served_list()
                            );
                            let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                            return Err(NetError::Tenant {
                                peer: peer.to_string(),
                                tenant: request.tenant,
                                detail,
                            });
                        }
                    }
                }
                Ok(Frame::PushSlice(slice)) => {
                    let buffer = push.get_or_insert_with(|| PushBuffer {
                        total: slice.total,
                        slices: Vec::new(),
                    });
                    if slice.total != buffer.total
                        || slice.index as usize != buffer.slices.len()
                        || buffer.total as usize > MAX_PUSH_SLICES
                    {
                        let detail = format!(
                            "push slice {}/{} arrived out of order (have {} of {}, cap {})",
                            slice.index,
                            slice.total,
                            buffer.slices.len(),
                            buffer.total,
                            MAX_PUSH_SLICES
                        );
                        let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                        return Err(NetError::Protocol {
                            peer: peer.to_string(),
                            detail,
                        });
                    }
                    buffer.slices.push(slice.payload);
                    let complete = if buffer.slices.len() == buffer.total as usize {
                        push.take()
                    } else {
                        None
                    };
                    if let Some(complete) = complete {
                        match ReferenceSet::from_slices(&complete.slices) {
                            Ok((set, declared)) => {
                                let fresh =
                                    slot.install(ShardWorker::from_pushed(Arc::new(set), declared));
                                classes = fresh.classes.clone();
                                // The count cannot exceed MAX_PUSH_SLICES, but
                                // saturate rather than panic the serving thread:
                                // a saturated ack fails the pusher's validation.
                                Frame::PushAck(PushAck {
                                    fingerprint: declared,
                                    classes_loaded: u32::try_from(classes.len())
                                        .unwrap_or(u32::MAX),
                                })
                                .write_to(&mut stream, peer)?;
                                Frame::Hello(Self::hello(Some(&fresh), &classes, &tenant))
                                    .write_to(&mut stream, peer)?;
                                worker = Some(fresh);
                            }
                            Err(e) => {
                                let detail = format!("pushed slices did not assemble: {e}");
                                let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                                return Err(NetError::Protocol {
                                    peer: peer.to_string(),
                                    detail,
                                });
                            }
                        }
                    }
                }
                Ok(Frame::PushDelta(chunk)) => {
                    let buffer = delta.get_or_insert_with(|| DeltaBuffer {
                        total: chunk.total,
                        chunks: Vec::new(),
                    });
                    if chunk.total != buffer.total
                        || chunk.index as usize != buffer.chunks.len()
                        || buffer.total as usize > MAX_PUSH_SLICES
                    {
                        let detail = format!(
                            "push delta chunk {}/{} arrived out of order (have {} of {}, cap {})",
                            chunk.index,
                            chunk.total,
                            buffer.chunks.len(),
                            buffer.total,
                            MAX_PUSH_SLICES
                        );
                        let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                        return Err(NetError::Protocol {
                            peer: peer.to_string(),
                            detail,
                        });
                    }
                    buffer.chunks.push(chunk.payload);
                    let complete = if buffer.chunks.len() == buffer.total as usize {
                        delta.take()
                    } else {
                        None
                    };
                    if let Some(complete) = complete {
                        let Some(base) = worker.as_deref() else {
                            let detail =
                                "no reference set installed: seed this tenant with a full \
                                 push before applying deltas"
                                    .to_string();
                            let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                            return Err(NetError::Protocol {
                                peer: peer.to_string(),
                                detail,
                            });
                        };
                        let encoded: Vec<u8> = complete.chunks.concat();
                        let applied = ArtifactDelta::decode(&encoded).and_then(|parsed| {
                            parsed
                                .apply(base.reference(), base.fingerprint)
                                .map(|(set, target)| (parsed, set, target))
                        });
                        match applied {
                            Ok((parsed, set, target)) => {
                                let fresh =
                                    slot.install(ShardWorker::from_pushed(Arc::new(set), target));
                                classes = fresh.classes.clone();
                                Frame::DeltaAck(DeltaAck {
                                    fingerprint: target,
                                    classes_added: u32::try_from(parsed.add_slices.len())
                                        .unwrap_or(u32::MAX),
                                    classes_retired: u32::try_from(parsed.retire_classes.len())
                                        .unwrap_or(u32::MAX),
                                })
                                .write_to(&mut stream, peer)?;
                                Frame::Hello(Self::hello(Some(&fresh), &classes, &tenant))
                                    .write_to(&mut stream, peer)?;
                                worker = Some(fresh);
                            }
                            Err(e) => {
                                // A stale base fingerprint lands here: the
                                // message names both fingerprints, and the
                                // installed set is left untouched.
                                let detail = format!("pushed delta did not apply: {e}");
                                let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                                return Err(NetError::Protocol {
                                    peer: peer.to_string(),
                                    detail,
                                });
                            }
                        }
                    }
                }
                Ok(Frame::ScoreRequest(request)) => match &worker {
                    Some(w) => {
                        let cells = w.partial_row(&classes, &request.query);
                        Frame::ScoreResponse(ScoreResponse {
                            id: request.id,
                            cells,
                        })
                        .write_to(&mut stream, peer)?;
                    }
                    None => return refuse_unseeded(&mut stream, peer),
                },
                Ok(Frame::ScoreBatchRequest(batch)) => match &worker {
                    Some(w) => {
                        let rows = batch
                            .queries
                            .iter()
                            .map(|query| w.partial_row(&classes, query))
                            .collect();
                        Frame::ScoreBatchResponse(ScoreBatchResponse { id: batch.id, rows })
                            .write_to(&mut stream, peer)?;
                    }
                    None => return refuse_unseeded(&mut stream, peer),
                },
                Ok(Frame::Assign(assign)) => match &worker {
                    Some(w) => match w.validate_assignment(assign.classes) {
                        Ok(narrowed) => {
                            classes = narrowed;
                            Frame::Hello(Self::hello(Some(w), &classes, &tenant))
                                .write_to(&mut stream, peer)?;
                        }
                        Err(e) => {
                            let _ = Frame::Error(e.to_string()).write_to(&mut stream, peer);
                            return Err(e);
                        }
                    },
                    None => return refuse_unseeded(&mut stream, peer),
                },
                Ok(Frame::Shutdown) => return Ok(()),
                Ok(unexpected) => {
                    let detail = format!("unexpected frame {unexpected:?} from client");
                    let _ = Frame::Error(detail.clone()).write_to(&mut stream, peer);
                    return Err(NetError::Protocol {
                        peer: peer.to_string(),
                        detail,
                    });
                }
                // Same quiet-close rules as `ShardWorker::serve_requests`.
                Err(NetError::Io { ref source, .. })
                    if source.kind() == std::io::ErrorKind::UnexpectedEof =>
                {
                    return Ok(());
                }
                Err(NetError::Io { ref source, .. })
                    if matches!(
                        source.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(());
                }
                Err(e) => {
                    let _ = Frame::Error(e.to_string()).write_to(&mut stream, peer);
                    return Err(e);
                }
            }
        }
    }
}

/// Answer a scoring or assignment frame on an unseeded slot with a typed
/// refusal.
fn refuse_unseeded(stream: &mut (impl Transport + ?Sized), peer: &str) -> Result<(), NetError> {
    let detail = "no reference set installed: push one before scoring".to_string();
    let _ = Frame::Error(detail.clone()).write_to(stream, peer);
    Err(NetError::Protocol {
        peer: peer.to_string(),
        detail,
    })
}

/// Sort, dedup, and range-check a class list against `reference`.
fn validate_classes(
    reference: &ReferenceSet,
    mut classes: Vec<usize>,
) -> Result<Vec<usize>, NetError> {
    classes.sort_unstable();
    classes.dedup();
    if let Some(&bad) = classes.iter().find(|&&c| c >= reference.n_classes()) {
        return Err(NetError::Partition(format!(
            "class id {bad} out of range: the reference set has {} classes",
            reference.n_classes()
        )));
    }
    Ok(classes)
}

/// Accept-loop over a TCP listener: one thread per connection, errors
/// logged to stderr, reads bounded by [`IDLE_TIMEOUT`] and writes by
/// [`IO_TIMEOUT`]. Returns when the listener itself fails (e.g. it was
/// closed out from under the loop).
pub fn serve_tcp(worker: Arc<ShardWorker>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "tcp client".to_string());
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                // A client that stops reading must not pin this serving
                // thread in write_all forever.
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let worker = Arc::clone(&worker);
                super::spawn_detached("shardd-conn", move || {
                    if let Err(e) = worker.serve_connection(stream, &peer) {
                        eprintln!("fhc-shardd: connection with {peer} failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

/// Accept-loop over a Unix-domain listener; see [`serve_tcp`].
pub fn serve_unix(worker: Arc<ShardWorker>, listener: UnixListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let worker = Arc::clone(&worker);
                super::spawn_detached("shardd-conn", move || {
                    if let Err(e) = worker.serve_connection(stream, "unix client") {
                        eprintln!("fhc-shardd: unix connection failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

/// [`serve_tcp`] for a push-capable, multi-tenant [`TenantHost`]: same
/// per-connection threading and timeouts, with the tenant registry shared
/// across connections.
pub fn serve_host_tcp(host: Arc<TenantHost>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "tcp client".to_string());
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let host = Arc::clone(&host);
                super::spawn_detached("shardd-conn", move || {
                    if let Err(e) = host.serve_connection(stream, &peer) {
                        eprintln!("fhc-shardd: connection with {peer} failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

/// [`serve_unix`] for a push-capable [`TenantHost`]; see [`serve_host_tcp`].
pub fn serve_host_unix(host: Arc<TenantHost>, listener: UnixListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let host = Arc::clone(&host);
                super::spawn_detached("shardd-conn", move || {
                    if let Err(e) = host.serve_connection(stream, "unix client") {
                        eprintln!("fhc-shardd: unix connection failed: {e}");
                    }
                });
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendConfig, SimilarityBackend};
    use crate::features::{FeatureKind, SampleFeatures};
    use std::io::{Read, Write};

    fn reference() -> Arc<ReferenceSet> {
        let train = vec![
            SampleFeatures::extract(b"the velvet assembler executable body one"),
            SampleFeatures::extract(b"the velvet assembler executable body two"),
            SampleFeatures::extract(b"an openmalaria simulation binary payload"),
        ];
        Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1],
            &FeatureKind::ALL,
        ))
    }

    #[test]
    fn new_validates_and_normalizes_classes() {
        let rs = reference();
        let worker = ShardWorker::new(rs.clone(), vec![1, 0, 1]).unwrap();
        assert_eq!(worker.classes(), &[0, 1]);
        assert!(ShardWorker::new(rs.clone(), vec![2]).is_err());
        let all = ShardWorker::all_classes(rs);
        assert_eq!(all.classes(), &[0, 1]);
    }

    #[test]
    fn partial_rows_union_to_the_indexed_row() {
        let rs = reference();
        let indexed = BackendConfig::Indexed.build(rs.clone());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler executable body three",
        ));
        let expected = indexed.feature_vector_prepared(&query);

        let worker = ShardWorker::all_classes(rs.clone());
        let mut merged = vec![0.0f64; rs.n_columns()];
        for classes in [vec![0usize], vec![1usize]] {
            for (column, score) in worker.partial_row(&classes, &query) {
                let column = column as usize;
                merged[column] = merged[column].max(score);
            }
        }
        assert_eq!(merged, expected);
    }

    /// An in-memory duplex "socket": each side reads what the other wrote.
    fn duplex() -> (PipeEnd, PipeEnd) {
        let (a_to_b, b_from_a) = std::sync::mpsc::channel::<Vec<u8>>();
        let (b_to_a, a_from_b) = std::sync::mpsc::channel::<Vec<u8>>();
        (
            PipeEnd {
                tx: a_to_b,
                rx: a_from_b,
                pending: Vec::new(),
            },
            PipeEnd {
                tx: b_to_a,
                rx: b_from_a,
                pending: Vec::new(),
            },
        )
    }

    struct PipeEnd {
        tx: std::sync::mpsc::Sender<Vec<u8>>,
        rx: std::sync::mpsc::Receiver<Vec<u8>>,
        pending: Vec<u8>,
    }

    impl Read for PipeEnd {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pending.is_empty() {
                match self.rx.recv() {
                    Ok(bytes) => self.pending = bytes,
                    Err(_) => return Ok(0), // peer hung up: EOF
                }
            }
            let n = buf.len().min(self.pending.len());
            buf[..n].copy_from_slice(&self.pending[..n]);
            self.pending.drain(..n);
            Ok(n)
        }
    }

    impl Write for PipeEnd {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.tx
                .send(buf.to_vec())
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))?;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_connection_answers_requests_and_honors_shutdown() {
        let rs = reference();
        let worker = ShardWorker::all_classes(rs.clone());
        let (client_end, worker_end) = duplex();
        let server = std::thread::spawn(move || worker.serve_connection(worker_end, "test"));

        let mut client = client_end;
        let hello = match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::Hello(h) => h,
            other => panic!("expected Hello, got {other:?}"),
        };
        assert_eq!(hello.protocol, wire::PROTOCOL_VERSION);
        assert_eq!(hello.fingerprint, rs.fingerprint());
        assert_eq!(hello.classes, vec![0, 1]);

        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler executable body four",
        ));
        wire::write_score_request(&mut client, 77, &query, "worker").unwrap();
        match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::ScoreResponse(response) => {
                assert_eq!(response.id, 77);
                assert_eq!(response.cells.len(), rs.n_columns());
            }
            other => panic!("expected ScoreResponse, got {other:?}"),
        }

        Frame::Shutdown.write_to(&mut client, "worker").unwrap();
        server.join().unwrap().expect("clean shutdown");
    }

    #[test]
    fn assign_narrows_the_partition_for_this_connection() {
        let rs = reference();
        let worker = ShardWorker::all_classes(rs.clone());
        let (client_end, worker_end) = duplex();
        let server = std::thread::spawn(move || worker.serve_connection(worker_end, "test"));

        let mut client = client_end;
        let _hello = Frame::read_from(&mut client, "worker").unwrap();
        Frame::Assign(wire::Assign { classes: vec![1] })
            .write_to(&mut client, "worker")
            .unwrap();
        match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::Hello(h) => assert_eq!(h.classes, vec![1]),
            other => panic!("expected refreshed Hello, got {other:?}"),
        }
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"probe bytes"));
        wire::write_score_request(&mut client, 1, &query, "worker").unwrap();
        match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::ScoreResponse(response) => {
                // Only class 1's columns now.
                assert_eq!(response.cells.len(), rs.kinds().len());
                for &(column, _) in &response.cells {
                    assert_eq!(column as usize % rs.n_classes(), 1);
                }
            }
            other => panic!("expected ScoreResponse, got {other:?}"),
        }
        drop(client); // EOF: worker returns cleanly
        server.join().unwrap().expect("clean EOF");
    }

    #[test]
    fn batch_requests_score_per_query_identically_to_single_requests() {
        let rs = reference();
        let worker = ShardWorker::all_classes(rs.clone());
        let (client_end, worker_end) = duplex();
        let server = std::thread::spawn(move || worker.serve_connection(worker_end, "test"));

        let mut client = client_end;
        let hello = match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::Hello(h) => h,
            other => panic!("expected Hello, got {other:?}"),
        };
        assert!(
            hello.supports(wire::FEATURE_SCORE_BATCH),
            "an in-repo worker must advertise batch scoring"
        );

        let queries: Vec<PreparedSampleFeatures> = (0..3)
            .map(|i| {
                PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                    format!("batched probe body number {i}").as_bytes(),
                ))
            })
            .collect();

        // Score one by one first.
        let mut single_rows = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            wire::write_score_request(&mut client, i as u64, query, "worker").unwrap();
            match Frame::read_from(&mut client, "worker").unwrap() {
                Frame::ScoreResponse(response) => single_rows.push(response.cells),
                other => panic!("expected ScoreResponse, got {other:?}"),
            }
        }

        // Then as one batch frame: same rows, same order, same bytes.
        wire::write_raw_frame(
            &mut client,
            &wire::score_batch_request_bytes(99, queries.iter()),
            "worker",
        )
        .unwrap();
        match Frame::read_from(&mut client, "worker").unwrap() {
            Frame::ScoreBatchResponse(response) => {
                assert_eq!(response.id, 99);
                assert_eq!(response.rows, single_rows);
            }
            other => panic!("expected ScoreBatchResponse, got {other:?}"),
        }

        Frame::Shutdown.write_to(&mut client, "worker").unwrap();
        server.join().unwrap().expect("clean shutdown");
    }

    /// A stream whose reads time out immediately — what an accepted socket
    /// looks like once [`IDLE_TIMEOUT`] fires with no client bytes.
    struct IdleStream {
        wrote: Vec<u8>,
    }

    impl Read for IdleStream {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "idle deadline",
            ))
        }
    }

    impl Write for IdleStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.wrote.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn an_idle_read_deadline_closes_the_connection_quietly() {
        let worker = ShardWorker::all_classes(reference());
        let result = worker.serve_connection(IdleStream { wrote: Vec::new() }, "idle client");
        assert!(
            result.is_ok(),
            "an idle timeout is a quiet close, got {result:?}"
        );
    }

    #[test]
    fn request_limit_simulates_a_crash() {
        let rs = reference();
        let worker = ShardWorker::all_classes(rs);
        let (client_end, worker_end) = duplex();
        let server = std::thread::spawn(move || worker.serve_requests(worker_end, "test", Some(1)));

        let mut client = client_end;
        let _hello = Frame::read_from(&mut client, "worker").unwrap();
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(b"probe"));
        wire::write_score_request(&mut client, 1, &query, "worker").unwrap();
        assert!(matches!(
            Frame::read_from(&mut client, "worker").unwrap(),
            Frame::ScoreResponse(_)
        ));
        server.join().unwrap().expect("limit reached cleanly");
        // The second request hits a dead connection.
        let _ = wire::write_score_request(&mut client, 2, &query, "worker");
        assert!(matches!(
            Frame::read_from(&mut client, "worker"),
            Err(NetError::Io { .. })
        ));
    }
}
