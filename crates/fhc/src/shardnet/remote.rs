//! The client side of the shard protocol: a [`SimilarityBackend`] that fans
//! out over the network.
//!
//! [`RemoteBackend`] holds one persistent connection per shard worker. A
//! query is written to every worker as a [`ScoreRequest`](wire::ScoreRequest)
//! and the partial rows are max-merged — the exact contract of
//! [`ShardedBackend`](crate::backend::ShardedBackend), with the scoped
//! threads replaced by sockets. Outside a batch worker the fan-out runs on
//! the persistent [`hpcutil::WorkerPool`] so every socket is
//! written (and every worker computes) concurrently; inside a batch worker
//! the connections are driven serially, because the batch is already the
//! parallel axis.
//!
//! Every connection is validated at handshake time: protocol version,
//! reference-set fingerprint, and column geometry must match, and the
//! ensemble of worker partitions must cover every class exactly once. A
//! worker that dies mid-batch yields a typed [`NetError`] through the
//! `try_*` APIs — never a wrong or partial row.

use crate::backend::{round_robin_partition, SimilarityBackend};
use crate::error::FhcError;
use crate::features::PreparedSampleFeatures;
use crate::shardnet::wire::{self, Frame, Hello};
use crate::shardnet::{Endpoint, NetError, Transport};
use crate::similarity::ReferenceSet;
use hpcutil::WorkerPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One connected shard worker.
struct RemoteWorker {
    endpoint: Endpoint,
    /// The classes this worker scores (sorted), per its final handshake.
    classes: Vec<usize>,
    conn: Mutex<Box<dyn Transport>>,
}

impl std::fmt::Debug for RemoteWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorker")
            .field("endpoint", &self.endpoint)
            .field("classes", &self.classes)
            .finish_non_exhaustive()
    }
}

/// A [`SimilarityBackend`] that fans `max_scores_into` out to shard workers
/// over persistent connections and max-merges their partial rows.
///
/// Built with [`RemoteBackend::connect`] (or through
/// [`BackendConfig::Remote`](crate::backend::BackendConfig::Remote)).
/// Cloning shares the connections and the fan-out pool. Remote scoring can
/// fail at any time (workers are separate processes); use the `try_*`
/// serving APIs — the infallible [`SimilarityBackend::max_scores_into`]
/// panics on transport errors.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    reference: Arc<ReferenceSet>,
    workers: Vec<Arc<RemoteWorker>>,
    /// Fan-out pool, present when there is more than one worker.
    pool: Option<Arc<WorkerPool>>,
    next_id: Arc<AtomicU64>,
}

impl RemoteBackend {
    /// Connect to shard workers at `endpoints` and validate that together
    /// they serve exactly `reference`.
    ///
    /// Each worker's handshake must match the local protocol version,
    /// reference fingerprint, and column geometry. If the advertised class
    /// partitions already cover every class exactly once they are used as
    /// is; if instead every worker advertises *all* classes (the default
    /// state of an unpartitioned `fhc-shardd`), the classes are dealt
    /// round-robin across the workers — the same partition rule as
    /// [`ShardedBackend`](crate::backend::ShardedBackend) — and assigned
    /// over the wire. Anything else is a [`NetError::Partition`].
    pub fn connect(reference: Arc<ReferenceSet>, endpoints: &[Endpoint]) -> Result<Self, NetError> {
        if endpoints.is_empty() {
            return Err(NetError::Partition(
                "a remote backend needs at least one worker endpoint".into(),
            ));
        }
        // One full reference walk, reused for every worker's handshake.
        let ours = reference.fingerprint();
        let mut workers = Vec::with_capacity(endpoints.len());
        for endpoint in endpoints {
            let peer = endpoint.to_string();
            let mut conn = endpoint.connect().map_err(|source| NetError::Io {
                peer: peer.clone(),
                source,
            })?;
            let hello = read_hello(&mut conn, &peer)?;
            validate_hello(&reference, ours, &peer, &hello)?;
            workers.push((endpoint.clone(), conn, hello));
        }

        let n_classes = reference.n_classes();
        if !is_exact_cover(
            n_classes,
            workers.iter().map(|(_, _, h)| h.classes.as_slice()),
        ) {
            let all: Vec<usize> = (0..n_classes).collect();
            if workers.iter().all(|(_, _, h)| h.classes == all) {
                // Unpartitioned workers: deal the classes ourselves.
                let partition = round_robin_partition(n_classes, workers.len());
                for ((endpoint, conn, hello), classes) in workers.iter_mut().zip(partition) {
                    let peer = endpoint.to_string();
                    *hello = assign_partition(conn, &peer, classes)?;
                }
            } else {
                return Err(NetError::Partition(format!(
                    "worker partitions must cover every class exactly once \
                     (got {:?} over {n_classes} classes); either start each \
                     fhc-shardd with a disjoint --classes/--shard partition \
                     or start them all unpartitioned",
                    workers
                        .iter()
                        .map(|(_, _, h)| h.classes.clone())
                        .collect::<Vec<_>>()
                )));
            }
        }

        let n_workers = workers.len();
        Ok(Self {
            reference,
            workers: workers
                .into_iter()
                .map(|(endpoint, conn, hello)| {
                    Arc::new(RemoteWorker {
                        endpoint,
                        classes: hello.classes,
                        conn: Mutex::new(conn),
                    })
                })
                .collect(),
            pool: (n_workers > 1).then(|| Arc::new(WorkerPool::new(n_workers))),
            next_id: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of connected workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The classes one worker scores.
    pub fn worker_classes(&self, worker: usize) -> &[usize] {
        &self.workers[worker].classes
    }

    /// The endpoints this backend is connected to, in worker order.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        self.workers.iter().map(|w| w.endpoint.clone()).collect()
    }

    /// Send one pre-encoded score request to one worker and await its
    /// partial row. The request bytes are encoded once per query by
    /// [`RemoteBackend::fan_out`] and shared across workers.
    fn request(
        worker: &RemoteWorker,
        id: u64,
        request_bytes: &[u8],
    ) -> Result<Vec<(u32, f64)>, NetError> {
        let peer = worker.endpoint.to_string();
        let mut conn = worker.conn.lock().map_err(|_| NetError::WorkerLost {
            peer: peer.clone(),
            detail: "connection poisoned by an earlier panic".into(),
        })?;
        wire::write_raw_frame(&mut **conn, request_bytes, &peer).map_err(lost(&peer))?;
        match Frame::read_from(&mut **conn, &peer).map_err(lost(&peer))? {
            Frame::ScoreResponse(response) => {
                if response.id != id {
                    return Err(NetError::Protocol {
                        peer,
                        detail: format!(
                            "response id {} does not match request id {id}",
                            response.id
                        ),
                    });
                }
                Ok(response.cells)
            }
            Frame::Error(message) => Err(NetError::Remote { peer, message }),
            unexpected => Err(NetError::Protocol {
                peer,
                detail: format!("expected a score response, got {unexpected:?}"),
            }),
        }
    }

    /// Fan one query out to every worker and max-merge the partial rows
    /// into `out`. Any worker failure aborts the row with a typed error.
    fn fan_out(&self, query: &PreparedSampleFeatures, out: &mut [f64]) -> Result<(), NetError> {
        assert_eq!(out.len(), self.reference.n_columns(), "row width mismatch");
        out.fill(0.0);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // One encoding pass per query, shared by every worker — the frame
        // is identical for all of them.
        let request_bytes = Arc::new(wire::score_request_bytes(id, query));
        let partials: Vec<Result<Vec<(u32, f64)>, NetError>> = match &self.pool {
            // Inside a batch worker the batch is already the parallel axis;
            // drive the connections serially instead of contending for the
            // fan-out pool.
            Some(pool) if !hpcutil::in_parallel_worker() => {
                let workers = self.workers.clone();
                let request_bytes = Arc::clone(&request_bytes);
                pool.run_indexed(workers.len(), move |i| {
                    RemoteBackend::request(&workers[i], id, &request_bytes)
                })
            }
            _ => self
                .workers
                .iter()
                .map(|worker| RemoteBackend::request(worker, id, &request_bytes))
                .collect(),
        };
        let n_classes = self.reference.n_classes();
        for (worker, partial) in self.workers.iter().zip(partials) {
            for (column, score) in partial? {
                let column = column as usize;
                // A worker may only write the columns of classes it owns —
                // a buggy or malicious worker cannot corrupt other shards'
                // scores.
                if column >= out.len()
                    || worker.classes.binary_search(&(column % n_classes)).is_err()
                {
                    return Err(NetError::Protocol {
                        peer: worker.endpoint.to_string(),
                        detail: format!("response cell for column {column} outside its partition"),
                    });
                }
                out[column] = out[column].max(score);
            }
        }
        Ok(())
    }
}

/// Shorthand: map a transport-level error on `peer` to [`NetError::WorkerLost`].
fn lost(peer: &str) -> impl Fn(NetError) -> NetError + '_ {
    move |e| match e {
        NetError::Io { source, .. } => NetError::WorkerLost {
            peer: peer.to_string(),
            detail: source.to_string(),
        },
        NetError::Frame { source, .. } => NetError::WorkerLost {
            peer: peer.to_string(),
            detail: source.to_string(),
        },
        other => other,
    }
}

fn read_hello(conn: &mut Box<dyn Transport>, peer: &str) -> Result<Hello, NetError> {
    match Frame::read_from(&mut **conn, peer)? {
        Frame::Hello(hello) => Ok(hello),
        Frame::Error(message) => Err(NetError::Remote {
            peer: peer.to_string(),
            message,
        }),
        unexpected => Err(NetError::Protocol {
            peer: peer.to_string(),
            detail: format!("expected a handshake, got {unexpected:?}"),
        }),
    }
}

fn validate_hello(
    reference: &ReferenceSet,
    ours: u64,
    peer: &str,
    hello: &Hello,
) -> Result<(), NetError> {
    if hello.protocol != wire::PROTOCOL_VERSION {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "protocol version mismatch: we speak {}, worker speaks {}",
                wire::PROTOCOL_VERSION,
                hello.protocol
            ),
        });
    }
    if hello.fingerprint != ours {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "reference-set fingerprint mismatch: ours {ours:#018x}, \
                 worker's {:#018x} — it serves a different artifact",
                hello.fingerprint
            ),
        });
    }
    if hello.n_classes != reference.n_classes() || hello.n_columns != reference.n_columns() {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "geometry mismatch: ours {}x{}, worker's {}x{}",
                reference.n_classes(),
                reference.n_columns(),
                hello.n_classes,
                hello.n_columns
            ),
        });
    }
    Ok(())
}

/// Whether the class lists cover `0..n_classes` exactly once each.
fn is_exact_cover<'a>(n_classes: usize, lists: impl Iterator<Item = &'a [usize]>) -> bool {
    let mut seen = vec![false; n_classes];
    for list in lists {
        for &class in list {
            if class >= n_classes || std::mem::replace(&mut seen[class], true) {
                return false;
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Send an `Assign` and return the worker's refreshed handshake.
fn assign_partition(
    conn: &mut Box<dyn Transport>,
    peer: &str,
    classes: Vec<usize>,
) -> Result<Hello, NetError> {
    Frame::Assign(wire::Assign {
        classes: classes.clone(),
    })
    .write_to(&mut **conn, peer)?;
    let hello = read_hello(conn, peer)?;
    if hello.classes != classes {
        return Err(NetError::Protocol {
            peer: peer.to_string(),
            detail: format!(
                "worker confirmed partition {:?} instead of the assigned {classes:?}",
                hello.classes
            ),
        });
    }
    Ok(hello)
}

impl SimilarityBackend for RemoteBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// Infallible scoring is impossible over a network; this panics on any
    /// transport failure. Serve remote topologies through the `try_*` APIs
    /// ([`SimilarityBackend::try_max_scores_into`],
    /// [`TrainedClassifier::try_classify`](crate::serving::TrainedClassifier::try_classify)).
    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        self.fan_out(query, out).unwrap_or_else(|e| {
            panic!("remote similarity backend failed (use the try_* serving APIs): {e}")
        });
    }

    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.fan_out(query, out).map_err(FhcError::Net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cover_detection() {
        let a: &[usize] = &[0, 2];
        let b: &[usize] = &[1];
        assert!(is_exact_cover(3, [a, b].into_iter()));
        // Missing class.
        assert!(!is_exact_cover(3, [a].into_iter()));
        // Duplicate class.
        let c: &[usize] = &[2, 1];
        assert!(!is_exact_cover(3, [a, c].into_iter()));
        // Out of range.
        let d: &[usize] = &[3];
        assert!(!is_exact_cover(3, [d].into_iter()));
        // Zero classes: trivially covered by nothing.
        assert!(is_exact_cover(0, std::iter::empty()));
    }
}
