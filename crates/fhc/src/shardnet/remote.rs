//! The client side of the shard protocol: a [`SimilarityBackend`] that fans
//! out over the network.
//!
//! [`RemoteBackend`] holds one persistent connection per shard worker, each
//! driven by a [`hpcutil::Mux`]: a dedicated writer thread and reader
//! thread per socket, with responses correlated back to callers by the
//! request id every `ScoreRequest` carries. A query is *submitted* to every
//! worker (a channel send each — the mux writer threads put the frames on
//! the wire concurrently and coalesce adjacent writes), then the partial
//! rows are awaited and max-merged — the exact contract of
//! [`ShardedBackend`](crate::backend::ShardedBackend), with the scoped
//! threads replaced by sockets.
//!
//! Because no caller ever holds a connection lock across a round trip, any
//! number of batch threads **pipeline** over the same N sockets: while one
//! query's responses are in flight, the next queries' requests are already
//! on the wire. This is what makes one connection per worker enough for a
//! whole process, and it needs no fan-out thread pool — submitting is
//! cheap, and the mux threads do the blocking.
//!
//! Every connection is validated at handshake time: protocol version,
//! reference-set fingerprint, and column geometry must match, and the
//! ensemble of worker partitions must cover every class exactly once. A
//! worker that dies mid-batch yields a typed [`NetError`] through the
//! `try_*` APIs — never a wrong or partial row — and the failed connection
//! is re-dialed (handshake re-validated, partition re-assigned) on the
//! next query, so an idle-reaped or restarted worker heals instead of
//! wedging the backend.

use crate::backend::{round_robin_partition, SimilarityBackend};
use crate::error::FhcError;
use crate::features::PreparedSampleFeatures;
use crate::shardnet::wire::{self, ClientReply, Frame, Hello};
use crate::shardnet::{Endpoint, NetError, SplitConn, IO_TIMEOUT, MUX_POLL_INTERVAL};
use crate::similarity::ReferenceSet;
use hpcutil::{Mux, MuxError, MuxErrorKind, MuxOptions, PendingReply};
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The handshake values a reconnected worker must reproduce; see
/// [`RemoteWorker::submit`]. Captured at first connect, after validation
/// against the local reference set.
#[derive(Debug, Clone)]
pub(crate) struct HandshakeExpect {
    pub(crate) fingerprint: u64,
    pub(crate) n_classes: usize,
    pub(crate) n_columns: usize,
    /// The tenant this connection must be served by. `None` means the
    /// client did not select one and expects the wire default
    /// ([`wire::DEFAULT_TENANT`]); `Some` is selected over the wire after
    /// each (re)connect and verified against every greeting.
    pub(crate) tenant: Option<String>,
}

impl HandshakeExpect {
    /// The tenant name every greeting on this connection must carry.
    pub(crate) fn tenant_name(&self) -> &str {
        self.tenant.as_deref().unwrap_or(wire::DEFAULT_TENANT)
    }
}

/// One connected shard worker: its validated partition and the multiplexer
/// pipelining requests over its socket. Shared with the gateway, which
/// wraps these in per-shard batcher threads.
pub(crate) struct RemoteWorker {
    pub(crate) endpoint: Endpoint,
    /// The classes this worker scores (sorted), per its final handshake.
    pub(crate) classes: Vec<usize>,
    /// Whether the worker advertised [`wire::FEATURE_SCORE_BATCH`].
    pub(crate) supports_batch: bool,
    expect: HandshakeExpect,
    /// The live multiplexer, swapped for a fresh connection by
    /// [`RemoteWorker::submit`] once the current one is poisoned.
    mux: Mutex<Mux<ClientReply>>,
}

impl RemoteWorker {
    /// Queue one pre-encoded request frame on the worker's connection and
    /// register `id` for reply correlation.
    ///
    /// A mux failure is sticky, but the *worker* usually is not: its idle
    /// reaper closes quiet sockets after
    /// [`IDLE_TIMEOUT`](crate::shardnet::worker::IDLE_TIMEOUT), it may have
    /// restarted, a transient network fault may have reset the connection.
    /// So a poisoned connection is **re-dialed here, on the next query**:
    /// the endpoint is reconnected, the handshake re-validated against the
    /// values captured at first connect, and the worker's partition
    /// re-assigned if the fresh handshake does not already advertise it. A
    /// lost connection therefore costs at most the queries that were in
    /// flight on it — it never wedges the backend (or a gateway) into
    /// answering every future query with `WorkerLost`. If the re-dial
    /// itself fails, the submit falls through to the poisoned mux and the
    /// caller gets the original typed error; the query after that re-dials
    /// again.
    pub(crate) fn submit(&self, id: u64, frame_bytes: Vec<u8>) -> PendingReply<ClientReply> {
        let mut mux = self.mux.lock().unwrap_or_else(|p| p.into_inner());
        if mux.is_poisoned() {
            if let Ok(fresh) = self.redial() {
                *mux = fresh;
            }
        }
        mux.submit(id, frame_bytes)
    }

    /// Whether the current connection has failed (the next
    /// [`RemoteWorker::submit`] will re-dial).
    #[cfg(test)]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.mux
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_poisoned()
    }

    /// Dial a fresh connection to this worker's endpoint and bring it to
    /// the exact state of the original one: validated handshake, same
    /// partition, mux spawned.
    fn redial(&self) -> Result<Mux<ClientReply>, NetError> {
        let peer = self.endpoint.to_string();
        // Failpoint: a redial that fails leaves the poisoned mux in place,
        // so the caller gets the original typed error and the *next* query
        // tries again — the reconnect gate the chaos soak leans on.
        crate::shardnet::inject("remote.redial", &peer)?;
        let mut conn = self
            .endpoint
            .connect_split()
            .map_err(|source| NetError::Io {
                peer: peer.clone(),
                source,
            })?;
        let mut hello = read_hello(conn.reader(), &peer)?;
        if let Some(tenant) = &self.expect.tenant {
            if hello.tenant != *tenant {
                hello = select_tenant(&mut conn, &peer, tenant)?;
            }
        }
        validate_hello(&self.expect, &peer, &hello)?;
        if hello.classes != self.classes {
            hello = assign_partition(&mut conn, &peer, self.classes.clone())?;
        }
        if self.supports_batch && !hello.supports(wire::FEATURE_SCORE_BATCH) {
            return Err(NetError::Handshake {
                peer,
                detail: "reconnected worker no longer advertises batch scoring".into(),
            });
        }
        spawn_mux(conn, peer)
    }
}

/// Narrow a handshaken connection's read timeout to the mux's stall poll
/// and hand its halves to a freshly spawned multiplexer.
pub(crate) fn spawn_mux(conn: SplitConn, peer: String) -> Result<Mux<ClientReply>, NetError> {
    conn.set_read_timeout(Some(MUX_POLL_INTERVAL))
        .map_err(|source| NetError::Io {
            peer: peer.clone(),
            source,
        })?;
    let (reader, writer, closer) = conn.into_mux_parts();
    Mux::spawn(
        peer.clone(),
        reader,
        writer,
        closer,
        MuxOptions {
            max_payload: wire::MAX_FRAME_PAYLOAD,
            reply_deadline: Some(IO_TIMEOUT),
        },
        |tag, payload: Vec<u8>| wire::decode_client_reply(tag, &payload),
    )
    .map_err(|e| net_error_from_mux(&peer, e))
}

impl std::fmt::Debug for RemoteWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorker")
            .field("endpoint", &self.endpoint)
            .field("classes", &self.classes)
            .field("supports_batch", &self.supports_batch)
            .finish_non_exhaustive()
    }
}

/// Dial, handshake, and validate every endpoint, returning one mux-driven
/// [`RemoteWorker`] per connection. Shared by [`RemoteBackend::connect`]
/// and the gateway.
///
/// Each worker's handshake must match the local protocol version,
/// reference fingerprint, and column geometry. If the advertised class
/// partitions already cover every class exactly once they are used as is;
/// if instead every worker advertises *all* classes (the default state of
/// an unpartitioned `fhc-shardd`), the classes are dealt round-robin
/// across the workers — the same partition rule as
/// [`ShardedBackend`](crate::backend::ShardedBackend) — and assigned over
/// the wire. Anything else is a [`NetError::Partition`].
pub(crate) fn connect_workers(
    reference: &ReferenceSet,
    endpoints: &[Endpoint],
    tenant: Option<&str>,
) -> Result<Vec<RemoteWorker>, NetError> {
    if endpoints.is_empty() {
        return Err(NetError::Partition(
            "a remote backend needs at least one worker endpoint".into(),
        ));
    }
    // One full reference walk, reused for every worker's handshake (and
    // stored for re-validation on reconnect).
    let expect = HandshakeExpect {
        fingerprint: reference.fingerprint(),
        n_classes: reference.n_classes(),
        n_columns: reference.n_columns(),
        tenant: tenant.map(str::to_string),
    };
    let mut conns = Vec::with_capacity(endpoints.len());
    for endpoint in endpoints {
        let peer = endpoint.to_string();
        let mut conn = endpoint.connect_split().map_err(|source| NetError::Io {
            peer: peer.clone(),
            source,
        })?;
        let mut hello = read_hello(conn.reader(), &peer)?;
        if let Some(tenant) = tenant {
            if hello.tenant != tenant {
                hello = select_tenant(&mut conn, &peer, tenant)?;
            }
        }
        validate_hello(&expect, &peer, &hello)?;
        conns.push((endpoint.clone(), conn, hello));
    }

    let n_classes = reference.n_classes();
    if !is_exact_cover(
        n_classes,
        conns.iter().map(|(_, _, h)| h.classes.as_slice()),
    ) {
        let all: Vec<usize> = (0..n_classes).collect();
        if conns.iter().all(|(_, _, h)| h.classes == all) {
            // Unpartitioned workers: deal the classes ourselves.
            let partition = round_robin_partition(n_classes, conns.len());
            for ((endpoint, conn, hello), classes) in conns.iter_mut().zip(partition) {
                let peer = endpoint.to_string();
                *hello = assign_partition(conn, &peer, classes)?;
            }
        } else {
            return Err(NetError::Partition(format!(
                "worker partitions must cover every class exactly once \
                 (got {:?} over {n_classes} classes); either start each \
                 fhc-shardd with a disjoint --classes/--shard partition \
                 or start them all unpartitioned",
                conns
                    .iter()
                    .map(|(_, _, h)| h.classes.clone())
                    .collect::<Vec<_>>()
            )));
        }
    }

    conns
        .into_iter()
        .map(|(endpoint, conn, hello)| {
            let mux = spawn_mux(conn, endpoint.to_string())?;
            Ok(RemoteWorker {
                endpoint,
                supports_batch: hello.supports(wire::FEATURE_SCORE_BATCH),
                classes: hello.classes,
                expect: expect.clone(),
                mux: Mutex::new(mux),
            })
        })
        .collect()
}

/// A [`SimilarityBackend`] that fans `max_scores_into` out to shard workers
/// over persistent, pipelined connections and max-merges their partial
/// rows.
///
/// Built with [`RemoteBackend::connect`] (or through
/// [`BackendConfig::Remote`](crate::backend::BackendConfig::Remote)).
/// Cloning shares the connections. Remote scoring can fail at any time
/// (workers are separate processes); use the `try_*` serving APIs — the
/// infallible [`SimilarityBackend::max_scores_into`] panics on transport
/// errors.
#[derive(Debug, Clone)]
pub struct RemoteBackend {
    reference: Arc<ReferenceSet>,
    workers: Vec<Arc<RemoteWorker>>,
    next_id: Arc<AtomicU64>,
}

impl RemoteBackend {
    /// Connect to shard workers at `endpoints` and validate that together
    /// they serve exactly `reference` (see `connect_workers` for the
    /// handshake and partition rules).
    pub fn connect(reference: Arc<ReferenceSet>, endpoints: &[Endpoint]) -> Result<Self, NetError> {
        Self::connect_tenant(reference, endpoints, None)
    }

    /// [`RemoteBackend::connect`] bound to a specific tenant on each
    /// worker daemon: the tenant is selected over the wire after every
    /// (re)connect, and a worker greeting for any other tenant is a typed
    /// [`NetError::Tenant`].
    pub fn connect_tenant(
        reference: Arc<ReferenceSet>,
        endpoints: &[Endpoint],
        tenant: Option<&str>,
    ) -> Result<Self, NetError> {
        let workers = connect_workers(&reference, endpoints, tenant)?
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(Self {
            reference,
            workers,
            next_id: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of connected workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The classes one worker scores.
    pub fn worker_classes(&self, worker: usize) -> &[usize] {
        &self.workers[worker].classes
    }

    /// The endpoints this backend is connected to, in worker order.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        self.workers.iter().map(|w| w.endpoint.clone()).collect()
    }

    /// The tenant selected at connect time, or `None` for the default
    /// tenant. Every worker shares one handshake expectation, so the
    /// first worker's answer is the backend's.
    pub fn tenant(&self) -> Option<&str> {
        self.workers
            .first()
            .and_then(|w| w.expect.tenant.as_deref())
    }

    /// Fan one query out to every worker and max-merge the partial rows
    /// into `out`. Any worker failure aborts the row with a typed error.
    ///
    /// The fan-out is pipelined: the request is *submitted* to every
    /// worker's mux first (cheap channel sends; the sockets are written by
    /// the mux writer threads, concurrently), and only then are the replies
    /// awaited. Concurrent callers interleave freely on the same
    /// connections.
    fn fan_out(&self, query: &PreparedSampleFeatures, out: &mut [f64]) -> Result<(), NetError> {
        assert_eq!(out.len(), self.reference.n_columns(), "row width mismatch");
        out.fill(0.0);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // One encoding pass per query — the frame is identical for every
        // worker.
        let request_bytes = wire::score_request_bytes(id, query);
        let pending: Vec<_> = self
            .workers
            .iter()
            .map(|worker| {
                crate::shardnet::inject("remote.batch_send", &worker.endpoint.to_string())?;
                Ok(worker.submit(id, request_bytes.clone()))
            })
            .collect::<Result<_, NetError>>()?;
        // Await every reply before surfacing an error: each submitted
        // request either completes or fails on its own connection, and an
        // early return would abandon replies for no gain.
        let replies: Vec<Result<ClientReply, MuxError>> =
            pending.into_iter().map(|p| p.wait()).collect();

        let n_classes = self.reference.n_classes();
        for (worker, reply) in self.workers.iter().zip(replies) {
            let peer = worker.endpoint.to_string();
            let response = match reply.map_err(|e| net_error_from_mux(&peer, e))? {
                ClientReply::Score(response) => response,
                ClientReply::Overload(o) => {
                    return Err(NetError::Overload {
                        peer,
                        retry_after_ms: o.retry_after_ms,
                    });
                }
                ClientReply::Batch(_) => {
                    return Err(NetError::Protocol {
                        peer,
                        detail: "batch response answering a single-query request".into(),
                    });
                }
            };
            debug_assert_eq!(response.id, id, "mux correlates replies by id");
            merge_partial_row(&peer, &worker.classes, n_classes, response.cells, out)?;
        }
        Ok(())
    }

    /// Score a whole slice of prepared queries and return their dense,
    /// max-merged rows — the batch counterpart of
    /// [`try_max_scores_into`](SimilarityBackend::try_max_scores_into).
    ///
    /// This is the client side of the wire-level batching workers
    /// advertise via [`wire::FEATURE_SCORE_BATCH`]: the queries ride to
    /// each worker as [`wire::ScoreBatchRequest`] frames of up to 64
    /// queries, so the per-frame cost — syscalls, framing,
    /// thread wake-ups — is paid once per chunk instead of once per query,
    /// and each worker scores a chunk's rows back to back off a single
    /// read. A worker that did not advertise batch support is fed
    /// pipelined single-query frames instead; the rows are byte-identical
    /// either way.
    pub fn try_feature_rows_prepared(
        &self,
        queries: &[PreparedSampleFeatures],
    ) -> Result<Vec<Vec<f64>>, NetError> {
        let n_columns = self.reference.n_columns();
        let n_classes = self.reference.n_classes();
        // A worker serving every class (a gateway, or a lone unpartitioned
        // worker) answers with rows dense over all columns, so the chunk
        // size must keep even that worst-case response under the frame
        // budget.
        let client_batch = CLIENT_BATCH.min(wire::max_batch_rows_for(n_columns));
        let mut rows = vec![vec![0.0f64; n_columns]; queries.len()];
        for (chunk_index, chunk) in queries.chunks(client_batch).enumerate() {
            let out = &mut rows[chunk_index * client_batch..][..chunk.len()];
            // Submit to every worker before waiting on any reply — the
            // same pipelining rule as `fan_out`, with one frame per worker
            // per chunk on the batch path.
            let submitted: Vec<Submitted> = self
                .workers
                .iter()
                .map(|worker| {
                    crate::shardnet::inject("remote.batch_send", &worker.endpoint.to_string())?;
                    Ok(if worker.supports_batch {
                        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                        let frame = wire::score_batch_request_bytes(id, chunk);
                        Submitted::Batch(worker.submit(id, frame))
                    } else {
                        Submitted::Singles(
                            chunk
                                .iter()
                                .map(|query| {
                                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                                    worker.submit(id, wire::score_request_bytes(id, query))
                                })
                                .collect(),
                        )
                    })
                })
                .collect::<Result<_, NetError>>()?;
            // Await every reply before surfacing an error, as in
            // `fan_out`.
            let waited: Vec<Waited> = submitted
                .into_iter()
                .map(|s| match s {
                    Submitted::Batch(pending) => Waited::Batch(pending.wait()),
                    Submitted::Singles(pendings) => {
                        Waited::Singles(pendings.into_iter().map(|p| p.wait()).collect())
                    }
                })
                .collect();
            for (worker, waited) in self.workers.iter().zip(waited) {
                let peer = worker.endpoint.to_string();
                match waited {
                    Waited::Batch(reply) => {
                        let batch = match reply.map_err(|e| net_error_from_mux(&peer, e))? {
                            ClientReply::Batch(batch) => batch,
                            ClientReply::Overload(o) => {
                                return Err(NetError::Overload {
                                    peer,
                                    retry_after_ms: o.retry_after_ms,
                                });
                            }
                            ClientReply::Score(_) => {
                                return Err(NetError::Protocol {
                                    peer,
                                    detail: "single response answering a batch request".into(),
                                });
                            }
                        };
                        if batch.rows.len() != chunk.len() {
                            return Err(NetError::Protocol {
                                peer,
                                detail: format!(
                                    "batch response carries {} rows for {} queries",
                                    batch.rows.len(),
                                    chunk.len()
                                ),
                            });
                        }
                        for (cells, row) in batch.rows.into_iter().zip(out.iter_mut()) {
                            merge_partial_row(&peer, &worker.classes, n_classes, cells, row)?;
                        }
                    }
                    Waited::Singles(replies) => {
                        for (reply, row) in replies.into_iter().zip(out.iter_mut()) {
                            let response = match reply.map_err(|e| net_error_from_mux(&peer, e))? {
                                ClientReply::Score(response) => response,
                                ClientReply::Overload(o) => {
                                    return Err(NetError::Overload {
                                        peer,
                                        retry_after_ms: o.retry_after_ms,
                                    });
                                }
                                ClientReply::Batch(_) => {
                                    return Err(NetError::Protocol {
                                        peer,
                                        detail: "batch response answering a single-query \
                                                     request"
                                            .into(),
                                    });
                                }
                            };
                            merge_partial_row(
                                &peer,
                                &worker.classes,
                                n_classes,
                                response.cells,
                                row,
                            )?;
                        }
                    }
                }
            }
        }
        Ok(rows)
    }
}

/// How many queries ride in one client-side batch frame: enough to
/// amortize the per-frame cost over many rows, small enough to bound the
/// frame size and one lost frame's blast radius. Further clamped per
/// geometry by [`wire::max_batch_rows_for`] so the dense response can
/// never exceed [`wire::MAX_FRAME_PAYLOAD`].
pub(crate) const CLIENT_BATCH: usize = 64;

/// Per-worker in-flight state of one batch chunk.
enum Submitted {
    Batch(PendingReply<ClientReply>),
    Singles(Vec<PendingReply<ClientReply>>),
}

/// The awaited counterpart of [`Submitted`].
enum Waited {
    Batch(Result<ClientReply, MuxError>),
    Singles(Vec<Result<ClientReply, MuxError>>),
}

/// Max-merge one worker's partial `(column, score)` cells into a dense
/// row, rejecting any cell outside the worker's own partition — a buggy
/// or malicious worker cannot corrupt other shards' scores.
pub(crate) fn merge_partial_row(
    peer: &str,
    classes: &[usize],
    n_classes: usize,
    cells: Vec<(u32, f64)>,
    out: &mut [f64],
) -> Result<(), NetError> {
    for (column, score) in cells {
        let column = column as usize;
        if column >= out.len() || classes.binary_search(&(column % n_classes)).is_err() {
            return Err(NetError::Protocol {
                peer: peer.to_string(),
                detail: format!("response cell for column {column} outside its partition"),
            });
        }
        out[column] = out[column].max(score);
    }
    Ok(())
}

/// Map a [`MuxError`] on `peer` to the matching [`NetError`]: transport,
/// framing, stall, and closure failures all mean the worker (connection)
/// is lost; a relayed error frame and an undecodable reply keep their own
/// variants.
pub(crate) fn net_error_from_mux(peer: &str, e: MuxError) -> NetError {
    match e.kind {
        MuxErrorKind::Remote => NetError::Remote {
            peer: peer.to_string(),
            message: e.detail,
        },
        MuxErrorKind::Decode => NetError::Protocol {
            peer: peer.to_string(),
            detail: e.detail,
        },
        MuxErrorKind::Io | MuxErrorKind::Frame | MuxErrorKind::Stalled | MuxErrorKind::Closed => {
            NetError::WorkerLost {
                peer: peer.to_string(),
                detail: e.to_string(),
            }
        }
    }
}

pub(crate) fn read_hello(conn: &mut (dyn Read + Send), peer: &str) -> Result<Hello, NetError> {
    crate::shardnet::inject("remote.handshake", peer)?;
    match Frame::read_from(conn, peer)? {
        Frame::Hello(hello) => Ok(hello),
        Frame::Error(message) => Err(NetError::Remote {
            peer: peer.to_string(),
            message,
        }),
        unexpected => Err(NetError::Protocol {
            peer: peer.to_string(),
            detail: format!("expected a handshake, got {unexpected:?}"),
        }),
    }
}

pub(crate) fn validate_hello(
    expect: &HandshakeExpect,
    peer: &str,
    hello: &Hello,
) -> Result<(), NetError> {
    let tenant = expect.tenant_name();
    if hello.tenant != tenant {
        return Err(NetError::Tenant {
            peer: peer.to_string(),
            tenant: tenant.to_string(),
            detail: format!(
                "worker answered for tenant {:?} instead of the selected {tenant:?}",
                hello.tenant
            ),
        });
    }
    if hello.protocol != wire::PROTOCOL_VERSION {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "protocol version mismatch: we speak {}, worker speaks {}",
                wire::PROTOCOL_VERSION,
                hello.protocol
            ),
        });
    }
    if hello.fingerprint != expect.fingerprint {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "reference-set fingerprint mismatch: ours {:#018x}, \
                 worker's {:#018x} — it serves a different artifact",
                expect.fingerprint, hello.fingerprint
            ),
        });
    }
    if hello.n_classes != expect.n_classes || hello.n_columns != expect.n_columns {
        return Err(NetError::Handshake {
            peer: peer.to_string(),
            detail: format!(
                "geometry mismatch: ours {}x{}, worker's {}x{}",
                expect.n_classes, expect.n_columns, hello.n_classes, hello.n_columns
            ),
        });
    }
    Ok(())
}

/// Whether the class lists cover `0..n_classes` exactly once each.
pub(crate) fn is_exact_cover<'a>(
    n_classes: usize,
    lists: impl Iterator<Item = &'a [usize]>,
) -> bool {
    let mut seen = vec![false; n_classes];
    for list in lists {
        for &class in list {
            if class >= n_classes || std::mem::replace(&mut seen[class], true) {
                return false;
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Select `tenant` on a freshly handshaken connection: send a client
/// [`Hello`] naming it and return the tenant's own greeting. A worker
/// rejection (an `Error` frame — the unknown-tenant path) and a greeting
/// for any other tenant both surface as typed [`NetError::Tenant`]s.
pub(crate) fn select_tenant(
    conn: &mut SplitConn,
    peer: &str,
    tenant: &str,
) -> Result<Hello, NetError> {
    Frame::Hello(Hello {
        protocol: wire::PROTOCOL_VERSION,
        features: 0,
        fingerprint: 0,
        n_classes: 0,
        n_columns: 0,
        classes: Vec::new(),
        tenant: tenant.to_string(),
    })
    .write_to(conn.writer(), peer)?;
    match Frame::read_from(conn.reader(), peer)? {
        Frame::Hello(hello) => {
            if hello.tenant != tenant {
                return Err(NetError::Tenant {
                    peer: peer.to_string(),
                    tenant: tenant.to_string(),
                    detail: format!(
                        "worker confirmed tenant {:?} instead of the selected {tenant:?}",
                        hello.tenant
                    ),
                });
            }
            Ok(hello)
        }
        Frame::Error(message) => Err(NetError::Tenant {
            peer: peer.to_string(),
            tenant: tenant.to_string(),
            detail: message,
        }),
        unexpected => Err(NetError::Protocol {
            peer: peer.to_string(),
            detail: format!("expected a tenant greeting, got {unexpected:?}"),
        }),
    }
}

/// Send an `Assign` and return the worker's refreshed handshake.
pub(crate) fn assign_partition(
    conn: &mut SplitConn,
    peer: &str,
    classes: Vec<usize>,
) -> Result<Hello, NetError> {
    Frame::Assign(wire::Assign {
        classes: classes.clone(),
    })
    .write_to(conn.writer(), peer)?;
    let hello = read_hello(conn.reader(), peer)?;
    if hello.classes != classes {
        return Err(NetError::Protocol {
            peer: peer.to_string(),
            detail: format!(
                "worker confirmed partition {:?} instead of the assigned {classes:?}",
                hello.classes
            ),
        });
    }
    Ok(hello)
}

impl SimilarityBackend for RemoteBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// Infallible scoring is impossible over a network; this panics on any
    /// transport failure. Serve remote topologies through the `try_*` APIs
    /// ([`SimilarityBackend::try_max_scores_into`],
    /// [`TrainedClassifier::try_classify`](crate::serving::TrainedClassifier::try_classify)).
    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        self.fan_out(query, out).unwrap_or_else(|e| {
            // fhc-lint: allow(no_panic) -- documented trait contract: the infallible API cannot express transport failure; remote serving goes through try_max_scores_into
            panic!("remote similarity backend failed (use the try_* serving APIs): {e}")
        });
    }

    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.fan_out(query, out).map_err(FhcError::Net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use crate::features::{FeatureKind, SampleFeatures};
    use crate::shardnet::worker::ShardWorker;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    #[test]
    fn a_dropped_worker_connection_is_redialed_on_a_later_query() {
        let train = vec![
            SampleFeatures::extract(b"the velvet assembler executable body one"),
            SampleFeatures::extract(b"the velvet assembler executable body two"),
            SampleFeatures::extract(b"an openmalaria simulation binary payload"),
        ];
        let rs = Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1],
            &FeatureKind::ALL,
        ));

        // Every accepted connection answers exactly one request, then drops
        // without a goodbye — the shape of an idle-reaped (or crashed and
        // restarted) worker, repeatable across reconnects.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
        let addr = listener.local_addr().unwrap().to_string();
        let shard = Arc::new(ShardWorker::all_classes(rs.clone()));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let _ = shard.serve_requests(stream, "one-shot", Some(1));
                });
            }
        });

        let backend = RemoteBackend::connect(rs.clone(), &[Endpoint::Tcp(addr)]).expect("connect");
        let indexed = BackendConfig::Indexed.build(rs.clone());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler executable redial probe",
        ));
        let mut expected = vec![0.0f64; rs.n_columns()];
        indexed.max_scores_into(&query, &mut expected);

        let mut row = vec![0.0f64; rs.n_columns()];
        backend
            .try_max_scores_into(&query, &mut row)
            .expect("first query on the original connection");
        assert_eq!(row, expected);

        // The worker dropped the connection after that answer; wait for the
        // mux to notice the EOF and poison itself...
        let deadline = Instant::now() + Duration::from_secs(10);
        while !backend.workers[0].is_poisoned() {
            assert!(Instant::now() < deadline, "mux never noticed the EOF");
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...then the next query must transparently re-dial instead of
        // failing forever on the sticky poison.
        let mut row = vec![0.0f64; rs.n_columns()];
        backend
            .try_max_scores_into(&query, &mut row)
            .expect("query after the reconnect");
        assert_eq!(row, expected);
        assert_eq!(backend.endpoints().len(), 1, "still one worker");
    }

    #[test]
    fn concurrent_callers_share_one_reconnect_after_poison() {
        let train = vec![
            SampleFeatures::extract(b"the velvet assembler executable body one"),
            SampleFeatures::extract(b"the velvet assembler executable body two"),
            SampleFeatures::extract(b"an openmalaria simulation binary payload"),
        ];
        let rs = Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1],
            &FeatureKind::ALL,
        ));

        // The first accepted connection answers one request and drops; every
        // later one serves normally. Counting accepts makes the reconnect
        // observable from the worker's side of the wire.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
        let addr = listener.local_addr().unwrap().to_string();
        let shard = Arc::new(ShardWorker::all_classes(rs.clone()));
        let accepted = Arc::new(AtomicUsize::new(0));
        let accept_count = Arc::clone(&accepted);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                let n = accept_count.fetch_add(1, Ordering::SeqCst);
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let limit = if n == 0 { Some(1) } else { None };
                    let _ = shard.serve_requests(stream, "reconnect-count", limit);
                });
            }
        });

        let backend = RemoteBackend::connect(rs.clone(), &[Endpoint::Tcp(addr)]).expect("connect");
        let indexed = BackendConfig::Indexed.build(rs.clone());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"the velvet assembler concurrent redial probe",
        ));
        let mut expected = vec![0.0f64; rs.n_columns()];
        indexed.max_scores_into(&query, &mut expected);

        let mut row = vec![0.0f64; rs.n_columns()];
        backend
            .try_max_scores_into(&query, &mut row)
            .expect("first query on the original connection");
        assert_eq!(row, expected);

        // The one-shot connection dropped after that answer; wait for the
        // mux to notice the EOF and poison itself.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !backend.workers[0].is_poisoned() {
            assert!(Instant::now() < deadline, "mux never noticed the EOF");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            1,
            "only the first dial so far"
        );

        // Hit the poisoned worker from many threads at once. The re-dial
        // happens under the worker's mux lock, so exactly one caller pays
        // for it; the rest queue behind the lock and submit on the fresh
        // connection it installed.
        const CALLERS: usize = 8;
        let barrier = std::sync::Barrier::new(CALLERS);
        let rows: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let mut row = vec![0.0f64; rs.n_columns()];
                        backend
                            .try_max_scores_into(&query, &mut row)
                            .expect("query during the shared reconnect");
                        row
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caller thread"))
                .collect()
        });

        for row in &rows {
            assert_eq!(row.len(), expected.len());
            assert!(
                row.iter()
                    .zip(&expected)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "row is not byte-identical after the reconnect"
            );
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            2,
            "exactly one reconnect served the whole caller burst"
        );
    }

    #[test]
    fn exact_cover_detection() {
        let a: &[usize] = &[0, 2];
        let b: &[usize] = &[1];
        assert!(is_exact_cover(3, [a, b].into_iter()));
        // Missing class.
        assert!(!is_exact_cover(3, [a].into_iter()));
        // Duplicate class.
        let c: &[usize] = &[2, 1];
        assert!(!is_exact_cover(3, [a, c].into_iter()));
        // Out of range.
        let d: &[usize] = &[3];
        assert!(!is_exact_cover(3, [d].into_iter()));
        // Zero classes: trivially covered by nothing.
        assert!(is_exact_cover(0, std::iter::empty()));
    }

    #[test]
    fn mux_errors_map_to_typed_net_errors() {
        let lost = net_error_from_mux("w0", MuxError::new(MuxErrorKind::Io, "reset"));
        assert!(lost.is_worker_lost());
        let lost = net_error_from_mux("w0", MuxError::new(MuxErrorKind::Stalled, "30s"));
        assert!(lost.is_worker_lost());
        let remote = net_error_from_mux("w0", MuxError::new(MuxErrorKind::Remote, "boom"));
        assert!(matches!(remote, NetError::Remote { message, .. } if message == "boom"));
        let protocol = net_error_from_mux("w0", MuxError::new(MuxErrorKind::Decode, "junk"));
        assert!(matches!(protocol, NetError::Protocol { .. }));
    }
}
