//! Every deadline the serving tier runs on, in one place.
//!
//! The constants below used to be scattered across the client, mux, and
//! daemon layers; chaos and soak configurations need to reason about their
//! *ordering*, so they live together with the hierarchy spelled out:
//!
//! ```text
//! MUX_POLL_INTERVAL  (1s)  <  IO_TIMEOUT  (30s)  <  IDLE_TIMEOUT  (300s)
//! ```
//!
//! * A mux reader wakes at least every [`MUX_POLL_INTERVAL`] to check owed
//!   replies, so a stall is detected within one poll of [`IO_TIMEOUT`].
//! * A client declares a worker lost once an owed reply has waited
//!   [`IO_TIMEOUT`]; every connect and write is bounded by the same value.
//!   Fleet hedge deadlines (see [`fleet`](crate::shardnet::fleet)) clamp
//!   well below it — a hedge that cannot fire before the request is
//!   declared lost would be no hedge at all.
//! * A server reaps a *silent* client after [`IDLE_TIMEOUT`]; it is an
//!   order of magnitude above [`IO_TIMEOUT`] so a server never reaps a
//!   client that is merely waiting out its own reply deadline.
//!
//! Anything that violates this ordering is a bug: e.g. an idle timeout at
//! or below the reply deadline would let a server reap clients with replies
//! legitimately in flight.

use std::time::Duration;

/// Client-side deadline for a worker to answer an in-flight request (and
/// for the TCP connect and every write).
///
/// Client connections are driven by a [`hpcutil::Mux`], whose reader
/// thread reads *continuously*; an idle connection with nothing in flight
/// is normal and never times out. What must not hang is an **owed reply**:
/// a stalled worker — wedged, SIGSTOPped, partitioned without an RST —
/// surfaces as a [`NetError::WorkerLost`](crate::shardnet::NetError) once
/// a request has waited this long, instead of blocking the caller forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket read timeout under a [`hpcutil::Mux`] reader thread: how often
/// the reader wakes to check in-flight requests against [`IO_TIMEOUT`].
/// The mux reassembles frames from raw reads, so this timeout never tears
/// a frame — it only bounds stall-detection latency.
pub const MUX_POLL_INTERVAL: Duration = Duration::from_secs(1);

/// Server-side read deadline on every accepted connection (shard worker
/// and gateway accept loops alike): a connection with no traffic for this
/// long is presumed abandoned and reaped, bounding the daemon's open-
/// connection count against clients that vanish without a goodbye. It
/// exists to reap dead *clients*, not slow ones — hence well above
/// [`IO_TIMEOUT`].
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_deadline_hierarchy_holds() {
        assert!(
            MUX_POLL_INTERVAL < IO_TIMEOUT,
            "stall checks must fire well within the reply deadline"
        );
        assert!(
            IO_TIMEOUT < IDLE_TIMEOUT,
            "a server must never reap a client still inside its reply deadline"
        );
        // An order of magnitude of slack on each step, so jitter cannot
        // invert the hierarchy in practice.
        assert!(MUX_POLL_INTERVAL * 10 <= IO_TIMEOUT);
        assert!(IO_TIMEOUT * 10 <= IDLE_TIMEOUT);
    }
}
