//! The similarity feature matrix.
//!
//! The paper: "We compute a feature matrix for our dataset based on the
//! SSDeep fuzzy hash similarity between sample features." Concretely, the
//! Random Forest needs a fixed-length numeric vector per sample. We give it,
//! for every *known* application class and every hash view, the maximum
//! SSDeep similarity between the sample and that class's training samples:
//!
//! ```text
//! x[sample] = [ max_sim(file,   class_0), ..., max_sim(file,   class_K-1),
//!               max_sim(strings,class_0), ..., max_sim(strings,class_K-1),
//!               max_sim(symbols,class_0), ..., max_sim(symbols,class_K-1) ]
//! ```
//!
//! Grouping columns by hash view is what lets the pipeline aggregate the
//! forest's per-column importances into the three per-feature numbers of the
//! paper's Table 5.
//!
//! # The precomputed similarity index
//!
//! The reference set is *static* once built, so [`ReferenceSet::new`]
//! prepares every reference hash up front ([`ssdeep::PreparedHash`]: run
//! elimination + sorted packed window keys, paid once) and groups the
//! prepared hashes of each `(view, class)` cell into **block-size buckets**.
//! Scoring a query then touches only the two or three buckets whose block
//! size is compatible with the query's (equal or a factor of two apart) —
//! incompatible reference hashes are skipped without reading a single
//! signature byte — and each comparison runs just the common-substring
//! intersection and the edit-distance DP. Scores are byte-identical to the
//! unindexed scan ([`ReferenceSet::feature_vector_scan`] keeps the plain
//! `ssdeep::compare` path as a verification oracle).

use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use hpcutil::codec::fnv1a64;
use hpcutil::{par_map_indexed, ByteWriter};
use ssdeep::{compare_prepared, FuzzyHash, PreparedHash};

/// Block-size buckets over one `(view, class)` cell of the reference set:
/// `(block size, indices of the class's prepared samples whose hash for this
/// view has that block size)`, sorted by block size for binary search.
#[derive(Debug, Clone)]
struct BlockSizeBuckets {
    buckets: Vec<(u64, Vec<u32>)>,
}

impl BlockSizeBuckets {
    /// Bucket every sample of `class_samples` that has a hash for `kind`.
    fn build(class_samples: &[PreparedSampleFeatures], kind: FeatureKind) -> Self {
        let mut buckets: Vec<(u64, Vec<u32>)> = Vec::new();
        for (i, sample) in class_samples.iter().enumerate() {
            if let Some(prepared) = sample.get(kind) {
                let block_size = prepared.block_size();
                match buckets.binary_search_by_key(&block_size, |&(b, _)| b) {
                    Ok(pos) => buckets[pos].1.push(i as u32),
                    Err(pos) => buckets.insert(pos, (block_size, vec![i as u32])),
                }
            }
        }
        Self { buckets }
    }

    /// Sample indices whose hash has exactly `block_size`.
    fn bucket(&self, block_size: u64) -> &[u32] {
        match self.buckets.binary_search_by_key(&block_size, |&(b, _)| b) {
            Ok(pos) => &self.buckets[pos].1,
            Err(_) => &[],
        }
    }
}

/// Reference hashes the feature matrix is computed against: the training
/// samples of each known class, with a precomputed similarity index over
/// their prepared hashes.
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    /// Known class names, indexed by known-class id (the forest's label
    /// space).
    class_names: Vec<String>,
    /// Training sample features grouped by known-class id, in prepared
    /// (comparison-ready) form. Each [`ssdeep::PreparedHash`] owns its
    /// original [`ssdeep::FuzzyHash`], so this is the single source of
    /// truth — the plain features are a view into it, never a second copy.
    prepared_by_class: Vec<Vec<PreparedSampleFeatures>>,
    /// Which feature kinds are active (ablations disable some).
    kinds: Vec<FeatureKind>,
    /// Block-size buckets per `[kind index][class]`.
    index: Vec<Vec<BlockSizeBuckets>>,
}

impl ReferenceSet {
    /// Group training samples by their known-class label and build the
    /// prepared similarity index.
    ///
    /// `labels[i]` is the known-class id of `features[i]` and must be
    /// `< class_names.len()`.
    pub fn new(
        class_names: Vec<String>,
        features: &[SampleFeatures],
        labels: &[usize],
        kinds: &[FeatureKind],
    ) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features and labels must align"
        );
        let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> =
            vec![Vec::new(); class_names.len()];
        for (f, &l) in features.iter().zip(labels) {
            prepared_by_class[l].push(PreparedSampleFeatures::prepare(f));
        }
        Self::from_prepared_parts(class_names, prepared_by_class, kinds.to_vec())
    }

    /// Like [`ReferenceSet::new`], but from samples that are *already*
    /// prepared — the fit path prepares every corpus sample exactly once and
    /// reuses the preparation both here and for the query side of the
    /// feature matrix. Preparation is deterministic, so the resulting set is
    /// identical to re-preparing the plain features.
    pub fn from_prepared(
        class_names: Vec<String>,
        prepared: &[PreparedSampleFeatures],
        labels: &[usize],
        kinds: &[FeatureKind],
    ) -> Self {
        assert_eq!(
            prepared.len(),
            labels.len(),
            "features and labels must align"
        );
        let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> =
            vec![Vec::new(); class_names.len()];
        for (f, &l) in prepared.iter().zip(labels) {
            prepared_by_class[l].push(f.clone());
        }
        Self::from_prepared_parts(class_names, prepared_by_class, kinds.to_vec())
    }

    /// Assemble a reference set from already-prepared samples (used by the
    /// artifact decoder, which persists the prepared index so loading skips
    /// re-preparation).
    pub(crate) fn from_prepared_parts(
        class_names: Vec<String>,
        prepared_by_class: Vec<Vec<PreparedSampleFeatures>>,
        kinds: Vec<FeatureKind>,
    ) -> Self {
        assert_eq!(class_names.len(), prepared_by_class.len());
        let index = kinds
            .iter()
            .map(|&kind| {
                prepared_by_class
                    .iter()
                    .map(|samples| BlockSizeBuckets::build(samples, kind))
                    .collect()
            })
            .collect();
        Self {
            class_names,
            prepared_by_class,
            kinds,
            index,
        }
    }

    /// Known class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of known classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Active feature kinds.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// The training-sample features of one known class, reconstructed from
    /// the prepared hashes (which own the originals). Allocates; prefer
    /// [`ReferenceSet::prepared_class_features`] on hot paths.
    pub fn class_features(&self, class: usize) -> Vec<SampleFeatures> {
        self.prepared_by_class[class]
            .iter()
            .map(PreparedSampleFeatures::to_sample_features)
            .collect()
    }

    /// The prepared training-sample features of one known class, in the same
    /// order as [`ReferenceSet::class_features`] (used when serializing the
    /// prepared index into a classifier artifact).
    pub fn prepared_class_features(&self, class: usize) -> &[PreparedSampleFeatures] {
        &self.prepared_by_class[class]
    }

    /// Number of columns in the feature matrix
    /// (`n_classes * active feature kinds`).
    pub fn n_columns(&self) -> usize {
        self.n_classes() * self.kinds.len()
    }

    /// A stable 64-bit fingerprint of the reference set's semantic content:
    /// the active kinds, the class names, and every reference fuzzy hash,
    /// in order. Two reference sets score queries identically if (not only
    /// if) their fingerprints match.
    ///
    /// The distributed serving handshake uses this to refuse mixing a
    /// client and a shard worker that hold different artifacts — a mismatch
    /// there would silently produce wrong similarity rows.
    pub fn fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_usize(self.kinds.len());
        for kind in &self.kinds {
            w.put_str(kind.paper_name());
        }
        w.put_usize(self.n_classes());
        for (name, samples) in self.class_names.iter().zip(&self.prepared_by_class) {
            w.put_str(name);
            w.put_usize(samples.len());
            for sample in samples {
                w.put_str(&sample.file.hash().to_string());
                w.put_str(&sample.strings.hash().to_string());
                match &sample.symbols {
                    None => w.put_bool(false),
                    Some(prepared) => {
                        w.put_bool(true);
                        w.put_str(&prepared.hash().to_string());
                    }
                }
            }
        }
        fnv1a64(w.as_bytes())
    }

    /// Column of one `(view, class)` cell in the kind-major row layout —
    /// the single definition of the layout invariant shared by the
    /// reference set's row builders and every
    /// [`crate::backend::SimilarityBackend`] implementation.
    #[inline]
    pub fn column_index(&self, kind_idx: usize, class: usize) -> usize {
        kind_idx * self.n_classes() + class
    }

    /// Column names, grouped by feature kind then class
    /// (e.g. `ssdeep-symbols/Velvet`).
    pub fn column_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for class in &self.class_names {
                names.push(format!("{}/{}", kind.paper_name(), class));
            }
        }
        names
    }

    /// The feature kind each column belongs to (for importance aggregation).
    pub fn column_kinds(&self) -> Vec<FeatureKind> {
        let mut kinds = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for _ in 0..self.n_classes() {
                kinds.push(*kind);
            }
        }
        kinds
    }

    /// Feature vector of one sample: per active kind, per known class, the
    /// maximum similarity against that class's training samples, scaled to
    /// `0.0..=100.0`.
    ///
    /// Prepares the query once, then scores it through the precomputed
    /// index; see [`ReferenceSet::feature_vector_prepared`].
    pub fn feature_vector(&self, sample: &SampleFeatures) -> Vec<f64> {
        self.feature_vector_prepared(&PreparedSampleFeatures::prepare(sample))
    }

    /// Feature vector of one already-prepared sample, computed through the
    /// block-size-bucketed similarity index: per `(view, class)` cell only
    /// the buckets whose block size is compatible with the query's are
    /// compared at all, and each comparison skips straight to the
    /// edit-distance DP. Scores are identical to the unindexed
    /// [`ReferenceSet::feature_vector_scan`].
    pub fn feature_vector_prepared(&self, sample: &PreparedSampleFeatures) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.n_columns());
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            let query = sample.get(kind);
            for class in 0..self.class_names.len() {
                let best = query.map_or(0, |q| self.cell_score_indexed(kind_idx, class, q));
                row.push(f64::from(best));
            }
        }
        row
    }

    /// Maximum similarity of `query` against one `(view, class)` cell,
    /// through the block-size-bucketed index. This is the scoring primitive
    /// [`crate::backend::IndexedBackend`] and
    /// [`crate::backend::ShardedBackend`] assemble rows from.
    pub(crate) fn cell_score_indexed(
        &self,
        kind_idx: usize,
        class: usize,
        query: &PreparedHash,
    ) -> u32 {
        let samples = &self.prepared_by_class[class];
        let buckets = &self.index[kind_idx][class];
        let kind = self.kinds[kind_idx];
        let block_size = query.block_size();
        // The only block sizes SSDeep will compare: equal, double, and (for
        // even sizes) half. Everything else scores 0 and is never visited.
        let candidates = [
            Some(block_size),
            block_size.checked_mul(2),
            block_size.is_multiple_of(2).then_some(block_size / 2),
        ];
        let mut best = 0u32;
        for candidate in candidates.into_iter().flatten() {
            for &i in buckets.bucket(candidate) {
                let reference = self.prepared_sample_hash(samples, i, kind);
                best = best.max(compare_prepared(query, reference));
                if best == 100 {
                    return best;
                }
            }
        }
        best
    }

    fn prepared_sample_hash<'a>(
        &self,
        samples: &'a [PreparedSampleFeatures],
        index: u32,
        kind: FeatureKind,
    ) -> &'a PreparedHash {
        samples[index as usize]
            .get(kind)
            .expect("indexed sample has this view")
    }

    /// Feature vector computed by the original unindexed scan: every
    /// reference sample of every class is compared with plain
    /// [`ssdeep::compare()`], re-normalizing signatures on every call.
    ///
    /// Kept as the verification oracle for the precomputed index (the
    /// equivalence tests assert it matches [`ReferenceSet::feature_vector`])
    /// and as the baseline the serving benchmark measures the index against.
    pub fn feature_vector_scan(&self, sample: &SampleFeatures) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.n_columns());
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            let query = sample.get(kind);
            for class in 0..self.prepared_by_class.len() {
                let best = query.map_or(0, |q| self.cell_score_scan(kind_idx, class, q));
                row.push(f64::from(best));
            }
        }
        row
    }

    /// Maximum similarity of one query hash against one `(view, class)` cell
    /// by the plain unindexed scan: every reference sample of the class is
    /// compared with [`ssdeep::compare()`], re-normalizing signatures on every
    /// call — exactly the pre-index cost. The scoring primitive of
    /// [`crate::backend::ScanBackend`].
    pub(crate) fn cell_score_scan(&self, kind_idx: usize, class: usize, query: &FuzzyHash) -> u32 {
        let kind = self.kinds[kind_idx];
        self.prepared_by_class[class]
            .iter()
            .map(|train| match train.get(kind) {
                Some(b) => ssdeep::compare(query, b.hash()),
                None => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Feature matrix of a batch of samples (rows computed in parallel — the
    /// dominant cost of the whole pipeline), through the precomputed index
    /// with the default training parallelism. For an explicit parallel
    /// configuration, a prepared query batch, or a different scoring
    /// strategy, use a [`crate::backend::SimilarityBackend`] — the pipeline
    /// routes its matrices through the configured backend.
    pub fn feature_matrix(&self, samples: &[SampleFeatures]) -> Vec<Vec<f64>> {
        par_map_indexed(samples.len(), crate::config::default_parallel(), |i| {
            self.feature_vector(&samples[i])
        })
    }

    /// Feature matrix computed by the unindexed scan (the benchmark baseline
    /// twin of [`ReferenceSet::feature_matrix`]).
    pub fn feature_matrix_scan(&self, samples: &[SampleFeatures]) -> Vec<Vec<f64>> {
        par_map_indexed(samples.len(), crate::config::default_parallel(), |i| {
            self.feature_vector_scan(&samples[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::ElfBuilder;

    fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
        let mut b = ElfBuilder::new();
        // Class-specific code with a small variant-specific region.
        let mut code: Vec<u8> = class_tag
            .bytes()
            .cycle()
            .take(24_000)
            .enumerate()
            .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
            .collect();
        for (i, byte) in code
            .iter_mut()
            .skip((variant as usize * 512) % 20_000)
            .take(256)
            .enumerate()
        {
            *byte ^= (variant as u8).wrapping_add(i as u8);
        }
        b.add_text_section(code);
        b.add_rodata_section(
            format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes(),
        );
        for i in 0..30 {
            b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
        }
        b.add_global_function(&format!("{class_tag}_extra_{variant}"), 30 * 128, 64);
        SampleFeatures::extract(&b.build())
    }

    fn reference() -> (ReferenceSet, Vec<SampleFeatures>) {
        let train = vec![
            make_sample("velvet", 0),
            make_sample("velvet", 1),
            make_sample("openmalaria", 0),
            make_sample("openmalaria", 1),
        ];
        let labels = vec![0, 0, 1, 1];
        let rs = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &labels,
            &FeatureKind::ALL,
        );
        (rs, train)
    }

    #[test]
    fn column_layout_is_kind_major() {
        let (rs, _) = reference();
        assert_eq!(rs.n_columns(), 6);
        let names = rs.column_names();
        assert_eq!(names[0], "ssdeep-file/Velvet");
        assert_eq!(names[1], "ssdeep-file/OpenMalaria");
        assert_eq!(names[4], "ssdeep-symbols/Velvet");
        let kinds = rs.column_kinds();
        assert_eq!(kinds[0], FeatureKind::File);
        assert_eq!(kinds[5], FeatureKind::Symbols);
    }

    #[test]
    fn training_sample_scores_100_against_its_own_class() {
        let (rs, train) = reference();
        let row = rs.feature_vector(&train[0]);
        // Column 0 = file similarity to Velvet (contains this exact sample).
        assert_eq!(row[0], 100.0);
        // Symbols column for Velvet likewise.
        assert_eq!(row[4], 100.0);
    }

    #[test]
    fn new_version_scores_higher_for_its_class() {
        let (rs, _) = reference();
        let unseen_velvet = make_sample("velvet", 7);
        let row = rs.feature_vector(&unseen_velvet);
        let velvet_sym = row[4];
        let malaria_sym = row[5];
        assert!(
            velvet_sym > malaria_sym,
            "velvet sample should be closer to Velvet ({velvet_sym}) than OpenMalaria ({malaria_sym})"
        );
    }

    #[test]
    fn unknown_application_scores_low_everywhere() {
        let (rs, _) = reference();
        let stranger = make_sample("quantumespresso", 3);
        let row = rs.feature_vector(&stranger);
        // The symbols columns are the discriminative ones; a never-seen
        // application should not reach a high symbol similarity with either
        // known class.
        assert!(row[4] < 60.0, "symbols vs Velvet: {}", row[4]);
        assert!(row[5] < 60.0, "symbols vs OpenMalaria: {}", row[5]);
    }

    #[test]
    fn feature_matrix_matches_vectors() {
        let (rs, train) = reference();
        let matrix = rs.feature_matrix(&train);
        assert_eq!(matrix.len(), 4);
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(*row, rs.feature_vector(&train[i]));
            assert_eq!(row.len(), rs.n_columns());
            assert!(row.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    }

    #[test]
    fn ablated_reference_has_fewer_columns() {
        let train = vec![make_sample("velvet", 0)];
        let rs = ReferenceSet::new(vec!["Velvet".into()], &train, &[0], &[FeatureKind::Symbols]);
        assert_eq!(rs.n_columns(), 1);
        assert_eq!(rs.column_names(), vec!["ssdeep-symbols/Velvet"]);
    }

    #[test]
    fn indexed_feature_vector_matches_scan_oracle() {
        let (rs, train) = reference();
        let probes = vec![
            train[0].clone(),
            make_sample("velvet", 9),
            make_sample("openmalaria", 4),
            make_sample("quantumespresso", 1),
        ];
        for probe in &probes {
            assert_eq!(
                rs.feature_vector(probe),
                rs.feature_vector_scan(probe),
                "index and scan disagree"
            );
        }
        let indexed = rs.feature_matrix(&probes);
        let scanned = rs.feature_matrix_scan(&probes);
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn prepared_query_reuses_one_preparation() {
        let (rs, _) = reference();
        let probe = make_sample("velvet", 3);
        let prepared = crate::features::PreparedSampleFeatures::prepare(&probe);
        assert_eq!(
            rs.feature_vector_prepared(&prepared),
            rs.feature_vector(&probe)
        );
    }

    #[test]
    fn prepared_class_features_mirror_plain() {
        let (rs, _) = reference();
        for class in 0..rs.n_classes() {
            let plain = rs.class_features(class);
            let prepared = rs.prepared_class_features(class);
            assert_eq!(plain.len(), prepared.len());
            for (p, q) in plain.iter().zip(prepared) {
                assert_eq!(p, &q.to_sample_features());
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let (rs, train) = reference();
        let (rs2, _) = reference();
        // Deterministic: identical content, identical fingerprint.
        assert_eq!(rs.fingerprint(), rs2.fingerprint());

        // Different class names change it.
        let renamed = ReferenceSet::new(
            vec!["Velvet".into(), "SomethingElse".into()],
            &train,
            &[0, 0, 1, 1],
            &FeatureKind::ALL,
        );
        assert_ne!(rs.fingerprint(), renamed.fingerprint());

        // Different membership changes it.
        let smaller = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train[..3],
            &[0, 0, 1],
            &FeatureKind::ALL,
        );
        assert_ne!(rs.fingerprint(), smaller.fingerprint());

        // Different active kinds change it.
        let ablated = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1, 1],
            &[FeatureKind::Symbols],
        );
        assert_ne!(rs.fingerprint(), ablated.fingerprint());
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        let train = vec![make_sample("velvet", 0)];
        let _ = ReferenceSet::new(vec!["Velvet".into()], &train, &[0, 1], &FeatureKind::ALL);
    }
}
