//! The similarity feature matrix.
//!
//! The paper: "We compute a feature matrix for our dataset based on the
//! SSDeep fuzzy hash similarity between sample features." Concretely, the
//! Random Forest needs a fixed-length numeric vector per sample. We give it,
//! for every *known* application class and every hash view, the maximum
//! SSDeep similarity between the sample and that class's training samples:
//!
//! ```text
//! x[sample] = [ max_sim(file,   class_0), ..., max_sim(file,   class_K-1),
//!               max_sim(strings,class_0), ..., max_sim(strings,class_K-1),
//!               max_sim(symbols,class_0), ..., max_sim(symbols,class_K-1) ]
//! ```
//!
//! Grouping columns by hash view is what lets the pipeline aggregate the
//! forest's per-column importances into the three per-feature numbers of the
//! paper's Table 5.
//!
//! # The precomputed similarity index
//!
//! The reference set is *static* once built, so [`ReferenceSet::new`]
//! prepares every reference hash up front ([`ssdeep::PreparedHash`]: run
//! elimination + sorted packed window keys, paid once) and builds an
//! **inverted gram index** per view: window key → posting list of the
//! reference hashes containing it, per block size and signature channel.
//! A non-zero SSDeep score requires a shared 7-byte window (the
//! common-substring guard), so probing a query's own ≤ 64 window keys
//! against the posting lists of the compatible block sizes (equal, double,
//! half — everything else scores 0 by the block-size rule) surfaces
//! *exactly* the references that can score above 0; the rest of the
//! reference set is never touched. Each surfaced candidate then runs the
//! budget-pruned comparison: the class's running maximum similarity is
//! threaded down as an early-exit score budget
//! ([`ssdeep::compare_prepared_min`] over the banded `ssdeep::fastdist`
//! kernel), so a reference that cannot beat the best score seen so far is
//! abandoned mid-DP. Scores are byte-identical to the unindexed scan
//! ([`ReferenceSet::feature_vector_scan`] keeps the plain `ssdeep::compare`
//! path as a verification oracle).

use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use hpcutil::codec::fnv1a64;
use hpcutil::{par_map_indexed, ByteWriter, ParallelConfig};
use ssdeep::compare::MIN_COMMON_SUBSTRING;
use ssdeep::{compare_prepared_min, FuzzyHash, PreparedHash};
use std::collections::{BTreeMap, BTreeSet};

/// CSR posting lists over the unique sorted window keys of one signature
/// channel (primary or double) at one block size: `postings[starts[i] ..
/// starts[i + 1]]` are the entry ids of the reference hashes containing
/// `keys[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GramPostings {
    keys: Vec<u64>,
    starts: Vec<u32>,
    postings: Vec<u32>,
}

impl GramPostings {
    /// Build from raw `(window key, entry id)` pairs.
    fn build(mut pairs: Vec<(u64, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup(); // a signature can repeat a 7-gram; index each once
        let mut keys = Vec::new();
        let mut starts = Vec::new();
        let mut postings = Vec::with_capacity(pairs.len());
        for (key, entry) in pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
                starts.push(postings.len() as u32);
            }
            postings.push(entry);
        }
        starts.push(postings.len() as u32);
        Self {
            keys,
            starts,
            postings,
        }
    }

    /// The bucket a rebuild creates for a block size none of whose hashes
    /// carry window keys: no keys, no postings, the single sentinel start.
    fn empty() -> Self {
        Self::build(Vec::new())
    }

    /// Shift every posting id at or past `at` up by `by` — the id-space
    /// splice that precedes inserting `by` new entries at `at`. The shift
    /// is monotone, so every posting list stays sorted in place.
    fn shift_from(&mut self, at: u32, by: u32) {
        for entry in &mut self.postings {
            if *entry >= at {
                *entry += by;
            }
        }
    }

    /// Merge raw `(window key, entry id)` pairs into the lists — a linear
    /// two-stream merge, no global re-sort. The caller guarantees the new
    /// entry ids are fresh (just spliced into the id space), so the result
    /// is exactly [`GramPostings::build`] over the union of pairs.
    fn merge(&mut self, mut pairs: Vec<(u64, u32)>) {
        pairs.sort_unstable();
        pairs.dedup(); // a signature can repeat a 7-gram; index each once
        if pairs.is_empty() {
            return;
        }
        fn push(
            keys: &mut Vec<u64>,
            starts: &mut Vec<u32>,
            postings: &mut Vec<u32>,
            pair: (u64, u32),
        ) {
            if keys.last() != Some(&pair.0) {
                keys.push(pair.0);
                starts.push(postings.len() as u32);
            }
            postings.push(pair.1);
        }
        let mut keys = Vec::with_capacity(self.keys.len() + pairs.len());
        let mut starts = Vec::with_capacity(self.keys.len() + pairs.len() + 1);
        let mut postings = Vec::with_capacity(self.postings.len() + pairs.len());
        let mut new = pairs.iter().copied().peekable();
        for (i, &key) in self.keys.iter().enumerate() {
            for &entry in &self.postings[self.starts[i] as usize..self.starts[i + 1] as usize] {
                while let Some(pair) = new.next_if(|&pair| pair < (key, entry)) {
                    push(&mut keys, &mut starts, &mut postings, pair);
                }
                push(&mut keys, &mut starts, &mut postings, (key, entry));
            }
        }
        for pair in new {
            push(&mut keys, &mut starts, &mut postings, pair);
        }
        starts.push(postings.len() as u32);
        *self = Self {
            keys,
            starts,
            postings,
        };
    }

    /// Renumber every posting through `map` (`None` drops it), dropping
    /// keys whose lists empty out — a rebuild never emits a key with no
    /// postings. `map` must be monotone on the ids it keeps so the lists
    /// stay sorted.
    fn retain_map(&mut self, map: impl Fn(u32) -> Option<u32>) {
        let mut keys = Vec::with_capacity(self.keys.len());
        let mut starts = Vec::with_capacity(self.keys.len() + 1);
        let mut postings = Vec::with_capacity(self.postings.len());
        for (i, &key) in self.keys.iter().enumerate() {
            let begin = postings.len();
            for &entry in &self.postings[self.starts[i] as usize..self.starts[i + 1] as usize] {
                if let Some(mapped) = map(entry) {
                    postings.push(mapped);
                }
            }
            if postings.len() > begin {
                keys.push(key);
                starts.push(begin as u32);
            }
        }
        starts.push(postings.len() as u32);
        *self = Self {
            keys,
            starts,
            postings,
        };
    }

    /// Append the entry ids of every reference hash sharing a window key
    /// with `query_keys` (sorted, possibly with duplicates) to `out`.
    ///
    /// Both key lists are sorted, so each query key is found by a binary
    /// search over the not-yet-visited suffix of the index keys.
    fn lookup(&self, query_keys: &[u64], out: &mut Vec<u32>) {
        let mut lo = 0usize;
        let mut prev = None;
        for &key in query_keys {
            if prev == Some(key) {
                continue;
            }
            prev = Some(key);
            if lo >= self.keys.len() {
                break;
            }
            match self.keys[lo..].binary_search(&key) {
                Ok(pos) => {
                    let pos = lo + pos;
                    let range = self.starts[pos] as usize..self.starts[pos + 1] as usize;
                    out.extend_from_slice(&self.postings[range]);
                    lo = pos + 1;
                }
                Err(pos) => lo += pos,
            }
        }
    }
}

/// The inverted gram index of one feature kind: window key -> reference
/// hashes, per block size and signature channel.
///
/// A non-zero SSDeep score *requires* a shared 7-byte window between the
/// compared signature pair (the common-substring guard), except for the
/// identical-hash fast path on signatures whose run-eliminated form is
/// shorter than the window. So the references that can score a query at
/// all are found by probing the query's own window keys against these
/// posting lists — per query, not per reference — and every reference
/// *not* surfaced scores exactly 0 without being touched. The candidates
/// that are surfaced go through the full budget-pruned comparison, keeping
/// the rows byte-identical to the scan oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KindGramIndex {
    /// One entry per reference hash of this kind:
    /// `(known-class id, sample index within the class)`, in class-major
    /// order (so candidate lists sorted by entry id group by class).
    entries: Vec<(u32, u32)>,
    /// Primary-signature postings, sorted by block size.
    primary: Vec<(u64, GramPostings)>,
    /// Double-signature postings, sorted by the owning hash's block size.
    double: Vec<(u64, GramPostings)>,
    /// Entries that can only match through the identical-hash fast path:
    /// raw signature long enough for it, run-eliminated signature too short
    /// to carry any window key. Sorted by block size.
    degenerate: Vec<(u64, Vec<u32>)>,
}

impl KindGramIndex {
    fn build(prepared_by_class: &[Vec<PreparedSampleFeatures>], kind: FeatureKind) -> Self {
        let mut entries = Vec::new();
        let mut primary: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        let mut double: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        let mut degenerate: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (class, samples) in prepared_by_class.iter().enumerate() {
            for (sample, features) in samples.iter().enumerate() {
                let Some(hash) = features.get(kind) else {
                    continue;
                };
                let entry = entries.len() as u32;
                entries.push((class as u32, sample as u32));
                let block_size = hash.block_size();
                let primary_pairs = primary.entry(block_size).or_default();
                for &key in hash.primary().keys() {
                    primary_pairs.push((key, entry));
                }
                let double_pairs = double.entry(block_size).or_default();
                for &key in hash.double().keys() {
                    double_pairs.push((key, entry));
                }
                if hash.primary().eliminated().len() < MIN_COMMON_SUBSTRING
                    && hash.hash().signature().len() >= MIN_COMMON_SUBSTRING
                {
                    degenerate.entry(block_size).or_default().push(entry);
                }
            }
        }
        let finish = |map: BTreeMap<u64, Vec<(u64, u32)>>| -> Vec<(u64, GramPostings)> {
            map.into_iter()
                .map(|(block_size, pairs)| (block_size, GramPostings::build(pairs)))
                .collect()
        };
        Self {
            entries,
            primary: finish(primary),
            double: finish(double),
            degenerate: degenerate.into_iter().collect(),
        }
    }

    /// Entry id of `(class, sample)`, if that sample carries this kind's
    /// view. Entries are class-major and sorted, so a tuple binary search
    /// finds it.
    fn entry_of(&self, class: u32, sample: u32) -> Option<u32> {
        self.entries
            .binary_search(&(class, sample))
            .ok()
            .map(|pos| pos as u32)
    }

    /// One past the last entry id of `class` — the splice point for
    /// appending that class's samples (entries are class-major).
    fn class_end(&self, class: u32) -> u32 {
        self.entries.partition_point(|&(c, _)| c <= class) as u32
    }

    /// The posting bucket of `block_size` in one channel, inserting an
    /// empty bucket at its sorted position if absent — mirroring
    /// [`KindGramIndex::build`], where every sample claims its block-size
    /// bucket even when its signature carries no window keys.
    fn channel_slot(channel: &mut Vec<(u64, GramPostings)>, block_size: u64) -> &mut GramPostings {
        let pos = match channel.binary_search_by_key(&block_size, |&(b, _)| b) {
            Ok(pos) => pos,
            Err(pos) => {
                channel.insert(pos, (block_size, GramPostings::empty()));
                pos
            }
        };
        &mut channel[pos].1
    }

    /// Splice the hashes of `samples` — new samples of `class` whose
    /// within-class indices start at `sample_offset` — into the index
    /// without rebuilding it. Entry ids stay dense and class-major:
    /// existing ids at or past the class's end shift up by the number of
    /// inserted hashes, and the fresh ids fill the gap in sample order, so
    /// the result is structurally identical to a from-scratch
    /// [`KindGramIndex::build`] over the grown reference set.
    fn insert_samples(
        &mut self,
        class: u32,
        sample_offset: u32,
        samples: &[PreparedSampleFeatures],
        kind: FeatureKind,
    ) {
        let with_view: Vec<(u32, &PreparedHash)> = samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.get(kind).map(|h| (sample_offset + i as u32, h)))
            .collect();
        let added = with_view.len() as u32;
        if added == 0 {
            return;
        }
        let at = self.class_end(class);
        for (_, postings) in self.primary.iter_mut().chain(self.double.iter_mut()) {
            postings.shift_from(at, added);
        }
        for (_, entries) in &mut self.degenerate {
            for entry in entries.iter_mut() {
                if *entry >= at {
                    *entry += added;
                }
            }
        }
        let new_entries: Vec<(u32, u32)> = with_view.iter().map(|&(s, _)| (class, s)).collect();
        self.entries.splice(at as usize..at as usize, new_entries);
        let mut primary_new: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        let mut double_new: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        let mut degenerate_new: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (offset, &(_, hash)) in with_view.iter().enumerate() {
            let entry = at + offset as u32;
            let block_size = hash.block_size();
            let primary_pairs = primary_new.entry(block_size).or_default();
            for &key in hash.primary().keys() {
                primary_pairs.push((key, entry));
            }
            let double_pairs = double_new.entry(block_size).or_default();
            for &key in hash.double().keys() {
                double_pairs.push((key, entry));
            }
            if hash.primary().eliminated().len() < MIN_COMMON_SUBSTRING
                && hash.hash().signature().len() >= MIN_COMMON_SUBSTRING
            {
                degenerate_new.entry(block_size).or_default().push(entry);
            }
        }
        for (block_size, pairs) in primary_new {
            Self::channel_slot(&mut self.primary, block_size).merge(pairs);
        }
        for (block_size, pairs) in double_new {
            Self::channel_slot(&mut self.double, block_size).merge(pairs);
        }
        for (block_size, new) in degenerate_new {
            let list = match self
                .degenerate
                .binary_search_by_key(&block_size, |&(b, _)| b)
            {
                Ok(pos) => &mut self.degenerate[pos].1,
                Err(pos) => {
                    self.degenerate.insert(pos, (block_size, Vec::new()));
                    &mut self.degenerate[pos].1
                }
            };
            // Every fresh id lives in `at..at + added` and no surviving id
            // does (they were shifted past it), so one splice keeps the
            // list sorted.
            let pos = list.partition_point(|&entry| entry < at);
            list.splice(pos..pos, new);
        }
    }

    /// Drop every entry of `class` and renumber the survivors down into a
    /// dense id space, as if the class had never been indexed. `remaining`
    /// is the set of block sizes still present among the surviving hashes:
    /// a rebuild keeps a (possibly key-less) bucket for exactly those, so
    /// buckets claimed only by the retired class are dropped.
    fn retire_class(&mut self, class: u32, remaining: &BTreeSet<u64>) {
        let lo = self.entries.partition_point(|&(c, _)| c < class) as u32;
        let hi = self.class_end(class);
        let removed = hi - lo;
        self.entries.drain(lo as usize..hi as usize);
        for entry in &mut self.entries[lo as usize..] {
            entry.0 -= 1;
        }
        let map = |entry: u32| {
            if entry < lo {
                Some(entry)
            } else if entry < hi {
                None
            } else {
                Some(entry - removed)
            }
        };
        for (_, postings) in self.primary.iter_mut().chain(self.double.iter_mut()) {
            postings.retain_map(map);
        }
        self.primary.retain(|&(b, _)| remaining.contains(&b));
        self.double.retain(|&(b, _)| remaining.contains(&b));
        for (_, entries) in &mut self.degenerate {
            entries.retain_mut(|entry| match map(*entry) {
                Some(mapped) => {
                    *entry = mapped;
                    true
                }
                None => false,
            });
        }
        self.degenerate.retain(|(_, entries)| !entries.is_empty());
    }

    /// Probe one channel: the postings at `block_size` against the query
    /// keys of the signature SSDeep would compare at that pairing.
    fn channel(
        postings: &[(u64, GramPostings)],
        block_size: u64,
        query_keys: &[u64],
        out: &mut Vec<u32>,
    ) {
        if let Ok(pos) = postings.binary_search_by_key(&block_size, |&(b, _)| b) {
            postings[pos].1.lookup(query_keys, out);
        }
    }

    /// The sorted, deduplicated entry ids of every reference hash that can
    /// score `query` above 0 — the exact comparison pairings of
    /// [`ssdeep::compare`]: primary vs primary and double vs double at an
    /// equal block size, query-primary vs reference-double at half, and
    /// query-double vs reference-primary at double, plus the
    /// identical-hash degenerates at the equal block size.
    ///
    /// With a sorted `classes` filter (a shard's partition), entries of
    /// non-owned classes are dropped *before* the sort/dedup, so a shard's
    /// candidate-surfacing cost shrinks with its share of the classes.
    fn candidates(&self, query: &PreparedHash, classes: Option<&[usize]>, out: &mut Vec<u32>) {
        out.clear();
        let block_size = query.block_size();
        Self::channel(&self.primary, block_size, query.primary().keys(), out);
        Self::channel(&self.double, block_size, query.double().keys(), out);
        if block_size.is_multiple_of(2) {
            Self::channel(&self.double, block_size / 2, query.primary().keys(), out);
        }
        if let Some(doubled) = block_size.checked_mul(2) {
            Self::channel(&self.primary, doubled, query.double().keys(), out);
        }
        if let Ok(pos) = self
            .degenerate
            .binary_search_by_key(&block_size, |&(b, _)| b)
        {
            out.extend_from_slice(&self.degenerate[pos].1);
        }
        if let Some(filter) = classes {
            out.retain(|&entry| {
                filter
                    .binary_search(&(self.entries[entry as usize].0 as usize))
                    .is_ok()
            });
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Reference hashes the feature matrix is computed against: the training
/// samples of each known class, with a precomputed similarity index over
/// their prepared hashes.
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    /// Known class names, indexed by known-class id (the forest's label
    /// space).
    class_names: Vec<String>,
    /// Training sample features grouped by known-class id, in prepared
    /// (comparison-ready) form. Each [`ssdeep::PreparedHash`] owns its
    /// original [`ssdeep::FuzzyHash`], so this is the single source of
    /// truth — the plain features are a view into it, never a second copy.
    prepared_by_class: Vec<Vec<PreparedSampleFeatures>>,
    /// Which feature kinds are active (ablations disable some).
    kinds: Vec<FeatureKind>,
    /// The inverted gram index, one per active kind.
    index: Vec<KindGramIndex>,
}

impl ReferenceSet {
    /// Group training samples by their known-class label and build the
    /// prepared similarity index.
    ///
    /// `labels[i]` is the known-class id of `features[i]` and must be
    /// `< class_names.len()`.
    pub fn new(
        class_names: Vec<String>,
        features: &[SampleFeatures],
        labels: &[usize],
        kinds: &[FeatureKind],
    ) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features and labels must align"
        );
        let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> =
            vec![Vec::new(); class_names.len()];
        for (f, &l) in features.iter().zip(labels) {
            prepared_by_class[l].push(PreparedSampleFeatures::prepare(f));
        }
        Self::from_prepared_parts(class_names, prepared_by_class, kinds.to_vec())
    }

    /// Like [`ReferenceSet::new`], but from samples that are *already*
    /// prepared — the fit path prepares every corpus sample exactly once and
    /// reuses the preparation both here and for the query side of the
    /// feature matrix. Preparation is deterministic, so the resulting set is
    /// identical to re-preparing the plain features.
    pub fn from_prepared(
        class_names: Vec<String>,
        prepared: &[PreparedSampleFeatures],
        labels: &[usize],
        kinds: &[FeatureKind],
    ) -> Self {
        assert_eq!(
            prepared.len(),
            labels.len(),
            "features and labels must align"
        );
        let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> =
            vec![Vec::new(); class_names.len()];
        for (f, &l) in prepared.iter().zip(labels) {
            prepared_by_class[l].push(f.clone());
        }
        Self::from_prepared_parts(class_names, prepared_by_class, kinds.to_vec())
    }

    /// Assemble a reference set from already-prepared samples (used by the
    /// artifact decoder, which persists the prepared index so loading skips
    /// re-preparation).
    pub(crate) fn from_prepared_parts(
        class_names: Vec<String>,
        prepared_by_class: Vec<Vec<PreparedSampleFeatures>>,
        kinds: Vec<FeatureKind>,
    ) -> Self {
        assert_eq!(class_names.len(), prepared_by_class.len());
        let index = kinds
            .iter()
            .map(|&kind| KindGramIndex::build(&prepared_by_class, kind))
            .collect();
        Self {
            class_names,
            prepared_by_class,
            kinds,
            index,
        }
    }

    /// Append a brand-new known class with its prepared reference samples,
    /// updating the inverted gram index in place — no refit, no rebuild.
    /// The evolved set is structurally identical to rebuilding from scratch
    /// over the grown corpus (the equivalence suite asserts it), so every
    /// backend keeps scoring byte-identically. Returns the new class's
    /// known-class id (always the current [`ReferenceSet::n_classes`]);
    /// note the column count grows, so a forest fitted against the old
    /// geometry needs refitting before it can consume new rows.
    pub fn add_class(
        &mut self,
        name: String,
        samples: Vec<PreparedSampleFeatures>,
    ) -> Result<usize, FhcError> {
        if self.class_id(&name).is_some() {
            return Err(FhcError::Artifact(format!(
                "cannot add class {name:?}: the reference set already has it"
            )));
        }
        let class = self.n_classes();
        for kind_idx in 0..self.kinds.len() {
            let kind = self.kinds[kind_idx];
            self.index[kind_idx].insert_samples(class as u32, 0, &samples, kind);
        }
        self.class_names.push(name);
        self.prepared_by_class.push(samples);
        Ok(class)
    }

    /// Append prepared reference samples to an existing known class,
    /// splicing their hashes into the inverted gram index in place. Column
    /// geometry is unchanged; only the class's similarity maxima can move,
    /// so a cheap threshold re-tune
    /// ([`crate::pipeline::FuzzyHashClassifier::retune_threshold`]) is all
    /// the fitted classifier needs.
    pub fn add_samples(
        &mut self,
        class: usize,
        samples: Vec<PreparedSampleFeatures>,
    ) -> Result<(), FhcError> {
        if class >= self.n_classes() {
            return Err(FhcError::Artifact(format!(
                "cannot add samples to class {class}: the reference set has {} classes",
                self.n_classes()
            )));
        }
        if samples.is_empty() {
            return Ok(());
        }
        let offset = self.prepared_by_class[class].len() as u32;
        for kind_idx in 0..self.kinds.len() {
            let kind = self.kinds[kind_idx];
            self.index[kind_idx].insert_samples(class as u32, offset, &samples, kind);
        }
        self.prepared_by_class[class].extend(samples);
        Ok(())
    }

    /// Remove a known class and every one of its reference samples,
    /// renumbering the inverted gram index in place. Every later class
    /// shifts down by one id (the label space stays dense), so the caller
    /// owns remapping anything keyed by class id; returns the retired
    /// class's name.
    pub fn retire_class(&mut self, class: usize) -> Result<String, FhcError> {
        if class >= self.n_classes() {
            return Err(FhcError::Artifact(format!(
                "cannot retire class {class}: the reference set has {} classes",
                self.n_classes()
            )));
        }
        for kind_idx in 0..self.kinds.len() {
            let kind = self.kinds[kind_idx];
            let remaining: BTreeSet<u64> = self
                .prepared_by_class
                .iter()
                .enumerate()
                .filter(|&(c, _)| c != class)
                .flat_map(|(_, samples)| {
                    samples
                        .iter()
                        .filter_map(move |s| s.get(kind).map(|h| h.block_size()))
                })
                .collect();
            self.index[kind_idx].retire_class(class as u32, &remaining);
        }
        self.prepared_by_class.remove(class);
        Ok(self.class_names.remove(class))
    }

    /// The known-class id of `name`, if present.
    pub fn class_id(&self, name: &str) -> Option<usize> {
        self.class_names.iter().position(|n| n == name)
    }

    /// A stable digest of one class's reference content (its slice of the
    /// [`ReferenceSet::fingerprint`] input: name, sample count, every
    /// sample's fuzzy hashes). Two classes with equal keys serve
    /// identically, which is what [`crate::artifact::ArtifactDelta`] diffs
    /// on.
    pub(crate) fn class_content_key(&self, class: usize) -> u64 {
        let mut w = ByteWriter::new();
        w.put_str(&self.class_names[class]);
        w.put_usize(self.prepared_by_class[class].len());
        for sample in &self.prepared_by_class[class] {
            w.put_str(&sample.file.hash().to_string());
            w.put_str(&sample.strings.hash().to_string());
            match &sample.symbols {
                None => w.put_bool(false),
                Some(prepared) => {
                    w.put_bool(true);
                    w.put_str(&prepared.hash().to_string());
                }
            }
        }
        fnv1a64(w.as_bytes())
    }

    /// Known class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of known classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Active feature kinds.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// The training-sample features of one known class, reconstructed from
    /// the prepared hashes (which own the originals). Allocates; prefer
    /// [`ReferenceSet::prepared_class_features`] on hot paths.
    pub fn class_features(&self, class: usize) -> Vec<SampleFeatures> {
        self.prepared_by_class[class]
            .iter()
            .map(PreparedSampleFeatures::to_sample_features)
            .collect()
    }

    /// The prepared training-sample features of one known class, in the same
    /// order as [`ReferenceSet::class_features`] (used when serializing the
    /// prepared index into a classifier artifact).
    pub fn prepared_class_features(&self, class: usize) -> &[PreparedSampleFeatures] {
        &self.prepared_by_class[class]
    }

    /// Number of columns in the feature matrix
    /// (`n_classes * active feature kinds`).
    pub fn n_columns(&self) -> usize {
        self.n_classes() * self.kinds.len()
    }

    /// A stable 64-bit fingerprint of the reference set's semantic content:
    /// the active kinds, the class names, and every reference fuzzy hash,
    /// in order. Two reference sets score queries identically if (not only
    /// if) their fingerprints match.
    ///
    /// The distributed serving handshake uses this to refuse mixing a
    /// client and a shard worker that hold different artifacts — a mismatch
    /// there would silently produce wrong similarity rows.
    pub fn fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_usize(self.kinds.len());
        for kind in &self.kinds {
            w.put_str(kind.paper_name());
        }
        w.put_usize(self.n_classes());
        for (name, samples) in self.class_names.iter().zip(&self.prepared_by_class) {
            w.put_str(name);
            w.put_usize(samples.len());
            for sample in samples {
                w.put_str(&sample.file.hash().to_string());
                w.put_str(&sample.strings.hash().to_string());
                match &sample.symbols {
                    None => w.put_bool(false),
                    Some(prepared) => {
                        w.put_bool(true);
                        w.put_str(&prepared.hash().to_string());
                    }
                }
            }
        }
        fnv1a64(w.as_bytes())
    }

    /// Column of one `(view, class)` cell in the kind-major row layout —
    /// the single definition of the layout invariant shared by the
    /// reference set's row builders and every
    /// [`crate::backend::SimilarityBackend`] implementation.
    #[inline]
    pub fn column_index(&self, kind_idx: usize, class: usize) -> usize {
        kind_idx * self.n_classes() + class
    }

    /// Column names, grouped by feature kind then class
    /// (e.g. `ssdeep-symbols/Velvet`).
    pub fn column_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for class in &self.class_names {
                names.push(format!("{}/{}", kind.paper_name(), class));
            }
        }
        names
    }

    /// The feature kind each column belongs to (for importance aggregation).
    pub fn column_kinds(&self) -> Vec<FeatureKind> {
        let mut kinds = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for _ in 0..self.n_classes() {
                kinds.push(*kind);
            }
        }
        kinds
    }

    /// Feature vector of one sample: per active kind, per known class, the
    /// maximum similarity against that class's training samples, scaled to
    /// `0.0..=100.0`.
    ///
    /// Prepares the query once, then scores it through the precomputed
    /// index; see [`ReferenceSet::feature_vector_prepared`].
    pub fn feature_vector(&self, sample: &SampleFeatures) -> Vec<f64> {
        self.feature_vector_prepared(&PreparedSampleFeatures::prepare(sample))
    }

    /// Feature vector of one already-prepared sample, computed through the
    /// inverted gram index: per view, the query's window keys surface the
    /// only references that can score above 0, and those run the
    /// budget-pruned comparison. Scores are identical to the unindexed
    /// [`ReferenceSet::feature_vector_scan`].
    pub fn feature_vector_prepared(&self, sample: &PreparedSampleFeatures) -> Vec<f64> {
        let mut row = vec![0.0; self.n_columns()];
        self.max_scores_into_indexed(sample, &mut row);
        row
    }

    /// Write the full similarity row of one prepared query through the
    /// inverted gram index. `out` must have [`ReferenceSet::n_columns`]
    /// cells and is fully overwritten. The row primitive behind
    /// [`crate::backend::IndexedBackend`] (and, with a class filter,
    /// [`ReferenceSet::partial_row_cells`] behind the sharded and remote
    /// topologies).
    pub(crate) fn max_scores_into_indexed(&self, sample: &PreparedSampleFeatures, out: &mut [f64]) {
        out.fill(0.0);
        let mut scratch = Vec::new();
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            if let Some(query) = sample.get(kind) {
                self.kind_scores_into(kind_idx, query, None, &mut scratch, |class, score| {
                    out[self.column_index(kind_idx, class)] = f64::from(score);
                });
            }
        }
    }

    /// The partial max-score row of `query` over a sorted class subset:
    /// one `(column, score)` cell for every `(view, class)` in
    /// `classes` — the primitive the sharded backend and the shardnet
    /// worker max-merge from (their partial rows carry every owned cell,
    /// zeros included, so the merge never has to guess coverage).
    pub(crate) fn partial_row_cells(
        &self,
        classes: &[usize],
        query: &PreparedSampleFeatures,
    ) -> Vec<(usize, f64)> {
        debug_assert!(classes.windows(2).all(|w| w[0] < w[1]), "classes sorted");
        let mut cells = Vec::with_capacity(classes.len() * self.kinds.len());
        let mut scratch = Vec::new();
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            let base = cells.len();
            for &class in classes {
                cells.push((self.column_index(kind_idx, class), 0.0));
            }
            if let Some(hash) = query.get(kind) {
                self.kind_scores_into(kind_idx, hash, Some(classes), &mut scratch, |class, s| {
                    let pos = classes
                        .binary_search(&class)
                        .expect("emitted class in filter");
                    cells[base + pos].1 = f64::from(s);
                });
            }
        }
        cells
    }

    /// Score one query hash against one view of the reference set through
    /// the inverted gram index, emitting `(class, max score)` for every
    /// class with a non-zero maximum (restricted to the sorted `classes`
    /// subset when given).
    ///
    /// Candidates arrive in class-major order, and each class's running
    /// maximum is threaded down as an early-exit score budget
    /// ([`ssdeep::compare_prepared_min`]): a reference that cannot beat the
    /// best score seen so far in its class is abandoned mid-DP (often
    /// before any DP row is touched). Exact for max-merge by the budget
    /// contract — a comparison is only ever under-reported when its true
    /// score could not have changed the maximum — so every backend stays
    /// byte-identical to the [`ssdeep::compare`] scan oracle.
    fn kind_scores_into(
        &self,
        kind_idx: usize,
        query: &PreparedHash,
        classes: Option<&[usize]>,
        scratch: &mut Vec<u32>,
        emit: impl FnMut(usize, u32),
    ) {
        self.index[kind_idx].candidates(query, classes, scratch);
        self.kind_scores_from_entries(kind_idx, query, scratch, emit);
    }

    /// The comparison half of [`ReferenceSet::kind_scores_into`]: run the
    /// budget-pruned comparisons over an explicit sorted candidate entry
    /// list, skipping the gram-index walk. This is what lets a cached or
    /// projected candidate list ([`CandidateCache`]) reproduce a row
    /// byte-identically without re-walking the index.
    fn kind_scores_from_entries(
        &self,
        kind_idx: usize,
        query: &PreparedHash,
        entries: &[u32],
        mut emit: impl FnMut(usize, u32),
    ) {
        let kind = self.kinds[kind_idx];
        let index = &self.index[kind_idx];
        let mut current_class = usize::MAX;
        let mut best = 0u32;
        for &entry in entries {
            let (class, sample) = index.entries[entry as usize];
            let (class, sample) = (class as usize, sample as usize);
            if class != current_class {
                if current_class != usize::MAX && best > 0 {
                    emit(current_class, best);
                }
                current_class = class;
                best = 0;
            }
            if best == 100 {
                continue; // the class max cannot improve
            }
            let reference = self.prepared_by_class[class][sample]
                .get(kind)
                .expect("indexed sample has this view");
            best = best.max(compare_prepared_min(query, reference, best + 1));
        }
        if current_class != usize::MAX && best > 0 {
            emit(current_class, best);
        }
    }

    /// Feature vector computed by the original unindexed scan: every
    /// reference sample of every class is compared with plain
    /// [`ssdeep::compare()`], re-normalizing signatures on every call.
    ///
    /// Kept as the verification oracle for the precomputed index (the
    /// equivalence tests assert it matches [`ReferenceSet::feature_vector`])
    /// and as the baseline the serving benchmark measures the index against.
    pub fn feature_vector_scan(&self, sample: &SampleFeatures) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.n_columns());
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            let query = sample.get(kind);
            for class in 0..self.prepared_by_class.len() {
                let best = query.map_or(0, |q| self.cell_score_scan(kind_idx, class, q));
                row.push(f64::from(best));
            }
        }
        row
    }

    /// Maximum similarity of one query hash against one `(view, class)` cell
    /// by the plain unindexed scan: every reference sample of the class is
    /// compared with [`ssdeep::compare()`], re-normalizing signatures on every
    /// call — exactly the pre-index cost. The scoring primitive of
    /// [`crate::backend::ScanBackend`].
    pub(crate) fn cell_score_scan(&self, kind_idx: usize, class: usize, query: &FuzzyHash) -> u32 {
        let kind = self.kinds[kind_idx];
        self.prepared_by_class[class]
            .iter()
            .map(|train| match train.get(kind) {
                Some(b) => ssdeep::compare(query, b.hash()),
                None => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Compute the similarity rows of a prepared query batch through the
    /// inverted index while capturing each query's per-kind candidate
    /// lists into a [`CandidateCache`]. Rows are byte-identical to
    /// [`ReferenceSet::feature_vector_prepared`]; the cache is what lets
    /// threshold tuning replay the same walks against a reference subset
    /// ([`ReferenceSet::project_candidates`]) instead of re-walking.
    pub fn feature_matrix_caching(
        &self,
        queries: &[PreparedSampleFeatures],
        parallel: ParallelConfig,
    ) -> (Vec<Vec<f64>>, CandidateCache) {
        let scored = par_map_indexed(queries.len(), parallel, |i| {
            let sample = &queries[i];
            let mut row = vec![0.0; self.n_columns()];
            let mut lists = Vec::with_capacity(self.kinds.len());
            for (kind_idx, &kind) in self.kinds.iter().enumerate() {
                let mut entries = Vec::new();
                if let Some(query) = sample.get(kind) {
                    self.index[kind_idx].candidates(query, None, &mut entries);
                    self.kind_scores_from_entries(kind_idx, query, &entries, |class, score| {
                        row[self.column_index(kind_idx, class)] = f64::from(score);
                    });
                }
                lists.push(entries);
            }
            (row, lists)
        });
        let mut rows = Vec::with_capacity(scored.len());
        let mut cached = Vec::with_capacity(scored.len());
        for (row, lists) in scored {
            rows.push(row);
            cached.push(lists);
        }
        (rows, CandidateCache { rows: cached })
    }

    /// Capture a prepared query batch's per-kind candidate lists without
    /// scoring any rows — the walk half of
    /// [`ReferenceSet::feature_matrix_caching`], for callers (threshold
    /// re-tuning) that only need the projections.
    pub fn candidate_cache(
        &self,
        queries: &[PreparedSampleFeatures],
        parallel: ParallelConfig,
    ) -> CandidateCache {
        let rows = par_map_indexed(queries.len(), parallel, |i| {
            self.kinds
                .iter()
                .enumerate()
                .map(|(kind_idx, &kind)| {
                    let mut entries = Vec::new();
                    if let Some(query) = queries[i].get(kind) {
                        self.index[kind_idx].candidates(query, None, &mut entries);
                    }
                    entries
                })
                .collect()
        });
        CandidateCache { rows }
    }

    /// Project one cached query's candidate lists (computed against `self`)
    /// onto `subset`, a reference set whose samples are drawn from `self`'s
    /// with the same active kinds: `map(class, sample)` names the subset's
    /// `(class, sample)` coordinates of one of `self`'s reference samples,
    /// or `None` where the subset dropped it.
    ///
    /// Candidate surfacing is a pairwise `(query, reference hash)`
    /// predicate — shared window key, or the degenerate fast path — so the
    /// projected lists are exactly what walking the subset's own gram index
    /// would surface, without walking it. The equivalence suite asserts
    /// that identity.
    pub fn project_candidates(
        &self,
        cache: &CandidateCache,
        query: usize,
        subset: &ReferenceSet,
        map: impl Fn(u32, u32) -> Option<(u32, u32)>,
    ) -> Vec<Vec<u32>> {
        assert_eq!(
            self.kinds, subset.kinds,
            "projection requires identical active kinds"
        );
        (0..self.kinds.len())
            .map(|kind_idx| {
                let mut projected: Vec<u32> = cache.rows[query][kind_idx]
                    .iter()
                    .filter_map(|&entry| {
                        let (class, sample) = self.index[kind_idx].entries[entry as usize];
                        let (class, sample) = map(class, sample)?;
                        subset.index[kind_idx].entry_of(class, sample)
                    })
                    .collect();
                projected.sort_unstable();
                projected
            })
            .collect()
    }

    /// The full similarity row of one prepared query scored over explicit
    /// per-kind candidate entry lists (from
    /// [`ReferenceSet::project_candidates`]) instead of a fresh gram-index
    /// walk. Byte-identical to [`ReferenceSet::feature_vector_prepared`]
    /// when the lists are what the walk would surface.
    pub fn feature_vector_from_candidates(
        &self,
        sample: &PreparedSampleFeatures,
        candidates: &[Vec<u32>],
    ) -> Vec<f64> {
        assert_eq!(
            candidates.len(),
            self.kinds.len(),
            "one candidate list per active kind"
        );
        let mut row = vec![0.0; self.n_columns()];
        for (kind_idx, &kind) in self.kinds.iter().enumerate() {
            if let Some(query) = sample.get(kind) {
                self.kind_scores_from_entries(
                    kind_idx,
                    query,
                    &candidates[kind_idx],
                    |class, score| {
                        row[self.column_index(kind_idx, class)] = f64::from(score);
                    },
                );
            }
        }
        row
    }

    /// Feature matrix of a batch of samples (rows computed in parallel — the
    /// dominant cost of the whole pipeline), through the precomputed index
    /// with the default training parallelism. For an explicit parallel
    /// configuration, a prepared query batch, or a different scoring
    /// strategy, use a [`crate::backend::SimilarityBackend`] — the pipeline
    /// routes its matrices through the configured backend.
    pub fn feature_matrix(&self, samples: &[SampleFeatures]) -> Vec<Vec<f64>> {
        par_map_indexed(samples.len(), crate::config::default_parallel(), |i| {
            self.feature_vector(&samples[i])
        })
    }

    /// Feature matrix computed by the unindexed scan (the benchmark baseline
    /// twin of [`ReferenceSet::feature_matrix`]).
    pub fn feature_matrix_scan(&self, samples: &[SampleFeatures]) -> Vec<Vec<f64>> {
        par_map_indexed(samples.len(), crate::config::default_parallel(), |i| {
            self.feature_vector_scan(&samples[i])
        })
    }
}

/// Per-query, per-kind candidate entry lists captured during a full-set
/// gram-index walk ([`ReferenceSet::feature_matrix_caching`]). Threshold
/// tuning's inner folds score the same queries against reference *subsets*;
/// because candidate membership is a pairwise predicate, the cached lists
/// project exactly onto any subset ([`ReferenceSet::project_candidates`]),
/// so refit — incremental or full — stops recomputing identical walks.
#[derive(Debug, Clone, Default)]
pub struct CandidateCache {
    /// `rows[query][kind_idx]` = sorted candidate entry ids in the source
    /// reference set (empty when the query lacks the kind's view).
    rows: Vec<Vec<Vec<u32>>>,
}

impl CandidateCache {
    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no queries are cached.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::ElfBuilder;

    fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
        let mut b = ElfBuilder::new();
        // Class-specific code with a small variant-specific region.
        let mut code: Vec<u8> = class_tag
            .bytes()
            .cycle()
            .take(24_000)
            .enumerate()
            .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
            .collect();
        for (i, byte) in code
            .iter_mut()
            .skip((variant as usize * 512) % 20_000)
            .take(256)
            .enumerate()
        {
            *byte ^= (variant as u8).wrapping_add(i as u8);
        }
        b.add_text_section(code);
        b.add_rodata_section(
            format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes(),
        );
        for i in 0..30 {
            b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
        }
        b.add_global_function(&format!("{class_tag}_extra_{variant}"), 30 * 128, 64);
        SampleFeatures::extract(&b.build())
    }

    fn reference() -> (ReferenceSet, Vec<SampleFeatures>) {
        let train = vec![
            make_sample("velvet", 0),
            make_sample("velvet", 1),
            make_sample("openmalaria", 0),
            make_sample("openmalaria", 1),
        ];
        let labels = vec![0, 0, 1, 1];
        let rs = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &labels,
            &FeatureKind::ALL,
        );
        (rs, train)
    }

    #[test]
    fn column_layout_is_kind_major() {
        let (rs, _) = reference();
        assert_eq!(rs.n_columns(), 6);
        let names = rs.column_names();
        assert_eq!(names[0], "ssdeep-file/Velvet");
        assert_eq!(names[1], "ssdeep-file/OpenMalaria");
        assert_eq!(names[4], "ssdeep-symbols/Velvet");
        let kinds = rs.column_kinds();
        assert_eq!(kinds[0], FeatureKind::File);
        assert_eq!(kinds[5], FeatureKind::Symbols);
    }

    #[test]
    fn training_sample_scores_100_against_its_own_class() {
        let (rs, train) = reference();
        let row = rs.feature_vector(&train[0]);
        // Column 0 = file similarity to Velvet (contains this exact sample).
        assert_eq!(row[0], 100.0);
        // Symbols column for Velvet likewise.
        assert_eq!(row[4], 100.0);
    }

    #[test]
    fn new_version_scores_higher_for_its_class() {
        let (rs, _) = reference();
        let unseen_velvet = make_sample("velvet", 7);
        let row = rs.feature_vector(&unseen_velvet);
        let velvet_sym = row[4];
        let malaria_sym = row[5];
        assert!(
            velvet_sym > malaria_sym,
            "velvet sample should be closer to Velvet ({velvet_sym}) than OpenMalaria ({malaria_sym})"
        );
    }

    #[test]
    fn unknown_application_scores_low_everywhere() {
        let (rs, _) = reference();
        let stranger = make_sample("quantumespresso", 3);
        let row = rs.feature_vector(&stranger);
        // The symbols columns are the discriminative ones; a never-seen
        // application should not reach a high symbol similarity with either
        // known class.
        assert!(row[4] < 60.0, "symbols vs Velvet: {}", row[4]);
        assert!(row[5] < 60.0, "symbols vs OpenMalaria: {}", row[5]);
    }

    #[test]
    fn feature_matrix_matches_vectors() {
        let (rs, train) = reference();
        let matrix = rs.feature_matrix(&train);
        assert_eq!(matrix.len(), 4);
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(*row, rs.feature_vector(&train[i]));
            assert_eq!(row.len(), rs.n_columns());
            assert!(row.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    }

    #[test]
    fn ablated_reference_has_fewer_columns() {
        let train = vec![make_sample("velvet", 0)];
        let rs = ReferenceSet::new(vec!["Velvet".into()], &train, &[0], &[FeatureKind::Symbols]);
        assert_eq!(rs.n_columns(), 1);
        assert_eq!(rs.column_names(), vec!["ssdeep-symbols/Velvet"]);
    }

    #[test]
    fn indexed_feature_vector_matches_scan_oracle() {
        let (rs, train) = reference();
        let probes = vec![
            train[0].clone(),
            make_sample("velvet", 9),
            make_sample("openmalaria", 4),
            make_sample("quantumespresso", 1),
        ];
        for probe in &probes {
            assert_eq!(
                rs.feature_vector(probe),
                rs.feature_vector_scan(probe),
                "index and scan disagree"
            );
        }
        let indexed = rs.feature_matrix(&probes);
        let scanned = rs.feature_matrix_scan(&probes);
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn prepared_query_reuses_one_preparation() {
        let (rs, _) = reference();
        let probe = make_sample("velvet", 3);
        let prepared = crate::features::PreparedSampleFeatures::prepare(&probe);
        assert_eq!(
            rs.feature_vector_prepared(&prepared),
            rs.feature_vector(&probe)
        );
    }

    #[test]
    fn prepared_class_features_mirror_plain() {
        let (rs, _) = reference();
        for class in 0..rs.n_classes() {
            let plain = rs.class_features(class);
            let prepared = rs.prepared_class_features(class);
            assert_eq!(plain.len(), prepared.len());
            for (p, q) in plain.iter().zip(prepared) {
                assert_eq!(p, &q.to_sample_features());
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let (rs, train) = reference();
        let (rs2, _) = reference();
        // Deterministic: identical content, identical fingerprint.
        assert_eq!(rs.fingerprint(), rs2.fingerprint());

        // Different class names change it.
        let renamed = ReferenceSet::new(
            vec!["Velvet".into(), "SomethingElse".into()],
            &train,
            &[0, 0, 1, 1],
            &FeatureKind::ALL,
        );
        assert_ne!(rs.fingerprint(), renamed.fingerprint());

        // Different membership changes it.
        let smaller = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train[..3],
            &[0, 0, 1],
            &FeatureKind::ALL,
        );
        assert_ne!(rs.fingerprint(), smaller.fingerprint());

        // Different active kinds change it.
        let ablated = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &[0, 0, 1, 1],
            &[FeatureKind::Symbols],
        );
        assert_ne!(rs.fingerprint(), ablated.fingerprint());
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        let train = vec![make_sample("velvet", 0)];
        let _ = ReferenceSet::new(vec!["Velvet".into()], &train, &[0, 1], &FeatureKind::ALL);
    }

    /// A sample whose three views are hand-built hashes (exercises the
    /// inverted index's edge paths, which generated hashes rarely hit).
    ///
    /// NOTE: `tests/common/mod.rs` (`degenerate_references` /
    /// `degenerate_probes`) is the source of truth for this adversarial
    /// corpus — the workspace integration suites run it through every
    /// backend and over the wire. This in-crate copy exists only because a
    /// unit test cannot import the workspace test crate; when adding a new
    /// adversarial shape, add it there first and mirror it here.
    fn parts_sample(bs: u64, sig: &str, sig_double: &str) -> SampleFeatures {
        let h = ssdeep::FuzzyHash::from_parts(bs, sig.into(), sig_double.into()).unwrap();
        SampleFeatures {
            file: h.clone(),
            strings: h.clone(),
            symbols: Some(h),
        }
    }

    /// The inverted gram index must match the scan oracle on adversarial
    /// hand-built hashes: run-heavy signatures whose eliminated form is
    /// shorter than the 7-byte window (only the identical-hash fast path
    /// can score them), factor-of-two block-size pairings in both
    /// directions (primary-vs-double channels), near-`u64::MAX` block
    /// sizes (doubling overflows), and tiny-block-size score caps.
    #[test]
    fn indexed_matches_scan_on_degenerate_and_factor_two_hashes() {
        let references = vec![
            // Run-heavy: "AAAAAAAAAA" eliminates to "AAA" (no window keys).
            parts_sample(3, "AAAAAAAAAA", "AAAAA"),
            parts_sample(3, "AAAAAAAAAB", "AAAAA"),
            // Normal signatures at block sizes 6 and 12 (factor-two pair).
            parts_sample(6, "ABCDEFGHIJKLMNOP", "ABCDEFGH"),
            parts_sample(12, "ABCDEFGHIJKLMNOP", "QRSTUVWX"),
            parts_sample(24, "QRSTUVWXABCDEFGH", "MNBVCXZL"),
            // Huge block sizes: doubling overflows u64.
            parts_sample(u64::MAX, "ABCDEFGHIJKL", "ABCDEF"),
            parts_sample(u64::MAX / 2 + 1, "ABCDEFGHIJKL", "ABCDEF"),
            // Short signature below the common-substring window.
            parts_sample(3, "ABCDE", "AB"),
        ];
        let labels: Vec<usize> = (0..references.len()).map(|i| i % 3).collect();
        let rs = ReferenceSet::new(
            vec!["a".into(), "b".into(), "c".into()],
            &references,
            &labels,
            &FeatureKind::ALL,
        );
        // Probe with every reference itself (identical-hash paths), plus
        // queries whose block size pairs with references only through the
        // half/double channels, plus a no-match stranger.
        let mut probes = references.clone();
        probes.push(parts_sample(6, "QRSTUVWXABCDEFGH", "ABCDEFGHIJKLMNOP"));
        probes.push(parts_sample(48, "MNBVCXZLKJHGFDSA", "POIUYTRE"));
        probes.push(parts_sample(3, "AAAAAAAAAA", "AAAAA"));
        probes.push(parts_sample(192, "zzzzyyyyxxxxwwww", "vvvvuuuu"));
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(
                rs.feature_vector(probe),
                rs.feature_vector_scan(probe),
                "probe {i}: index and scan disagree"
            );
        }
        // The identical-hash degenerate really does score 100 through the
        // index (a pure gram lookup would have missed it).
        let row = rs.feature_vector(&probes[0]);
        assert_eq!(row[0], 100.0);
    }

    /// Mirror of the workspace `hot_gram_oracle` suite: every reference
    /// shares one 7-byte window, so that gram's posting list holds every
    /// entry of every class and the candidate set degenerates to
    /// "everyone". The index must still match the scan oracle exactly.
    #[test]
    fn indexed_matches_scan_when_every_reference_shares_a_hot_gram() {
        let flanks = [("QxWv", "jKpT"), ("ZeRu", "bNdF"), ("LmCy", "sVgH")];
        let mut references = Vec::new();
        let mut labels = Vec::new();
        for (class, (left, right)) in flanks.iter().enumerate() {
            for (a, b) in [(left, right), (right, left)] {
                references.push(parts_sample(
                    96,
                    &format!("{a}HOTGRAM{b}"),
                    &format!("{b}HOTGRAM{a}"),
                ));
                labels.push(class);
            }
        }
        let rs = ReferenceSet::new(
            vec!["a".into(), "b".into(), "c".into()],
            &references,
            &labels,
            &FeatureKind::ALL,
        );
        let probes = [
            references[0].clone(),
            parts_sample(96, "HOTGRAM", "HOTGRAM"),
            parts_sample(96, "McVnHOTGRAMrGhZ", "kWsEHOTGRAMpLiU"),
            parts_sample(48, "NoMatchFlankXyz", "HOTGRAMabcd"),
            parts_sample(96, "UtterlyUnrelated", "zyxwvuts"),
        ];
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(
                rs.feature_vector(probe),
                rs.feature_vector_scan(probe),
                "probe {i}: index and scan disagree on the hot-gram corpus"
            );
        }
        // The corpus is genuinely hot: the bare window scores against every
        // class, so the shared posting list really admits everyone.
        let hot = rs.feature_vector(&probes[1]);
        for class in 0..rs.n_classes() {
            assert!(
                (0..rs.kinds().len()).any(|k| hot[k * rs.n_classes() + class] != 0.0),
                "the bare HOTGRAM probe must score against class {class}"
            );
        }
    }

    fn prepare_all(samples: &[SampleFeatures]) -> Vec<PreparedSampleFeatures> {
        samples
            .iter()
            .map(PreparedSampleFeatures::prepare)
            .collect()
    }

    /// Assert an evolved set is indistinguishable from rebuilding from
    /// scratch over the same final corpus: identical index structure
    /// (CSR posting lists, entry numbering, degenerate lists), identical
    /// fingerprint, and byte-identical rows — with the scan oracle as the
    /// independent referee.
    fn assert_matches_rebuild(rs: &ReferenceSet, probes: &[SampleFeatures], what: &str) {
        let twin = ReferenceSet::from_prepared_parts(
            rs.class_names.clone(),
            rs.prepared_by_class.clone(),
            rs.kinds.clone(),
        );
        assert_eq!(rs.index, twin.index, "{what}: index structure diverged");
        assert_eq!(rs.fingerprint(), twin.fingerprint(), "{what}: fingerprint");
        for (i, probe) in probes.iter().enumerate() {
            let row = rs.feature_vector(probe);
            assert_eq!(row, twin.feature_vector(probe), "{what}: probe {i} row");
            assert_eq!(row, rs.feature_vector_scan(probe), "{what}: probe {i} scan");
        }
    }

    #[test]
    fn evolved_set_matches_a_from_scratch_rebuild() {
        let (mut rs, _) = reference();
        let probes = vec![
            make_sample("velvet", 9),
            make_sample("openmalaria", 4),
            make_sample("quantumespresso", 1),
            make_sample("gromacs", 2),
        ];
        rs.add_class(
            "QuantumEspresso".into(),
            prepare_all(&[
                make_sample("quantumespresso", 0),
                make_sample("quantumespresso", 2),
            ]),
        )
        .expect("new class");
        assert_matches_rebuild(&rs, &probes, "add_class");
        rs.add_samples(0, prepare_all(&[make_sample("velvet", 5)]))
            .expect("grow first class");
        assert_matches_rebuild(&rs, &probes, "add_samples first class");
        rs.add_samples(
            1,
            prepare_all(&[make_sample("openmalaria", 7), make_sample("openmalaria", 8)]),
        )
        .expect("grow middle class");
        assert_matches_rebuild(&rs, &probes, "add_samples middle class");
        let retired = rs.retire_class(1).expect("retire middle class");
        assert_eq!(retired, "OpenMalaria");
        assert_matches_rebuild(&rs, &probes, "retire middle class");
        rs.retire_class(0).expect("retire first class");
        assert_matches_rebuild(&rs, &probes, "retire first class");
        assert_eq!(rs.class_names(), ["QuantumEspresso"]);
        assert_eq!(rs.class_id("QuantumEspresso"), Some(0));
    }

    /// The evolution ops must stay rebuild-identical on the adversarial
    /// corpus too: run-heavy degenerate hashes (no window keys — their
    /// buckets exist key-less), factor-of-two block-size pairings, and
    /// near-`u64::MAX` block sizes whose buckets are solely owned by one
    /// class (retiring it must drop the bucket, as a rebuild would).
    #[test]
    fn evolution_matches_rebuild_on_degenerate_and_factor_two_hashes() {
        let probes = vec![
            parts_sample(3, "AAAAAAAAAA", "AAAAA"),
            parts_sample(6, "QRSTUVWXABCDEFGH", "ABCDEFGHIJKLMNOP"),
            parts_sample(12, "ABCDEFGHIJKLMNOP", "QRSTUVWX"),
            parts_sample(48, "MNBVCXZLKJHGFDSA", "POIUYTRE"),
            parts_sample(u64::MAX, "ABCDEFGHIJKL", "ABCDEF"),
            parts_sample(192, "zzzzyyyyxxxxwwww", "vvvvuuuu"),
        ];
        let mut rs = ReferenceSet::new(
            vec!["a".into()],
            &[parts_sample(6, "ABCDEFGHIJKLMNOP", "ABCDEFGH")],
            &[0],
            &FeatureKind::ALL,
        );
        rs.add_class(
            "b".into(),
            prepare_all(&[
                parts_sample(3, "AAAAAAAAAA", "AAAAA"),
                parts_sample(12, "ABCDEFGHIJKLMNOP", "QRSTUVWX"),
            ]),
        )
        .expect("class with a degenerate hash");
        assert_matches_rebuild(&rs, &probes, "add degenerate class");
        rs.add_class(
            "c".into(),
            prepare_all(&[
                parts_sample(u64::MAX, "ABCDEFGHIJKL", "ABCDEF"),
                parts_sample(3, "ABCDE", "AB"),
            ]),
        )
        .expect("class with huge block sizes");
        assert_matches_rebuild(&rs, &probes, "add huge-block-size class");
        rs.add_samples(
            0,
            prepare_all(&[
                parts_sample(3, "AAAAAAAAAB", "AAAAA"),
                parts_sample(24, "QRSTUVWXABCDEFGH", "MNBVCXZL"),
            ]),
        )
        .expect("grow first class with a degenerate");
        assert_matches_rebuild(&rs, &probes, "add degenerate samples");
        rs.retire_class(2).expect("retire the sole u64::MAX owner");
        assert_matches_rebuild(&rs, &probes, "retire sole bucket owner");
        rs.retire_class(1).expect("retire the degenerate class");
        assert_matches_rebuild(&rs, &probes, "retire degenerate class");
    }

    #[test]
    fn evolution_rejects_bad_arguments() {
        let (mut rs, _) = reference();
        assert!(matches!(
            rs.add_class("Velvet".into(), Vec::new()),
            Err(FhcError::Artifact(_))
        ));
        assert!(matches!(
            rs.add_samples(9, Vec::new()),
            Err(FhcError::Artifact(_))
        ));
        assert!(matches!(rs.retire_class(2), Err(FhcError::Artifact(_))));
        rs.add_samples(0, Vec::new()).expect("empty add is a no-op");
        assert_eq!(rs.n_classes(), 2);
    }

    /// The candidate cache must project onto reference subsets exactly:
    /// the projected lists equal what the subset's own gram-index walk
    /// would surface, and the rows scored from them are byte-identical to
    /// the subset's direct rows.
    #[test]
    fn cached_candidates_project_onto_subsets() {
        let train = vec![
            make_sample("velvet", 0),
            make_sample("velvet", 1),
            make_sample("velvet", 2),
            make_sample("openmalaria", 0),
            make_sample("openmalaria", 1),
            parts_sample(3, "AAAAAAAAAA", "AAAAA"),
            parts_sample(6, "ABCDEFGHIJKLMNOP", "ABCDEFGH"),
        ];
        let labels = vec![0, 0, 0, 1, 1, 2, 2];
        let full = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into(), "Weird".into()],
            &train,
            &labels,
            &FeatureKind::ALL,
        );
        let queries = prepare_all(&[
            train[1].clone(),
            make_sample("velvet", 7),
            parts_sample(3, "AAAAAAAAAA", "AAAAA"),
            make_sample("gromacs", 1),
        ]);
        let (rows, cache) =
            full.feature_matrix_caching(&queries, crate::config::default_parallel());
        assert_eq!(cache.len(), queries.len());
        for (i, query) in queries.iter().enumerate() {
            assert_eq!(
                rows[i],
                full.feature_vector_prepared(query),
                "cached row {i}"
            );
        }
        // Subset: drop OpenMalaria entirely and Velvet's middle sample —
        // the shape threshold tuning's inner reference takes.
        let subset = ReferenceSet::from_prepared_parts(
            vec!["Velvet".into(), "Weird".into()],
            vec![
                vec![
                    full.prepared_by_class[0][0].clone(),
                    full.prepared_by_class[0][2].clone(),
                ],
                full.prepared_by_class[2].clone(),
            ],
            full.kinds.clone(),
        );
        let map = |class: u32, sample: u32| match (class, sample) {
            (0, 0) => Some((0, 0)),
            (0, 2) => Some((0, 1)),
            (2, sample) => Some((1, sample)),
            _ => None,
        };
        for (i, query) in queries.iter().enumerate() {
            let projected = full.project_candidates(&cache, i, &subset, map);
            for (kind_idx, &kind) in subset.kinds.iter().enumerate() {
                let mut fresh = Vec::new();
                if let Some(hash) = query.get(kind) {
                    subset.index[kind_idx].candidates(hash, None, &mut fresh);
                }
                assert_eq!(
                    projected[kind_idx], fresh,
                    "query {i} kind {kind_idx}: projection is not the subset walk"
                );
            }
            assert_eq!(
                subset.feature_vector_from_candidates(query, &projected),
                subset.feature_vector_prepared(query),
                "query {i}: projected row diverged"
            );
        }
    }

    #[test]
    fn partial_row_cells_union_to_the_full_row() {
        let (rs, _) = reference();
        let probe = PreparedSampleFeatures::prepare(&make_sample("velvet", 5));
        let full = rs.feature_vector_prepared(&probe);
        for split in [vec![vec![0usize], vec![1usize]], vec![vec![0usize, 1]]] {
            let mut merged = vec![0.0f64; rs.n_columns()];
            let mut n_cells = 0;
            for classes in &split {
                for (column, score) in rs.partial_row_cells(classes, &probe) {
                    merged[column] = merged[column].max(score);
                    n_cells += 1;
                }
            }
            assert_eq!(merged, full, "split {split:?}");
            assert_eq!(n_cells, rs.n_columns(), "every owned cell present");
        }
    }
}
