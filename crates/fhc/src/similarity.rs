//! The similarity feature matrix.
//!
//! The paper: "We compute a feature matrix for our dataset based on the
//! SSDeep fuzzy hash similarity between sample features." Concretely, the
//! Random Forest needs a fixed-length numeric vector per sample. We give it,
//! for every *known* application class and every hash view, the maximum
//! SSDeep similarity between the sample and that class's training samples:
//!
//! ```text
//! x[sample] = [ max_sim(file,   class_0), ..., max_sim(file,   class_K-1),
//!               max_sim(strings,class_0), ..., max_sim(strings,class_K-1),
//!               max_sim(symbols,class_0), ..., max_sim(symbols,class_K-1) ]
//! ```
//!
//! Grouping columns by hash view is what lets the pipeline aggregate the
//! forest's per-column importances into the three per-feature numbers of the
//! paper's Table 5.

use crate::features::{FeatureKind, SampleFeatures};
use hpcutil::{par_map_indexed, ParallelConfig};

/// Reference hashes the feature matrix is computed against: the training
/// samples of each known class.
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    /// Known class names, indexed by known-class id (the forest's label
    /// space).
    class_names: Vec<String>,
    /// Training sample features grouped by known-class id.
    by_class: Vec<Vec<SampleFeatures>>,
    /// Which feature kinds are active (ablations disable some).
    kinds: Vec<FeatureKind>,
}

impl ReferenceSet {
    /// Group training samples by their known-class label.
    ///
    /// `labels[i]` is the known-class id of `features[i]` and must be
    /// `< class_names.len()`.
    pub fn new(
        class_names: Vec<String>,
        features: &[SampleFeatures],
        labels: &[usize],
        kinds: &[FeatureKind],
    ) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features and labels must align"
        );
        let mut by_class: Vec<Vec<SampleFeatures>> = vec![Vec::new(); class_names.len()];
        for (f, &l) in features.iter().zip(labels) {
            by_class[l].push(f.clone());
        }
        Self {
            class_names,
            by_class,
            kinds: kinds.to_vec(),
        }
    }

    /// Known class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of known classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Active feature kinds.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// The training-sample features of one known class (used when
    /// serializing the reference set into a classifier artifact).
    pub fn class_features(&self, class: usize) -> &[SampleFeatures] {
        &self.by_class[class]
    }

    /// Number of columns in the feature matrix
    /// (`n_classes * active feature kinds`).
    pub fn n_columns(&self) -> usize {
        self.n_classes() * self.kinds.len()
    }

    /// Column names, grouped by feature kind then class
    /// (e.g. `ssdeep-symbols/Velvet`).
    pub fn column_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for class in &self.class_names {
                names.push(format!("{}/{}", kind.paper_name(), class));
            }
        }
        names
    }

    /// The feature kind each column belongs to (for importance aggregation).
    pub fn column_kinds(&self) -> Vec<FeatureKind> {
        let mut kinds = Vec::with_capacity(self.n_columns());
        for kind in &self.kinds {
            for _ in 0..self.n_classes() {
                kinds.push(*kind);
            }
        }
        kinds
    }

    /// Feature vector of one sample: per active kind, per known class, the
    /// maximum similarity against that class's training samples, scaled to
    /// `0.0..=100.0`.
    pub fn feature_vector(&self, sample: &SampleFeatures) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.n_columns());
        for &kind in &self.kinds {
            for class_samples in &self.by_class {
                let best = class_samples
                    .iter()
                    .map(|train| sample.similarity(train, kind))
                    .max()
                    .unwrap_or(0);
                row.push(f64::from(best));
            }
        }
        row
    }

    /// Feature matrix of a batch of samples (rows computed in parallel — the
    /// dominant cost of the whole pipeline).
    pub fn feature_matrix(&self, samples: &[SampleFeatures]) -> Vec<Vec<f64>> {
        par_map_indexed(
            samples.len(),
            ParallelConfig {
                threads: 0,
                chunk: 4,
            },
            |i| self.feature_vector(&samples[i]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::ElfBuilder;

    fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
        let mut b = ElfBuilder::new();
        // Class-specific code with a small variant-specific region.
        let mut code: Vec<u8> = class_tag
            .bytes()
            .cycle()
            .take(24_000)
            .enumerate()
            .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
            .collect();
        for (i, byte) in code
            .iter_mut()
            .skip((variant as usize * 512) % 20_000)
            .take(256)
            .enumerate()
        {
            *byte ^= (variant as u8).wrapping_add(i as u8);
        }
        b.add_text_section(code);
        b.add_rodata_section(
            format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes(),
        );
        for i in 0..30 {
            b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
        }
        b.add_global_function(&format!("{class_tag}_extra_{variant}"), 30 * 128, 64);
        SampleFeatures::extract(&b.build())
    }

    fn reference() -> (ReferenceSet, Vec<SampleFeatures>) {
        let train = vec![
            make_sample("velvet", 0),
            make_sample("velvet", 1),
            make_sample("openmalaria", 0),
            make_sample("openmalaria", 1),
        ];
        let labels = vec![0, 0, 1, 1];
        let rs = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into()],
            &train,
            &labels,
            &FeatureKind::ALL,
        );
        (rs, train)
    }

    #[test]
    fn column_layout_is_kind_major() {
        let (rs, _) = reference();
        assert_eq!(rs.n_columns(), 6);
        let names = rs.column_names();
        assert_eq!(names[0], "ssdeep-file/Velvet");
        assert_eq!(names[1], "ssdeep-file/OpenMalaria");
        assert_eq!(names[4], "ssdeep-symbols/Velvet");
        let kinds = rs.column_kinds();
        assert_eq!(kinds[0], FeatureKind::File);
        assert_eq!(kinds[5], FeatureKind::Symbols);
    }

    #[test]
    fn training_sample_scores_100_against_its_own_class() {
        let (rs, train) = reference();
        let row = rs.feature_vector(&train[0]);
        // Column 0 = file similarity to Velvet (contains this exact sample).
        assert_eq!(row[0], 100.0);
        // Symbols column for Velvet likewise.
        assert_eq!(row[4], 100.0);
    }

    #[test]
    fn new_version_scores_higher_for_its_class() {
        let (rs, _) = reference();
        let unseen_velvet = make_sample("velvet", 7);
        let row = rs.feature_vector(&unseen_velvet);
        let velvet_sym = row[4];
        let malaria_sym = row[5];
        assert!(
            velvet_sym > malaria_sym,
            "velvet sample should be closer to Velvet ({velvet_sym}) than OpenMalaria ({malaria_sym})"
        );
    }

    #[test]
    fn unknown_application_scores_low_everywhere() {
        let (rs, _) = reference();
        let stranger = make_sample("quantumespresso", 3);
        let row = rs.feature_vector(&stranger);
        // The symbols columns are the discriminative ones; a never-seen
        // application should not reach a high symbol similarity with either
        // known class.
        assert!(row[4] < 60.0, "symbols vs Velvet: {}", row[4]);
        assert!(row[5] < 60.0, "symbols vs OpenMalaria: {}", row[5]);
    }

    #[test]
    fn feature_matrix_matches_vectors() {
        let (rs, train) = reference();
        let matrix = rs.feature_matrix(&train);
        assert_eq!(matrix.len(), 4);
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(*row, rs.feature_vector(&train[i]));
            assert_eq!(row.len(), rs.n_columns());
            assert!(row.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    }

    #[test]
    fn ablated_reference_has_fewer_columns() {
        let train = vec![make_sample("velvet", 0)];
        let rs = ReferenceSet::new(vec!["Velvet".into()], &train, &[0], &[FeatureKind::Symbols]);
        assert_eq!(rs.n_columns(), 1);
        assert_eq!(rs.column_names(), vec!["ssdeep-symbols/Velvet"]);
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        let train = vec![make_sample("velvet", 0)];
        let _ = ReferenceSet::new(vec!["Velvet".into()], &train, &[0, 1], &FeatureKind::ALL);
    }
}
