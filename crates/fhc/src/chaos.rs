//! Seeded chaos harness for the serving stack.
//!
//! Compiled only with the `failpoints` feature (see
//! [`hpcutil::failpoint`]), this module drives hundreds of in-process
//! serving rounds with deterministic fault injection and checks the one
//! invariant the whole serving tier promises:
//!
//! > Every query either returns rows **byte-identical** to the scan
//! > oracle, or fails with a **typed** [`FhcError::Net`] — never a wrong,
//! > partial, or duplicated row. And once the fault schedule is cleared,
//! > the stack converges back to serving with zero errors.
//!
//! Each round derives its own seed from the run's root seed (via
//! [`hpcutil::SeedSequence`]), picks one of the persistent serving stacks
//! (remote fan-out, replicated fleet, batching gateway, named tenant),
//! arms a generated failpoint spec, fires a burst of queries, disarms,
//! and then retries until the stack heals. A violation reports the root
//! seed, the round index, and the exact spec, so any failure replays with
//! `fhc-chaos --seed N` (or the `chaos_soak` integration test).

use crate::backend::{BackendConfig, SimilarityBackend};
use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use crate::shardnet::gateway::{self, Gateway, GatewayBackend, GatewayOptions};
use crate::shardnet::worker::{self, ShardWorker, TenantHost};
use crate::shardnet::{Endpoint, FleetBackend, FleetShard, FleetTopology, NetError, RemoteBackend};
use crate::similarity::ReferenceSet;
use hpcutil::failpoint;
use hpcutil::SeedSequence;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Everything one chaos run needs to be reproduced exactly.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed; every round's schedule derives from it.
    pub seed: u64,
    /// How many fault-injection rounds to run.
    pub rounds: u64,
    /// Queries fired per round while the fault schedule is armed.
    pub queries: usize,
    /// Print a line per round (the `fhc-chaos` binary turns this on).
    pub verbose: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A05,
            rounds: 200,
            queries: 5,
            verbose: false,
        }
    }
}

/// What a completed (violation-free) run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Rounds completed.
    pub rounds: u64,
    /// Queries answered with rows byte-identical to the scan oracle while
    /// faults were armed.
    pub clean_rows: u64,
    /// Queries answered with a typed [`FhcError::Net`] while faults were
    /// armed (the only failure shape the invariant allows).
    pub typed_errors: u64,
    /// Fresh connect attempts exercised under fire (handshake, reference
    /// push) that failed with a typed error.
    pub refused_connects: u64,
}

/// Bound on the post-`clear` healing loop: attempts × sleep is the
/// longest a stack gets to converge before the round is a violation.
const CONVERGE_ATTEMPTS: usize = 500;
const CONVERGE_PAUSE: Duration = Duration::from_millis(5);

/// Run the chaos soak. `Ok` carries the run's tally; `Err` is a violation
/// message naming the root seed, round, stack, and armed spec — everything
/// needed to replay it.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let harness = Harness::build().map_err(|e| format!("chaos harness failed to build: {e}"))?;
    let seq = SeedSequence::new(config.seed);
    let mut report = ChaosReport {
        rounds: 0,
        clean_rows: 0,
        typed_errors: 0,
        refused_connects: 0,
    };
    // Whatever happened before this run, start disarmed.
    failpoint::clear();
    for round in 0..config.rounds {
        let round_seed = seq.derive_indexed("chaos-round", round);
        let mut rng = ChaCha8Rng::seed_from_u64(round_seed);
        let stack = rng.gen_range(0..harness.stacks.len());
        let (stack_name, backend) = &harness.stacks[stack];
        let spec = generate_spec(&mut rng);
        let blame = |what: String| {
            format!(
                "chaos violation at round {round} on the {stack_name} stack \
                 (root seed {}, spec {spec:?}): {what}",
                config.seed
            )
        };
        failpoint::configure(&spec).map_err(|e| blame(format!("spec rejected: {e}")))?;
        if config.verbose {
            println!("round {round:>4} [{stack_name:>7}] arming {spec}");
        }

        // The burst under fire: every answer is a byte-identical row or a
        // typed net error.
        for _ in 0..config.queries {
            let probe = rng.gen_range(0..harness.probes.len());
            let (query, oracle_bits) = &harness.probes[probe];
            match harness.score_bits(backend.as_ref(), query) {
                Ok(bits) if &bits == oracle_bits => report.clean_rows += 1,
                Ok(bits) => {
                    failpoint::clear();
                    return Err(blame(format!(
                        "row diverged from the scan oracle on probe {probe} \
                         ({} of {} cells differ)",
                        bits.iter().zip(oracle_bits).filter(|(a, b)| a != b).count(),
                        bits.len()
                    )));
                }
                Err(FhcError::Net(_)) => report.typed_errors += 1,
                Err(other) => {
                    failpoint::clear();
                    return Err(blame(format!("untyped failure {other}")));
                }
            }
        }

        // Sometimes also exercise the connect-time paths under fire: a
        // fresh fan-out handshake, or a fresh fleet seeding a brand-new
        // diskless worker over PushSlice frames. Either connects and
        // scores correctly, or refuses with a typed error.
        if rng.gen_bool(0.25) {
            let fresh: Result<Box<dyn SimilarityBackend>, NetError> = if rng.gen_bool(0.5) {
                RemoteBackend::connect(Arc::clone(&harness.reference), &harness.worker_endpoints)
                    .map(|b| Box::new(b) as Box<dyn SimilarityBackend>)
            } else {
                harness
                    .connect_fresh_diskless_fleet()
                    .map(|b| Box::new(b) as Box<dyn SimilarityBackend>)
            };
            match fresh {
                Err(_) => report.refused_connects += 1,
                Ok(backend) => {
                    let (query, oracle_bits) = &harness.probes[0];
                    match harness.score_bits(backend.as_ref(), query) {
                        Ok(bits) if &bits == oracle_bits => report.clean_rows += 1,
                        Ok(_) => {
                            failpoint::clear();
                            return Err(blame(
                                "fresh connect served a row diverging from the oracle".into(),
                            ));
                        }
                        Err(FhcError::Net(_)) => report.typed_errors += 1,
                        Err(other) => {
                            failpoint::clear();
                            return Err(blame(format!("fresh connect failed untyped: {other}")));
                        }
                    }
                }
            }
        }

        // Disarm and demand convergence: one full pass where every probe
        // answers byte-identically, within the healing budget.
        failpoint::clear();
        harness
            .converge(backend.as_ref())
            .map_err(|what| blame(format!("after clearing the schedule, {what}")))?;
        report.rounds += 1;
    }
    Ok(report)
}

/// The persistent serving stacks the rounds rotate over, plus the probe
/// queries and their scan-oracle rows.
struct Harness {
    reference: Arc<ReferenceSet>,
    worker_endpoints: Vec<Endpoint>,
    stacks: Vec<(&'static str, Box<dyn SimilarityBackend>)>,
    /// `(prepared query, scan-oracle row bits)` pairs.
    probes: Vec<(PreparedSampleFeatures, Vec<u64>)>,
}

impl Harness {
    fn build() -> Result<Self, NetError> {
        let reference = chaos_reference();

        // Two plain workers shared by the remote, fleet, and gateway
        // stacks; each connection negotiates its own partition, so the
        // same pair serves fan-out clients and the gateway's shards alike.
        let worker_endpoints = vec![
            spawn_worker(Arc::clone(&reference)),
            spawn_worker(Arc::clone(&reference)),
        ];

        // A tenant host serving the same reference under a named tenant.
        let mut host = TenantHost::new();
        host.register(
            crate::shardnet::wire::DEFAULT_TENANT,
            Some(ShardWorker::all_classes(Arc::clone(&reference))),
        )?;
        host.register(
            "acme",
            Some(ShardWorker::all_classes(Arc::clone(&reference))),
        )?;
        let tenant_endpoint = spawn_host(Arc::new(host));

        let remote = RemoteBackend::connect(Arc::clone(&reference), &worker_endpoints)?;
        let fleet =
            FleetBackend::connect(Arc::clone(&reference), fleet_topology(&worker_endpoints))?;
        let gateway = Gateway::connect(
            Arc::clone(&reference),
            &worker_endpoints,
            GatewayOptions::default(),
        )?;
        let front = spawn_gateway(gateway);
        let gateway = GatewayBackend::connect(Arc::clone(&reference), &front)?;
        let tenant = FleetBackend::connect_tenant(
            Arc::clone(&reference),
            FleetTopology::new(vec![FleetShard::solo(tenant_endpoint.clone())]),
            Some("acme"),
        )?;
        let stacks: Vec<(&'static str, Box<dyn SimilarityBackend>)> = vec![
            ("remote", Box::new(remote)),
            ("fleet", Box::new(fleet)),
            ("gateway", Box::new(gateway)),
            ("tenant", Box::new(tenant)),
        ];

        let oracle = BackendConfig::Scan.build(Arc::clone(&reference));
        let probes = probe_bodies()
            .into_iter()
            .map(|body| {
                let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(body));
                let mut row = vec![0.0f64; reference.n_columns()];
                oracle.max_scores_into(&query, &mut row);
                let bits = row.into_iter().map(f64::to_bits).collect();
                (query, bits)
            })
            .collect();

        Ok(Self {
            reference,
            worker_endpoints,
            stacks,
            probes,
        })
    }

    /// Score one probe through `backend`, returning the row as bit
    /// patterns (exact comparison, no float tolerance).
    fn score_bits(
        &self,
        backend: &dyn SimilarityBackend,
        query: &PreparedSampleFeatures,
    ) -> Result<Vec<u64>, FhcError> {
        let mut row = vec![f64::NAN; self.reference.n_columns()];
        backend.try_max_scores_into(query, &mut row)?;
        Ok(row.into_iter().map(f64::to_bits).collect())
    }

    /// A brand-new diskless worker, seeded over the wire by a fresh fleet
    /// connect — the `fleet.push_slice` / `remote.handshake` sites fire on
    /// this path while a schedule is armed.
    fn connect_fresh_diskless_fleet(&self) -> Result<FleetBackend, NetError> {
        let host = Arc::new(TenantHost::single(None));
        let endpoint = spawn_host(host);
        FleetBackend::connect(
            Arc::clone(&self.reference),
            FleetTopology::new(vec![FleetShard::solo(endpoint)]),
        )
    }

    /// One full clean pass over every probe, retried within the healing
    /// budget. Typed errors while connections re-dial are expected; a
    /// wrong row is an instant violation.
    fn converge(&self, backend: &dyn SimilarityBackend) -> Result<(), String> {
        let mut last_error = String::new();
        for _ in 0..CONVERGE_ATTEMPTS {
            let mut clean = true;
            for (probe, (query, oracle_bits)) in self.probes.iter().enumerate() {
                match self.score_bits(backend, query) {
                    Ok(bits) if &bits == oracle_bits => {}
                    Ok(_) => {
                        return Err(format!(
                            "probe {probe} healed into a row diverging from the oracle"
                        ));
                    }
                    Err(FhcError::Net(e)) => {
                        clean = false;
                        last_error = e.to_string();
                        break;
                    }
                    Err(other) => return Err(format!("probe {probe} failed untyped: {other}")),
                }
            }
            if clean {
                return Ok(());
            }
            std::thread::sleep(CONVERGE_PAUSE);
        }
        Err(format!(
            "the stack never converged within {CONVERGE_ATTEMPTS} attempts \
             (last error: {last_error})"
        ))
    }
}

/// The reference set every stack serves: a few classes with enough
/// shared phrasing that similarity rows are dense and any merge mistake
/// (dropped shard, duplicated cell) moves bytes.
fn chaos_reference() -> Arc<ReferenceSet> {
    let train = vec![
        SampleFeatures::extract(b"the velvet assembler executable body one"),
        SampleFeatures::extract(b"the velvet assembler executable body two"),
        SampleFeatures::extract(b"an openmalaria simulation binary payload"),
        SampleFeatures::extract(b"an openmalaria simulation binary variant"),
        SampleFeatures::extract(b"gromacs molecular dynamics engine build"),
    ];
    Arc::new(ReferenceSet::new(
        vec!["Velvet".into(), "OpenMalaria".into(), "Gromacs".into()],
        &train,
        &[0, 0, 1, 1, 2],
        &FeatureKind::ALL,
    ))
}

fn probe_bodies() -> Vec<&'static [u8]> {
    vec![
        b"the velvet assembler executable body probe".as_slice(),
        b"an openmalaria simulation binary probe".as_slice(),
        b"gromacs molecular dynamics probe build".as_slice(),
        b"entirely unrelated probe bytes".as_slice(),
    ]
}

/// Both shards replicated on both workers: primaries crossed so hedging
/// and failover have somewhere to go, with tight tunings so redial and
/// hedge waits cost milliseconds, not the production defaults.
fn fleet_topology(endpoints: &[Endpoint]) -> FleetTopology {
    let spec = format!(
        "{};replica={};{};replica={};hedge_ms=5,1,40;backoff_ms=2,50",
        endpoints[0], endpoints[1], endpoints[1], endpoints[0]
    );
    spec.parse().expect("the chaos fleet spec parses")
}

fn spawn_worker(reference: Arc<ReferenceSet>) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
    let addr = listener.local_addr().expect("worker addr").to_string();
    let shard = Arc::new(ShardWorker::all_classes(reference));
    std::thread::spawn(move || worker::serve_tcp(shard, listener));
    Endpoint::Tcp(addr)
}

fn spawn_host(host: Arc<TenantHost>) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback host");
    let addr = listener.local_addr().expect("host addr").to_string();
    std::thread::spawn(move || worker::serve_host_tcp(host, listener));
    Endpoint::Tcp(addr)
}

fn spawn_gateway(gateway: Gateway) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback gateway");
    let addr = listener.local_addr().expect("gateway addr").to_string();
    let gateway = Arc::new(gateway);
    std::thread::spawn(move || gateway::serve_tcp(gateway, listener));
    Endpoint::Tcp(addr)
}

/// Generate one round's failpoint spec: one to three distinct sites, each
/// with an action that makes sense there and a finite-or-probabilistic
/// schedule, all drawn from the round's seeded rng.
fn generate_spec(rng: &mut ChaCha8Rng) -> String {
    let mut sites: Vec<&'static str> = failpoint::SITES.to_vec();
    let count = rng.gen_range(1..4usize);
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        if sites.is_empty() {
            break;
        }
        let site = sites.swap_remove(rng.gen_range(0..sites.len()));
        items.push(format!(
            "{site}={}@{}",
            generate_action(rng, site),
            generate_schedule(rng)
        ));
    }
    items.join(";")
}

fn generate_action(rng: &mut ChaCha8Rng, site: &str) -> String {
    // The pool site only honours delays (a job cannot "fail" — see the
    // probe in `hpcutil::pool`), and the checksum site injects a mismatch
    // whatever the action says; everywhere else the full palette applies.
    if site == "pool.job" {
        return format!("delay:{}", rng.gen_range(1..4u64));
    }
    if site == "frame.checksum" {
        return "err_io".to_string();
    }
    match rng.gen_range(0..5u32) {
        0 => "err_io".to_string(),
        1 => "close_conn".to_string(),
        2 => format!("delay:{}", rng.gen_range(1..4u64)),
        3 => format!("corrupt:{}", rng.gen_range(0..512usize)),
        _ => format!("truncate:{}", rng.gen_range(0..256usize)),
    }
}

fn generate_schedule(rng: &mut ChaCha8Rng) -> String {
    match rng.gen_range(0..3u32) {
        0 => {
            // One or two exact ordinals early in the round's hit stream.
            let first = rng.gen_range(1..5u64);
            if rng.gen_bool(0.5) {
                format!("{first},{}", first + rng.gen_range(1..5u64))
            } else {
                format!("{first}")
            }
        }
        1 => format!("every:{}", rng.gen_range(2..6u64)),
        _ => format!(
            "rand:{}:{}",
            rng.gen_range(0..1_000_000u64),
            rng.gen_range(10..41u32)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // No test here arms the registry: it is process-global, and the lib
    // test binary runs concurrently. The actual soak lives in
    // `tests/chaos_soak.rs`, a binary this module's rounds own outright.

    #[test]
    fn generated_specs_are_seed_deterministic_and_well_formed() {
        for seed in 0..64u64 {
            let spec = generate_spec(&mut ChaCha8Rng::seed_from_u64(seed));
            let again = generate_spec(&mut ChaCha8Rng::seed_from_u64(seed));
            assert_eq!(spec, again, "seed {seed} must regenerate its spec");
            let mut seen = std::collections::HashSet::new();
            for item in spec.split(';') {
                let (site, rest) = item.split_once('=').expect("SITE=ACTION[@SCHED]");
                assert!(
                    failpoint::SITES.contains(&site),
                    "site {site:?} is registered"
                );
                assert!(seen.insert(site.to_string()), "sites are distinct");
                assert!(rest.contains('@'), "every item carries a schedule: {item}");
            }
        }
    }

    #[test]
    fn the_chaos_fleet_topology_round_trips_with_tight_tunings() {
        let endpoints = [
            Endpoint::Tcp("host1:9000".into()),
            Endpoint::Tcp("host2:9000".into()),
        ];
        let topology = fleet_topology(&endpoints);
        assert_eq!(topology.shards.len(), 2);
        assert_eq!(topology.tuning.hedge_cold, Duration::from_millis(5));
        assert_eq!(topology.tuning.backoff.cap, Duration::from_millis(50));
        let reparsed: FleetTopology = topology.to_string().parse().expect("display round-trips");
        assert_eq!(reparsed, topology);
    }
}
