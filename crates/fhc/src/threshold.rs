//! Confidence thresholding and the threshold sweep (paper Figure 3).
//!
//! The forest predicts a probability distribution over the *known* classes.
//! If the winning class's probability is below the confidence threshold the
//! sample is labeled `"-1"` (unknown). The threshold is a hyper-parameter
//! tuned inside the training set: a portion of the known classes is held out
//! as pseudo-unknown, and the threshold that maximizes the combined micro /
//! macro / weighted F1 on that internal validation set is chosen — which is
//! exactly the curve the paper plots in Figure 3.

use mlcore::metrics::{f1_score, Average};

/// Evaluation-space label of the unknown class. The evaluation label space
/// is `0 = "-1" (unknown)` followed by the known classes, mirroring the
/// paper's report where the unknown class is listed as `-1`.
pub const UNKNOWN_LABEL: usize = 0;

/// Convert a known-class id (forest label space) to the evaluation label
/// space (shifted by one to make room for the unknown label).
pub fn known_to_eval(known_class: usize) -> usize {
    known_class + 1
}

/// Apply a confidence threshold to one probability vector over known
/// classes, returning an evaluation-space label.
pub fn apply_threshold(proba: &[f64], threshold: f64) -> usize {
    let mut best = 0usize;
    let mut best_p = f64::NEG_INFINITY;
    for (i, &p) in proba.iter().enumerate() {
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    if best_p < threshold {
        UNKNOWN_LABEL
    } else {
        known_to_eval(best)
    }
}

/// Apply a threshold to a batch of probability vectors.
pub fn apply_threshold_batch(probas: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    probas
        .iter()
        .map(|p| apply_threshold(p, threshold))
        .collect()
}

/// One point of the threshold sweep: the three averaged F1 scores at a given
/// confidence threshold (the series plotted in Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The confidence threshold.
    pub threshold: f64,
    /// Micro-averaged F1 at this threshold.
    pub micro_f1: f64,
    /// Macro-averaged F1 at this threshold.
    pub macro_f1: f64,
    /// Support-weighted F1 at this threshold.
    pub weighted_f1: f64,
}

impl ThresholdPoint {
    /// The selection criterion: the sum of the three F1 scores (the paper
    /// chooses "the confidence threshold that maximizes the combined micro,
    /// macro, and weighted f1-scores").
    pub fn combined(&self) -> f64 {
        self.micro_f1 + self.macro_f1 + self.weighted_f1
    }
}

/// Sweep a set of candidate thresholds against validation predictions.
///
/// `y_true` is in evaluation space (0 = unknown), `probas` are the forest's
/// probability vectors over known classes for the same samples, and
/// `n_eval_classes` is `1 + number of known classes`.
pub fn sweep_thresholds(
    y_true: &[usize],
    probas: &[Vec<f64>],
    n_eval_classes: usize,
    thresholds: &[f64],
) -> Vec<ThresholdPoint> {
    thresholds
        .iter()
        .map(|&threshold| {
            let y_pred = apply_threshold_batch(probas, threshold);
            ThresholdPoint {
                threshold,
                micro_f1: f1_score(y_true, &y_pred, n_eval_classes, Average::Micro),
                macro_f1: f1_score(y_true, &y_pred, n_eval_classes, Average::Macro),
                weighted_f1: f1_score(y_true, &y_pred, n_eval_classes, Average::Weighted),
            }
        })
        .collect()
}

/// The threshold with the best combined score (ties go to the lower
/// threshold, which keeps more samples classified).
pub fn best_threshold(points: &[ThresholdPoint]) -> Option<f64> {
    points
        .iter()
        .max_by(|a, b| {
            a.combined()
                .partial_cmp(&b.combined())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.threshold
                        .partial_cmp(&a.threshold)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
        .map(|p| p.threshold)
}

/// The default candidate grid used by the pipeline (0.0 to 0.9).
pub fn default_threshold_grid() -> Vec<f64> {
    (0..10).map(|i| i as f64 * 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_confidence_keeps_class_low_confidence_goes_unknown() {
        let proba = vec![0.1, 0.7, 0.2];
        assert_eq!(apply_threshold(&proba, 0.5), known_to_eval(1));
        assert_eq!(apply_threshold(&proba, 0.8), UNKNOWN_LABEL);
        assert_eq!(apply_threshold(&proba, 0.0), known_to_eval(1));
    }

    #[test]
    fn batch_matches_single() {
        let probas = vec![vec![0.9, 0.1], vec![0.4, 0.6], vec![0.5, 0.5]];
        let batch = apply_threshold_batch(&probas, 0.55);
        assert_eq!(
            batch,
            vec![known_to_eval(0), known_to_eval(1), UNKNOWN_LABEL]
        );
    }

    #[test]
    fn sweep_reports_one_point_per_threshold() {
        // Two known classes; sample 0 truly class 1 (eval 2), sample 1 truly
        // unknown.
        let y_true = vec![2, UNKNOWN_LABEL];
        let probas = vec![vec![0.2, 0.8], vec![0.55, 0.45]];
        let points = sweep_thresholds(&y_true, &probas, 3, &[0.0, 0.6, 0.9]);
        assert_eq!(points.len(), 3);
        // At threshold 0.0 the unknown sample is mislabeled as class 0.
        assert!(points[0].micro_f1 < 1.0);
        // At threshold 0.6 both are right: class 1 kept, unknown rejected.
        assert!((points[1].micro_f1 - 1.0).abs() < 1e-9);
        assert!((points[1].macro_f1 - 1.0).abs() < 1e-9);
        // At threshold 0.9 everything is unknown; class 1 recall collapses.
        assert!(points[2].macro_f1 < points[1].macro_f1);
    }

    #[test]
    fn best_threshold_maximizes_combined_score() {
        let y_true = vec![2, UNKNOWN_LABEL, 1];
        let probas = vec![vec![0.2, 0.8], vec![0.55, 0.45], vec![0.95, 0.05]];
        let grid = default_threshold_grid();
        let points = sweep_thresholds(&y_true, &probas, 3, &grid);
        let best = best_threshold(&points).unwrap();
        assert!(best > 0.55 && best < 0.81, "best threshold {best}");
    }

    #[test]
    fn best_threshold_of_empty_sweep_is_none() {
        assert_eq!(best_threshold(&[]), None);
    }

    #[test]
    fn default_grid_is_sorted_in_unit_interval() {
        let grid = default_threshold_grid();
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&t| (0.0..1.0).contains(&t)));
    }

    #[test]
    fn combined_is_sum_of_scores() {
        let p = ThresholdPoint {
            threshold: 0.3,
            micro_f1: 0.5,
            macro_f1: 0.25,
            weighted_f1: 0.75,
        };
        assert!((p.combined() - 1.5).abs() < 1e-12);
    }
}
