//! Fuzzy-hash feature extraction from executable bytes.
//!
//! Section 3 of the paper ("Feature Extraction") fuzzy-hashes three views of
//! every application executable:
//!
//! 1. **`ssdeep-file`** — the raw binary content of the file,
//! 2. **`ssdeep-strings`** — the continuous printable characters (the output
//!    of `strings`),
//! 3. **`ssdeep-symbols`** — the global text symbols from the symbol table
//!    (the output of `nm`).
//!
//! [`SampleFeatures::extract`] reproduces that extraction, and
//! [`FeatureKind`] names the three views throughout the pipeline (feature
//! matrix column grouping, importance aggregation, ablations).

use binary::elf::ElfFile;
use binary::strings::strings_blob;
use binary::symbols::symbols_blob;
use hpcutil::{par_map, ParallelConfig};
use ssdeep::{compare, compare_prepared, fuzzy_hash_bytes, FuzzyHash, PreparedHash};

/// Minimum printable-run length for the strings view (`strings -n 4`).
pub const STRINGS_MIN_LENGTH: usize = 4;

/// The three fuzzy-hashed views of an executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Fuzzy hash of the raw file bytes.
    File,
    /// Fuzzy hash of the printable strings.
    Strings,
    /// Fuzzy hash of the global defined symbol names.
    Symbols,
}

impl FeatureKind {
    /// All feature kinds, in the order the paper lists them.
    pub const ALL: [FeatureKind; 3] = [
        FeatureKind::File,
        FeatureKind::Strings,
        FeatureKind::Symbols,
    ];

    /// The paper's name for the feature (`ssdeep-file`, `ssdeep-strings`,
    /// `ssdeep-symbols`).
    pub fn paper_name(&self) -> &'static str {
        match self {
            FeatureKind::File => "ssdeep-file",
            FeatureKind::Strings => "ssdeep-strings",
            FeatureKind::Symbols => "ssdeep-symbols",
        }
    }
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The fuzzy hashes of one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleFeatures {
    /// Fuzzy hash of the raw file content.
    pub file: FuzzyHash,
    /// Fuzzy hash of the `strings` output.
    pub strings: FuzzyHash,
    /// Fuzzy hash of the `nm -g --defined-only` name list, if the executable
    /// still has a symbol table. Stripped binaries have `None`, which the
    /// paper lists as a limitation of the approach.
    pub symbols: Option<FuzzyHash>,
}

impl SampleFeatures {
    /// Extract the three fuzzy-hash features from executable bytes.
    ///
    /// Files that are not parseable ELF still get `file` and `strings`
    /// features (both work on raw bytes); only the symbols view requires an
    /// intact ELF symbol table.
    pub fn extract(bytes: &[u8]) -> Self {
        let file = fuzzy_hash_bytes(bytes);
        let strings = fuzzy_hash_bytes(&strings_blob(bytes, STRINGS_MIN_LENGTH));
        let symbols = match ElfFile::parse(bytes) {
            Ok(elf) => {
                let blob = symbols_blob(&elf);
                if blob.is_empty() {
                    None
                } else {
                    Some(fuzzy_hash_bytes(&blob))
                }
            }
            Err(_) => None,
        };
        Self {
            file,
            strings,
            symbols,
        }
    }

    /// The hash for a given view, if present.
    pub fn get(&self, kind: FeatureKind) -> Option<&FuzzyHash> {
        match kind {
            FeatureKind::File => Some(&self.file),
            FeatureKind::Strings => Some(&self.strings),
            FeatureKind::Symbols => self.symbols.as_ref(),
        }
    }

    /// Whether the sample still carries a usable symbol table.
    pub fn has_symbols(&self) -> bool {
        self.symbols.is_some()
    }

    /// SSDeep similarity (0–100) between the same view of two samples.
    /// Missing views (stripped binaries) score 0.
    pub fn similarity(&self, other: &SampleFeatures, kind: FeatureKind) -> u32 {
        match (self.get(kind), other.get(kind)) {
            (Some(a), Some(b)) => compare(a, b),
            _ => 0,
        }
    }
}

/// The comparison-ready form of [`SampleFeatures`]: every present view's
/// fuzzy hash with its per-comparison state precomputed
/// ([`ssdeep::PreparedHash`]).
///
/// Preparing costs one run-elimination + window-key sort per view; every
/// subsequent comparison against another prepared sample then skips that
/// work entirely and runs on the banded `ssdeep::fastdist` kernel. The
/// similarity feature matrix prepares each query sample once and compares
/// it against the reference set's already-prepared hashes, threading each
/// cell's running maximum down as an early-exit score budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedSampleFeatures {
    /// Prepared fuzzy hash of the raw file content.
    pub file: PreparedHash,
    /// Prepared fuzzy hash of the `strings` output.
    pub strings: PreparedHash,
    /// Prepared fuzzy hash of the symbol-name list, if present.
    pub symbols: Option<PreparedHash>,
}

impl PreparedSampleFeatures {
    /// Precompute the comparison state of every view of `features`.
    pub fn prepare(features: &SampleFeatures) -> Self {
        Self {
            file: PreparedHash::new(&features.file),
            strings: PreparedHash::new(&features.strings),
            symbols: features.symbols.as_ref().map(PreparedHash::new),
        }
    }

    /// The prepared hash for a given view, if present.
    pub fn get(&self, kind: FeatureKind) -> Option<&PreparedHash> {
        match kind {
            FeatureKind::File => Some(&self.file),
            FeatureKind::Strings => Some(&self.strings),
            FeatureKind::Symbols => self.symbols.as_ref(),
        }
    }

    /// The plain (unprepared) features, reconstructed from the prepared
    /// hashes.
    pub fn to_sample_features(&self) -> SampleFeatures {
        SampleFeatures {
            file: self.file.hash().clone(),
            strings: self.strings.hash().clone(),
            symbols: self.symbols.as_ref().map(|p| p.hash().clone()),
        }
    }

    /// SSDeep similarity (0–100) between the same view of two prepared
    /// samples; byte-identical to [`SampleFeatures::similarity`].
    /// Missing views (stripped binaries) score 0.
    pub fn similarity(&self, other: &PreparedSampleFeatures, kind: FeatureKind) -> u32 {
        match (self.get(kind), other.get(kind)) {
            (Some(a), Some(b)) => compare_prepared(a, b),
            _ => 0,
        }
    }
}

impl From<&SampleFeatures> for PreparedSampleFeatures {
    fn from(features: &SampleFeatures) -> Self {
        Self::prepare(features)
    }
}

/// Extract features for a batch of byte buffers in parallel.
pub fn extract_batch(samples: &[Vec<u8>]) -> Vec<SampleFeatures> {
    par_map(samples, ParallelConfig::default(), |bytes| {
        SampleFeatures::extract(bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::{strip_symbols, ElfBuilder};

    fn sample_elf(tag: &str) -> Vec<u8> {
        let mut b = ElfBuilder::new();
        let code: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect();
        b.add_text_section(code);
        b.add_rodata_section(format!("{tag} usage message\0{tag} error string\0").into_bytes());
        for i in 0..40 {
            b.add_global_function(&format!("{tag}_function_{i}"), (i * 64) as u64, 64);
        }
        b.build()
    }

    #[test]
    fn extraction_produces_all_three_views() {
        let f = SampleFeatures::extract(&sample_elf("velvet"));
        assert!(f.has_symbols());
        for kind in FeatureKind::ALL {
            assert!(f.get(kind).is_some());
        }
    }

    #[test]
    fn stripped_binary_has_no_symbols_view() {
        let original = sample_elf("velvet");
        let stripped = strip_symbols(&original).unwrap();
        let f = SampleFeatures::extract(&stripped);
        assert!(!f.has_symbols());
        assert!(f.get(FeatureKind::Symbols).is_none());
        // File and strings views still exist.
        assert!(f.get(FeatureKind::File).is_some());
        assert!(f.get(FeatureKind::Strings).is_some());
    }

    #[test]
    fn non_elf_input_still_hashes_file_and_strings() {
        let f = SampleFeatures::extract(b"#!/bin/sh\necho this is a wrapper script\n");
        assert!(!f.has_symbols());
        assert!(f.get(FeatureKind::File).is_some());
    }

    #[test]
    fn self_similarity_is_maximal() {
        let f = SampleFeatures::extract(&sample_elf("velvet"));
        assert_eq!(f.similarity(&f, FeatureKind::File), 100);
        assert_eq!(f.similarity(&f, FeatureKind::Symbols), 100);
    }

    #[test]
    fn different_programs_have_low_similarity() {
        let a = SampleFeatures::extract(&sample_elf("velvet"));
        let b = SampleFeatures::extract(&sample_elf("openmalaria"));
        // Symbols are completely different names.
        assert!(a.similarity(&b, FeatureKind::Symbols) < 60);
    }

    #[test]
    fn missing_view_scores_zero() {
        let a = SampleFeatures::extract(&sample_elf("velvet"));
        let stripped = SampleFeatures::extract(&strip_symbols(&sample_elf("velvet")).unwrap());
        assert_eq!(a.similarity(&stripped, FeatureKind::Symbols), 0);
        assert_eq!(stripped.similarity(&a, FeatureKind::Symbols), 0);
    }

    #[test]
    fn paper_names_match_table_5() {
        assert_eq!(FeatureKind::File.paper_name(), "ssdeep-file");
        assert_eq!(FeatureKind::Strings.paper_name(), "ssdeep-strings");
        assert_eq!(FeatureKind::Symbols.paper_name(), "ssdeep-symbols");
        assert_eq!(FeatureKind::Symbols.to_string(), "ssdeep-symbols");
    }

    #[test]
    fn prepared_similarity_matches_plain() {
        let a = SampleFeatures::extract(&sample_elf("velvet"));
        let b = SampleFeatures::extract(&sample_elf("openmalaria"));
        let stripped = SampleFeatures::extract(&strip_symbols(&sample_elf("velvet")).unwrap());
        let samples = [a, b, stripped];
        let prepared: Vec<PreparedSampleFeatures> = samples
            .iter()
            .map(PreparedSampleFeatures::prepare)
            .collect();
        for (s1, p1) in samples.iter().zip(&prepared) {
            assert_eq!(&p1.to_sample_features(), s1);
            for (s2, p2) in samples.iter().zip(&prepared) {
                for kind in FeatureKind::ALL {
                    assert_eq!(s1.similarity(s2, kind), p1.similarity(p2, kind));
                }
            }
        }
    }

    #[test]
    fn batch_extraction_matches_single() {
        let batch = vec![sample_elf("a"), sample_elf("b")];
        let features = extract_batch(&batch);
        assert_eq!(features.len(), 2);
        assert_eq!(features[0], SampleFeatures::extract(&batch[0]));
        assert_eq!(features[1], SampleFeatures::extract(&batch[1]));
    }
}
